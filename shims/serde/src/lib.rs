//! Offline shim for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! no-op derive macros from the `serde_derive` shim, mirroring how the real
//! `serde` crate exposes its derives under the same names (traits and derive
//! macros live in different namespaces). The traits carry no methods because
//! nothing in the workspace performs actual serialization yet.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::ser` with the trait re-export.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirror of `serde::de` with the trait re-exports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
