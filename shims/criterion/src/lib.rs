//! Offline shim for `criterion`.
//!
//! Provides [`Criterion`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of criterion's
//! statistical machinery it runs a short warm-up followed by `sample_size`
//! timed samples and prints the mean and best ns/iter — enough to compare
//! hot paths locally while staying dependency-free.

use std::time::{Duration, Instant};

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` as a named benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new() };
        // Warm-up sample, discarded.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let nanos: Vec<f64> = bencher.samples.iter().map(|d| d.as_nanos() as f64).collect();
        let mean = nanos.iter().sum::<f64>() / nanos.len().max(1) as f64;
        let best = nanos.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("{name:<48} mean {:>12.1} ns/iter   best {:>12.1} ns/iter", mean, best);
        self
    }
}

/// Times closures for one benchmark, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` and records it as a sample.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }

    /// Times one execution of `routine` on an input built by `setup`,
    /// mirroring `criterion::Bencher::iter_batched`: the setup cost (e.g.
    /// cloning a consumed argument) stays outside the timed region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        let elapsed = start.elapsed();
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }
}

/// Batch sizing hint, mirroring `criterion::BatchSize`. The shim times one
/// routine call per sample regardless, so the variant is advisory only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per routine call.
    PerIteration,
    /// Criterion's default for cheap inputs.
    SmallInput,
    /// For inputs that are expensive to construct.
    LargeInput,
}

/// Re-export so `criterion::black_box` callers work.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
