//! Offline shim for `proptest`.
//!
//! Implements the subset the Pond workspace uses: the [`proptest!`] macro,
//! `prop_assert!`-family macros, and [`strategy::Strategy`] implementations
//! for numeric ranges, tuples of strategies, [`collection::vec`], and
//! [`bool::ANY`].
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: every test derives its RNG seed from its own name,
//!   so runs are reproducible without a persisted regression file.
//! * **No shrinking**: a failing case panics via the failing assertion
//!   (generated inputs are not echoed); because runs are deterministic,
//!   re-running the test reproduces the exact failing case.
//! * **Case count**: 64 by default, overridable with `PROPTEST_CASES`.

/// Strategy trait and implementations for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    impl_strategy_float!(f32, f64);

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_strategy_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// A strategy that always yields a clone of one value (`Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s whose length is drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`] generating between `size.start` and
    /// `size.end - 1` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Number strategies (`proptest::num`) — `any` ranges for convenience.
pub mod num {
    /// Full-range `f64` values are not used by the workspace; ranges are.
    pub use crate::strategy::Strategy;
}

/// The deterministic test runner and its RNG.
pub mod test_runner {
    /// A splitmix64 generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a deterministic RNG from a test's name.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.as_bytes() {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Returns the next random `u64` (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases each property runs (default 64, env `PROPTEST_CASES`).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    }
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `test_runner::cases()`
/// generated inputs with a deterministic, name-derived RNG.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pond_rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __pond_case in 0..$crate::test_runner::cases() {
                    let _ = __pond_case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __pond_rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    proptest! {
        /// The macro wires patterns, strategies, and assertions together.
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 3u64..17,
            f in 0.25f64..0.75,
            (a, b, flag) in (0u16..4, 1u64..5, crate::bool::ANY),
            xs in crate::collection::vec(0u8..10, 1..20)
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(a < 4 && (1..5).contains(&b));
            prop_assert!(u8::from(flag) < 2);
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| *v < 10));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("same-name");
        let mut b = crate::test_runner::TestRng::deterministic("same-name");
        assert_eq!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
