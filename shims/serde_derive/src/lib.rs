//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! Nothing in the workspace calls `serialize`/`deserialize` yet — the
//! `#[derive(Serialize, Deserialize)]` attributes only need to compile.
//! When real serialization lands, swap this shim for the registry crate in
//! the root `[workspace.dependencies]`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive. Accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive. Accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
