//! Offline shim for `rand_pcg`: a faithful implementation of the
//! PCG XSL RR 128/64 generator (`Pcg64`), O'Neill 2014, over the `rand`
//! shim's `RngCore`/`SeedableRng` traits.

use rand::{RngCore, SeedableRng};

/// PCG XSL RR 128/64: 128-bit LCG state, 64-bit xorshift-low/random-rotate
/// output. Matches the real `rand_pcg::Pcg64` construction (the stream of
/// values differs from the registry crate only through `seed_from_u64`'s
/// splitmix expansion, which our `rand` shim mirrors from `rand_core`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

const MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

impl Pcg64 {
    /// Creates a generator from an initial state and stream id.
    pub fn new(state: u128, stream: u128) -> Self {
        // The increment must be odd; the stream id occupies the top 127 bits.
        let increment = (stream << 1) | 1;
        let mut pcg = Pcg64 { state: 0, increment };
        pcg.state = pcg.state.wrapping_add(increment).wrapping_add(state);
        pcg.step();
        pcg
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(self.increment);
    }

    fn output(state: u128) -> u64 {
        // XSL RR: xor the halves, rotate right by the top 7 bits.
        let rot = (state >> 122) as u32;
        let xsl = ((state >> 64) as u64) ^ (state as u64);
        xsl.rotate_right(rot)
    }
}

impl RngCore for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        let out = Self::output(self.state);
        self.step();
        out
    }
}

impl SeedableRng for Pcg64 {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state_bytes = [0u8; 16];
        let mut stream_bytes = [0u8; 16];
        state_bytes.copy_from_slice(&seed[..16]);
        stream_bytes.copy_from_slice(&seed[16..]);
        Pcg64::new(u128::from_le_bytes(state_bytes), u128::from_le_bytes(stream_bytes))
    }
}

/// Alias matching `rand_pcg`'s naming.
pub type Lcg128Xsl64 = Pcg64;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_is_in_unit_interval_and_well_spread() {
        let mut rng = Pcg64::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean of uniform draws was {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Pcg64::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
