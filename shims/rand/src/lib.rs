//! Offline shim for `rand` 0.8.
//!
//! Implements the subset of the `rand` API the Pond workspace uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`,
//! `fill`), [`SeedableRng`] with the splitmix64-based `seed_from_u64`
//! default, and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Integer `gen_range` uses modulo reduction rather than rejection
//! sampling: the tiny bias for spans approaching `u64::MAX` is irrelevant
//! for the seeded simulations here, and determinism is what the workspace
//! actually depends on.

/// Core generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64` from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (stand-in for
/// sampling with the `Standard` distribution via `Rng::gen`).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform-range sampler (stand-in for
/// `rand::distributions::uniform::SampleUniform`). Having a single generic
/// [`SampleRange`] impl keyed on this trait — rather than one impl per
/// numeric range type — is what lets untyped literals like
/// `rng.gen_range(0..100)` infer, exactly as in the real crate.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` can sample from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with splitmix64
    /// (the same scheme `rand_core` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64 step
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
