//! Pool management (Figure 9): drive the EMC slice-ownership flows directly —
//! add capacity to hosts, release it asynchronously when VMs depart, and
//! observe the permission checks and failure blast radius.
//!
//! Run with: `cargo run -p pond-examples --example pool_management`

use cxl_hw::failure::{FailureKind, VmHandle, VmPlacementMap};
use cxl_hw::pool::PoolState;
use cxl_hw::topology::PoolTopology;
use cxl_hw::units::{Bytes, EmcId, HostId};
use pond_core::pool_manager::PondPoolManager;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-socket pool with 64 GiB of capacity behind one multi-headed EMC.
    let topology = PoolTopology::pond_with_capacity(8, Bytes::from_gib(64))?;
    let mut manager = PondPoolManager::new(&topology);
    println!(
        "pool created: {} free across {} EMC(s)",
        manager.available(),
        manager.pool().emc_count()
    );

    // t=0: VM1 on host 1 gets 2 GB of pool memory; VM2 on host 1 gets 4 GB.
    let vm1 = manager.allocate(HostId(1), Bytes::from_gib(2), Duration::ZERO)?;
    let vm2 = manager.allocate(HostId(1), Bytes::from_gib(4), Duration::ZERO)?;
    println!("t=0  host1 owns {} of pool memory", manager.pool().capacity_of(HostId(1)));

    // The EMC enforces ownership on every access.
    let mut placements = VmPlacementMap::new();
    placements.place(VmHandle(1), HostId(1), vm1.clone());
    placements.place(VmHandle(2), HostId(1), vm2.clone());
    let emc = manager.pool().emc(EmcId(0)).expect("EMC 0 exists");
    println!(
        "access checks: owner -> {:?}, other host -> {:?}",
        emc.check_access(HostId(1), vm1[0].slice),
        emc.check_access(HostId(2), vm1[0].slice)
    );

    // t=1: VM2 departs; its slices offline asynchronously (10-100 ms/GB).
    manager.release_async(HostId(1), vm2, Duration::from_secs(1))?;
    println!(
        "t=1  release initiated: {} still offlining, {} immediately available",
        manager.pending_release(),
        manager.available()
    );

    // t=2: the offlining completes and the capacity returns to the buffer.
    let freed = manager.process_releases(Duration::from_secs(2));
    println!("t=2  offlining finished: {freed} returned, buffer now {}", manager.available());

    // t=3: a new VM on host 2 takes 1 GB from the replenished buffer.
    let vm3 = manager.allocate(HostId(2), Bytes::from_gib(1), Duration::from_secs(3))?;
    placements.place(VmHandle(3), HostId(2), vm3);
    println!("t=3  host2 owns {}", manager.pool().capacity_of(HostId(2)));

    // Failure analysis: an EMC failure only affects VMs with slices on it.
    let radius = placements.blast_radius(FailureKind::Emc(EmcId(0)));
    println!(
        "EMC0 failure would affect {} of {} VMs; a Pool Manager failure affects none (datapath unaffected)",
        radius.affected_vms.len(),
        placements.len()
    );
    let pm = placements.blast_radius(FailureKind::PoolManager);
    assert!(pm.affected_vms.is_empty());

    // Host failure: reclaim every slice the dead host owned.
    let mut raw_pool: PoolState = manager.pool().clone();
    let dead = placements.fail_host(&mut raw_pool, HostId(1));
    println!(
        "host1 failure reclaims its slices and removes {} VM(s) from the placement map",
        dead.len()
    );
    Ok(())
}
