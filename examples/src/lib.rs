//! Runnable examples for the Pond reproduction.
//!
//! The examples live next to this crate and are run with
//! `cargo run -p pond-examples --example <name>`:
//!
//! * `quickstart` — train Pond's models, size a pool, and place a few VMs.
//! * `znuma_vm` — build a zNUMA VM and inspect its guest-visible topology
//!   and performance under correct and incorrect predictions.
//! * `cluster_pooling` — run the cluster simulator with Pond vs. the static
//!   strawman and compare DRAM savings.
//! * `pool_management` — drive the Pool Manager / EMC slice flows of
//!   Figure 9 directly.
