//! zNUMA in action: create a VM whose pool memory is exposed as a zero-core
//! NUMA node, print the guest-visible topology (Figure 10), and compare the
//! performance of a correct untouched-memory prediction with an
//! overprediction (Figures 15 and 16).
//!
//! Run with: `cargo run -p pond-examples --example znuma_vm`

use cxl_hw::latency::LatencyScenario;
use cxl_hw::units::Bytes;
use hypervisor_sim::guest::{GuestAllocation, GuestPerformance};
use hypervisor_sim::vm::{VirtualMachine, VmConfig};
use hypervisor_sim::vnuma::VNumaTopology;
use workload_model::spill::SpillModel;
use workload_model::WorkloadSuite;

fn report(label: &str, vm: &VirtualMachine) {
    let allocation = GuestAllocation::for_vm(vm);
    let performance = GuestPerformance::evaluate(
        vm,
        &allocation,
        LatencyScenario::Increase182,
        &SpillModel::default(),
    );
    println!("--- {label} ---");
    println!(
        "footprint {} | local node {} | zNUMA {} | spilled {:.1}% of the working set",
        allocation.footprint(),
        vm.config().local_memory(),
        allocation.znuma_size(),
        allocation.spill_fraction() * 100.0
    );
    println!(
        "traffic to zNUMA: {:.2}% of accesses | slowdown vs. all-local: {:.1}%\n",
        performance.znuma_traffic_fraction * 100.0,
        performance.slowdown * 100.0
    );
}

fn main() {
    let suite = WorkloadSuite::standard();
    let workload = suite.get("voltdb/tpcc").expect("workload exists").clone();
    let untouched = Bytes::from_gib(24);
    let memory = workload.footprint + untouched;

    // Correct prediction: the zNUMA node is exactly the untouched memory.
    let correct = VirtualMachine::launch(
        1,
        VmConfig { cores: 16, memory, pool_memory: untouched },
        workload.clone(),
    );
    println!(
        "{}",
        VNumaTopology::for_vm(correct.config(), LatencyScenario::Increase182).describe()
    );
    report("correct untouched-memory prediction", &correct);

    // Overprediction: Pond thought twice as much memory was untouched, so
    // part of the working set spills onto the pool.
    let overpredicted = VirtualMachine::launch(
        2,
        VmConfig {
            cores: 16,
            memory,
            pool_memory: untouched + Bytes::from_gib(workload.footprint.as_gib() / 2),
        },
        workload.clone(),
    );
    report("overpredicted untouched memory (working set spills)", &overpredicted);

    // Worst case: the entire VM is pool-backed.
    let all_pool =
        VirtualMachine::launch(3, VmConfig { cores: 16, memory, pool_memory: memory }, workload);
    report("entire VM on pool memory", &all_pool);
}
