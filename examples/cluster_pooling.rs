//! Cluster-scale pooling: run the cluster simulator over a synthetic trace
//! with three memory policies — no pooling, the static 15% strawman, and the
//! full Pond policy — and compare DRAM requirements and QoS violations
//! (the Figure 21 experiment at example scale).
//!
//! Run with: `cargo run -p pond-examples --example cluster_pooling`

use cluster_sim::scheduler::{AllLocal, FixedPoolFraction, MemoryPolicy};
use cluster_sim::simulation::{Simulation, SimulationConfig, SimulationOutcome};
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use pond_core::policy::{PondPolicy, PondPolicyConfig};

fn describe(outcome: &SimulationOutcome) {
    println!(
        "{:<14} pool share {:>6.1}%  required DRAM {:>6.1}%  (saves {:>5.1}%)  violations {:>5.2}%  mitigations {}",
        outcome.policy,
        outcome.pool_dram_fraction() * 100.0,
        outcome.required_dram_fraction() * 100.0,
        outcome.dram_savings_fraction() * 100.0,
        outcome.violation_fraction() * 100.0,
        outcome.mitigations
    );
}

fn run<P: MemoryPolicy>(trace: &cluster_sim::ClusterTrace, policy: P) -> SimulationOutcome {
    let config = SimulationConfig { pool_size_sockets: 16, ..Default::default() };
    Simulation::new(config, policy).run(trace)
}

fn main() {
    let config = ClusterConfig { servers: 24, duration_days: 10, ..ClusterConfig::azure_like() };
    let trace = TraceGenerator::new(config, 1).generate(0);
    println!(
        "trace: {} VMs over {} days on {} servers (mean core utilization {:.0}%)\n",
        trace.len(),
        trace.duration / 86_400,
        trace.servers,
        trace.mean_core_utilization() * 100.0
    );

    describe(&run(&trace, AllLocal));
    describe(&run(&trace, FixedPoolFraction::new(0.15)));

    let pond = PondPolicy::train(&trace, &PondPolicyConfig::default(), 7);
    let outcome = run(&trace, pond);
    describe(&outcome);

    println!("\nPond should save the most DRAM while keeping violations near the 2% target;");
    println!("the static strawman either saves little (15%) or violates heavily at larger shares.");
}
