//! Quickstart: build a 16-socket Pond pool, train the prediction models on a
//! synthetic cluster trace, and schedule a handful of VMs through the full
//! control plane (prediction → pool onlining → zNUMA → QoS monitoring).
//!
//! Run with: `cargo run -p pond-examples --example quickstart`

use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cxl_hw::latency::LatencyModel;
use cxl_hw::topology::PoolTopology;
use pond_core::control_plane::{ControlPlaneConfig, PondControlPlane};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The hardware: a 16-socket Pond pool and its access latency.
    let topology = PoolTopology::pond(16)?;
    let latency = LatencyModel::default();
    println!(
        "16-socket Pond pool: {} access latency ({:.0}% of NUMA-local {})",
        latency.pool_access_latency(&topology),
        latency.pool_latency_percent(&topology),
        latency.local_dram_latency()
    );

    // 2. Train Pond's two prediction models on a synthetic cluster trace.
    let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
    let mut plane = PondControlPlane::new(&trace, ControlPlaneConfig::default(), 42)?;
    println!(
        "control plane ready: {} hosts, {} pool capacity",
        plane.config().hosts,
        plane.pool().available()
    );

    // 3. Schedule the first 25 VM arrivals end to end.
    let mut placed = Vec::new();
    for request in trace.requests.iter().take(25) {
        let now = Duration::from_secs(request.arrival);
        match plane.handle_request(request, now) {
            Ok(summary) => {
                println!(
                    "placed {} on host {}: {} local + {} pool{}",
                    summary.vm,
                    summary.host,
                    summary.local,
                    summary.pool,
                    if summary.has_znuma { " (zNUMA)" } else { "" }
                );
                placed.push((summary.vm, request.departure()));
            }
            Err(err) => println!("could not place vm {}: {err}", request.id),
        }
    }

    // 4. One QoS pass: mitigate any VM whose prediction looks wrong.
    let pass = plane.run_qos_pass(Duration::from_secs(3600))?;
    println!(
        "QoS pass complete: {} VMs reconfigured to all-local memory ({:?} of copy time)",
        pass.reconfigured, pass.copy_time
    );

    // 5. Departures release pool slices asynchronously.
    for (vm, departure) in placed {
        plane.handle_departure(vm, Duration::from_secs(departure))?;
    }
    println!(
        "all VMs departed; {} of pool capacity still offlining, {} free",
        plane.pool().pending_release(),
        plane.pool().available()
    );
    Ok(())
}
