//! Lifecycle drills pinned end to end: pools die, heal, drain, and join
//! mid-replay, and none of it may cost determinism or conservation. Four
//! pins:
//!
//! * a proptest drives random arrival schedules *and* random lifecycle
//!   plans through two different streaming adapters (the borrowing trace
//!   cursor and a draining, length-blind vector source), comparing the
//!   full [`MultiPoolOutcome`];
//! * the parallel [`lifecycle_sweep`] must match a serial cell-by-cell
//!   loop bit for bit, and an all-`None` cell must match the plain
//!   [`run_multipool_fleet`];
//! * composed drills (failures + repairs + decommission + expansion +
//!   rebalance at once) must replay deterministically with the
//!   conservation debug-asserts green — the double-free regression guard
//!   for decommissions racing pending async releases;
//! * a golden pins the `fig_lifecycle` full-phase outcome on the 15-day
//!   bench trace, down to the float GiB-hour sums in the `Debug` string.

use std::collections::VecDeque;

use cluster_sim::source::{ArrivalSource, SourceError, TraceCursor, TraceHeader};
use cluster_sim::trace::{ClusterTrace, CustomerId, GuestOs, VmRequest, VmType};
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cxl_hw::topology::PodStyle;
use cxl_hw::units::{Bytes, EmcId};
use pond_core::multipool::{
    lifecycle_config, lifecycle_sweep, run_multipool_fleet, run_multipool_source, DrillKind,
    FailureDrillSpec, GroupSchedulerKind, LifecycleEvent, LifecycleOp, LifecyclePlan,
    LifecycleSweepPoint, LifecycleSweepSpec, MultiPoolConfig, MultiPoolSweepSpec, RebalanceSpec,
};
use pond_core::policy::PondPolicy;
use proptest::prelude::*;

/// A deliberately different streaming adapter from [`TraceCursor`]: owns
/// its requests, drains them one by one, and reports no length hint — any
/// replay bookkeeping that secretly leaned on the materialized trace or on
/// `len_hint` would diverge.
struct DrainingSource {
    header: TraceHeader,
    requests: VecDeque<VmRequest>,
}

impl DrainingSource {
    fn of(trace: &ClusterTrace) -> DrainingSource {
        DrainingSource {
            header: TraceHeader::of_trace(trace),
            requests: trace.requests.iter().cloned().collect(),
        }
    }
}

impl ArrivalSource for DrainingSource {
    fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn next_request(&mut self) -> Result<Option<VmRequest>, SourceError> {
        Ok(self.requests.pop_front())
    }
}

/// The fixed cluster shape every random schedule replays on (the same
/// 4-server shape as `streaming_replay.rs`, sharded into 2 Octopus groups).
fn shaped(requests: Vec<VmRequest>) -> ClusterTrace {
    ClusterTrace {
        cluster_id: 0,
        servers: 4,
        cores_per_server: 16,
        dram_per_server: Bytes::from_gib(128),
        duration: 86_400,
        requests,
    }
}

fn shaped_config() -> MultiPoolConfig {
    MultiPoolConfig::for_trace(
        &shaped(Vec::new()),
        PodStyle::Octopus,
        2,
        0.20,
        GroupSchedulerKind::RoundRobin,
        7,
    )
}

/// One policy trained once on the small generated trace and cached for
/// every proptest case.
fn trained_policy() -> &'static PondPolicy {
    static TRAINED: std::sync::OnceLock<PondPolicy> = std::sync::OnceLock::new();
    TRAINED.get_or_init(|| {
        let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
        let config = shaped_config();
        PondPolicy::train(&trace, &config.control.policy, config.seed)
    })
}

type Entry = ((u64, u64, u32, u64), (u32, usize, u8, u8, u8));

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        (
            0..=86_400u64, // arrival
            1..200_000u64, // lifetime (may outlive the trace)
            1..=16u32,     // cores
            1..=96u64,     // memory GiB
        ),
        (
            0..6u32,   // customer
            0..4usize, // vm type
            0..2u8,    // guest os
            0..3u8,    // region
            0..=100u8, // untouched fraction, percent
        ),
    )
}

fn build_trace(mut entries: Vec<Entry>) -> ClusterTrace {
    entries.sort_by_key(|&((arrival, ..), _)| arrival);
    let requests = entries
        .into_iter()
        .enumerate()
        .map(
            |(
                id,
                ((arrival, lifetime, cores, gib), (customer, vm_type, os, region, untouched)),
            )| {
                VmRequest {
                    id: id as u64,
                    arrival,
                    lifetime,
                    cores,
                    memory: Bytes::from_gib(gib),
                    customer: CustomerId(customer),
                    vm_type: VmType::ALL[vm_type],
                    guest_os: if os == 0 { GuestOs::Linux } else { GuestOs::Windows },
                    region,
                    workload_index: (id * 7) % 158,
                    untouched_fraction: untouched as f64 / 100.0,
                }
            },
        )
        .collect();
    shaped(requests)
}

/// One random lifecycle operation over the 2-group shaped fleet, as a raw
/// `(time, group, kind, gib)` tuple. Events may land past the trace horizon
/// (the queue drains them), decommissions may repeat (idempotent), and
/// repairs may target a healthy device (no-op).
type RawLifecycleEvent = (u64, usize, u8, u64);

fn arb_lifecycle_event() -> impl Strategy<Value = RawLifecycleEvent> {
    (0..=120_000u64, 0..2usize, 0..3u8, 1..=32u64)
}

fn build_plan(raw: Vec<RawLifecycleEvent>) -> LifecyclePlan {
    let events = raw
        .into_iter()
        .map(|(time, group, kind, gib)| {
            let op = match kind {
                0 => LifecycleOp::RepairEmc { group, emc: EmcId(0) },
                1 => LifecycleOp::DecommissionGroup { group },
                _ => LifecycleOp::ExpandGroup { group, capacity: Bytes::from_gib(gib) },
            };
            LifecycleEvent { time, op }
        })
        .collect();
    LifecyclePlan { events }
}

proptest! {
    /// Random schedules with random lifecycle plans (plus an optional
    /// repair drill and proactive rebalancing) replay bit-identically
    /// through two unrelated streaming adapters. Every lifecycle code path
    /// — draining, healing, expanding, rebalancing, rejecting with no
    /// online group — must be a pure function of the event stream.
    #[test]
    fn lifecycle_replays_are_stream_agnostic_on_random_schedules(
        entries in proptest::collection::vec(arb_entry(), 0..80),
        raw_events in proptest::collection::vec(arb_lifecycle_event(), 0..10),
        drilled in proptest::bool::ANY,
        rebalanced in proptest::bool::ANY,
        borrowing in proptest::bool::ANY,
    ) {
        let trace = build_trace(entries);
        prop_assert_eq!(trace.validate(), Ok(()));
        let mut config = shaped_config().with_lifecycle(build_plan(raw_events));
        if drilled {
            config = config.with_drill(FailureDrillSpec {
                rate_per_day: 8.0,
                kind: DrillKind::EmcWithRepair { mttr_secs: 7_200 },
                seed: 99,
            });
        }
        if rebalanced {
            config = config.with_rebalance(RebalanceSpec {
                starved_fraction: 0.5,
                max_moves_per_pass: 2,
            });
        }
        let config = config.with_borrowing(borrowing);
        let policy = trained_policy();
        let cursor =
            run_multipool_source(TraceCursor::new(&trace), &config, policy.clone()).unwrap();
        let drained =
            run_multipool_source(DrainingSource::of(&trace), &config, policy.clone()).unwrap();
        prop_assert_eq!(cursor, drained);
    }

    /// Switching the borrowing knob *off* must reproduce the untouched
    /// default configuration bit for bit on random schedules with random
    /// lifecycle plans — the cross-pod ownership refactor may not perturb a
    /// single event of the slices-follow-host replay (the pinned goldens
    /// below pin the absolute values; this pins the property across the
    /// whole schedule space).
    #[test]
    fn borrowing_disabled_is_bit_identical_to_the_default_on_random_schedules(
        entries in proptest::collection::vec(arb_entry(), 0..80),
        raw_events in proptest::collection::vec(arb_lifecycle_event(), 0..10),
        drilled in proptest::bool::ANY,
    ) {
        let trace = build_trace(entries);
        prop_assert_eq!(trace.validate(), Ok(()));
        let mut config = shaped_config().with_lifecycle(build_plan(raw_events));
        if drilled {
            config = config.with_drill(FailureDrillSpec {
                rate_per_day: 8.0,
                kind: DrillKind::EmcWithRepair { mttr_secs: 7_200 },
                seed: 99,
            });
        }
        let policy = trained_policy();
        let default =
            run_multipool_source(TraceCursor::new(&trace), &config, policy.clone()).unwrap();
        let off = run_multipool_source(
            TraceCursor::new(&trace),
            &config.clone().with_borrowing(false),
            policy.clone(),
        )
        .unwrap();
        prop_assert_eq!(&default, &off);
        prop_assert_eq!(default.fleet.vms_borrowed, 0);
        prop_assert_eq!(default.fleet.borrowed_gib_hours, 0.0);
    }
}

fn small_trace() -> ClusterTrace {
    TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
}

fn cell() -> MultiPoolSweepSpec {
    MultiPoolSweepSpec {
        pod: PodStyle::Octopus,
        groups: 4,
        pool_fraction: 0.20,
        scheduler: GroupSchedulerKind::RoundRobin,
        borrowing: false,
    }
}

fn mid_trace_plan() -> LifecyclePlan {
    LifecyclePlan {
        events: vec![
            LifecycleEvent { time: 2 * 86_400, op: LifecycleOp::DecommissionGroup { group: 1 } },
            LifecycleEvent {
                time: 3 * 86_400,
                op: LifecycleOp::ExpandGroup { group: 1, capacity: Bytes::from_gib(64) },
            },
        ],
    }
}

/// The parallel sweep runner must not cost a bit: every cell of a
/// lifecycle sweep equals the serial `lifecycle_config` +
/// `run_multipool_fleet` loop, and the all-`None` cell equals the plain
/// replay with no lifecycle machinery in the configuration at all.
#[test]
fn lifecycle_sweeps_match_the_serial_path_cell_for_cell() {
    let trace = small_trace();
    let none = LifecycleSweepSpec { cell: cell(), drill: None, lifecycle: None, rebalance: None };
    let specs = vec![
        none.clone(),
        LifecycleSweepSpec {
            drill: Some(FailureDrillSpec { rate_per_day: 4.0, kind: DrillKind::Emc, seed: 99 }),
            ..none.clone()
        },
        LifecycleSweepSpec {
            drill: Some(FailureDrillSpec {
                rate_per_day: 4.0,
                kind: DrillKind::EmcWithRepair { mttr_secs: 7_200 },
                seed: 99,
            }),
            ..none.clone()
        },
        LifecycleSweepSpec { lifecycle: Some(mid_trace_plan()), ..none.clone() },
        LifecycleSweepSpec {
            drill: Some(FailureDrillSpec {
                rate_per_day: 4.0,
                kind: DrillKind::EmcWithRepair { mttr_secs: 7_200 },
                seed: 99,
            }),
            lifecycle: Some(mid_trace_plan()),
            rebalance: Some(RebalanceSpec { starved_fraction: 0.25, max_moves_per_pass: 2 }),
            ..none.clone()
        },
    ];
    let swept = lifecycle_sweep(&trace, &specs, 7).unwrap();
    let serial: Vec<LifecycleSweepPoint> = specs
        .iter()
        .map(|spec| LifecycleSweepPoint {
            spec: spec.clone(),
            outcome: run_multipool_fleet(&trace, &lifecycle_config(&trace, spec, 7)).unwrap(),
        })
        .collect();
    assert_eq!(swept, serial, "parallel sweep must equal the serial loop bit for bit");

    let plain = run_multipool_fleet(
        &trace,
        &MultiPoolConfig::for_trace(
            &trace,
            PodStyle::Octopus,
            4,
            0.20,
            GroupSchedulerKind::RoundRobin,
            7,
        ),
    )
    .unwrap();
    assert_eq!(swept[0].outcome, plain, "an all-None cell must equal the plain replay");
}

/// The kitchen sink must stay conserved: failures healing under load, a
/// decommission whose drain schedules async releases (the double-free
/// regression — the group may only be struck off after its last release
/// lands), a live expansion reviving the pod, and proactive rebalancing,
/// all in one replay. The conservation debug-asserts run after every event
/// in this build; the three-way migration identity is checked here.
#[test]
fn composed_lifecycle_drills_stay_conserved_and_deterministic() {
    let trace = small_trace();
    let config = MultiPoolConfig::for_trace(
        &trace,
        PodStyle::Octopus,
        4,
        0.20,
        GroupSchedulerKind::RoundRobin,
        7,
    )
    .with_drill(FailureDrillSpec {
        rate_per_day: 6.0,
        kind: DrillKind::EmcWithRepair { mttr_secs: 7_200 },
        seed: 99,
    })
    .with_lifecycle(mid_trace_plan())
    .with_rebalance(RebalanceSpec { starved_fraction: 0.25, max_moves_per_pass: 2 });

    let a = run_multipool_fleet(&trace, &config).unwrap();
    let b = run_multipool_fleet(&trace, &config).unwrap();
    assert_eq!(a, b, "composed lifecycle drills must be deterministic");

    let fleet = &a.fleet;
    assert!(fleet.emc_failures > 0, "{fleet:?}");
    assert!(fleet.emcs_repaired > 0, "{fleet:?}");
    assert!(fleet.vms_drained > 0, "{fleet:?}");
    assert_eq!(fleet.groups_decommissioned, 1, "{fleet:?}");
    assert_eq!(fleet.groups_expanded, 1, "{fleet:?}");
    // Every migration copy — failure evacuation, drain, or rebalance —
    // closed with exactly one MigrationDone event.
    assert_eq!(
        fleet.migration_completions,
        fleet.vms_migrated + fleet.vms_drained + fleet.vms_rebalanced,
        "{fleet:?}"
    );
    // The drained group completed its pending releases before being
    // struck off (a double-free would have tripped the conservation
    // asserts above).
    assert!(a.per_group[1].releases_completed > 0, "{a:?}");
}

/// The `fig_lifecycle` full phase on the 15-day bench trace, pinned down
/// to the float GiB-hour sums: failures healing at a 6 h MTTR, pod 3
/// draining out at mid-trace, a 32 GiB device joining pod 0, and proactive
/// rebalancing — on the same 24-server trace and fleet shape as the other
/// bench goldens, with the bin's three-quarter local-DRAM sizing.
#[test]
fn the_lifecycle_bench_phase_reproduces_its_golden_outcome() {
    let trace = TraceGenerator::new(
        ClusterConfig { servers: 24, duration_days: 15, ..ClusterConfig::azure_like() },
        1,
    )
    .generate(0);
    let spec = LifecycleSweepSpec {
        cell: MultiPoolSweepSpec {
            pod: PodStyle::Octopus,
            groups: 4,
            pool_fraction: 0.30,
            scheduler: GroupSchedulerKind::RoundRobin,
            borrowing: false,
        },
        drill: Some(FailureDrillSpec {
            rate_per_day: 4.0,
            kind: DrillKind::EmcWithRepair { mttr_secs: 6 * 3_600 },
            seed: 99,
        }),
        lifecycle: Some(LifecyclePlan {
            events: vec![
                LifecycleEvent {
                    time: trace.duration / 3,
                    op: LifecycleOp::ExpandGroup { group: 0, capacity: Bytes::from_gib(32) },
                },
                LifecycleEvent {
                    time: trace.duration / 2,
                    op: LifecycleOp::DecommissionGroup { group: 3 },
                },
            ],
        }),
        rebalance: Some(RebalanceSpec { starved_fraction: 0.10, max_moves_per_pass: 2 }),
    };
    let mut config = lifecycle_config(&trace, &spec, 7);
    config.control.local_dram_per_host =
        Bytes::from_gib(config.control.local_dram_per_host.as_gib() * 3 / 4);
    let outcome = run_multipool_fleet(&trace, &config).unwrap();
    assert_eq!(
        format!("{:?}", outcome.fleet),
        "FleetOutcome { scheduled_vms: 1308, rejected_vms: 19, fallback_all_local: 166, \
         violations: 8, mitigations: 212, mitigation_copy_time: 81.8s, \
         reconfig_completions: 212, peak_degraded_vms: 12, qos_passes: 60, \
         releases_completed: 931, emc_failures: 58, vms_migrated: 427, vms_killed: 10, \
         migration_completions: 481, evacuation_copy_time: 818.45s, vms_drained: 30, \
         vms_rebalanced: 24, emcs_repaired: 50, groups_decommissioned: 1, \
         groups_expanded: 1, pooled_host_count: 24, \
         sum_local_peaks: Bytes(7004017917952), sum_host_pool_peaks: Bytes(7306813112320), \
         sum_total_peaks: Bytes(12666932297728), pool_peak: Bytes(2967822401536), \
         pool_gib_hours: 291044.67277777777, total_gib_hours: 2402853.5983333364, vms_borrowed: 0, borrowed_gib_hours: 0.0 }"
    );
    // The acceptance headline: the drained pod lost no VMs to the drain
    // itself — kills here all trace back to device failures, and
    // availability stays above the PR-5 failure-drill baseline (98.9% at
    // this rate on the halved-DRAM fleet).
    assert!(outcome.fleet.availability() > 0.989, "{:?}", outcome.fleet);
}
