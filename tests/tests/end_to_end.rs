//! End-to-end integration tests spanning the hardware, hypervisor, workload,
//! cluster, and control-plane crates.

use cluster_sim::scheduler::{AllLocal, FixedPoolFraction};
use cluster_sim::simulation::{Simulation, SimulationConfig};
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cxl_hw::latency::{LatencyModel, LatencyScenario};
use cxl_hw::topology::PoolTopology;
use cxl_hw::units::Bytes;
use pond_core::control_plane::{ControlPlaneConfig, PondControlPlane};
use pond_core::policy::{PondPolicy, PondPolicyConfig};
use std::time::Duration;

fn small_trace() -> cluster_sim::ClusterTrace {
    TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
}

fn medium_trace() -> cluster_sim::ClusterTrace {
    let config = ClusterConfig { servers: 24, duration_days: 12, ..ClusterConfig::small() };
    TraceGenerator::new(config, 1).generate(0)
}

/// The headline end-to-end result: Pond saves DRAM relative to no pooling
/// while keeping QoS violations near the configured target, and beats the
/// static strawman's savings-per-violation trade-off.
#[test]
fn pond_end_to_end_savings_and_qos() {
    let trace = medium_trace();
    let policy = PondPolicy::train(&trace, &PondPolicyConfig::default(), 11);
    let sim_config = SimulationConfig { pool_size_sockets: 16, ..Default::default() };

    let pond = Simulation::new(sim_config.clone(), policy).run(&trace);
    let baseline = Simulation::new(sim_config.clone(), AllLocal).run(&trace);
    let static15 = Simulation::new(sim_config, FixedPoolFraction::new(0.15)).run(&trace);

    // No pooling: no savings, no violations.
    assert_eq!(baseline.violations, 0);
    assert!(baseline.dram_savings_fraction().abs() < 1e-9);

    // Pond: meaningful savings at low violation rates.
    assert!(
        pond.dram_savings_fraction() > 0.02,
        "Pond should save DRAM: {}",
        pond.dram_savings_fraction()
    );
    assert!(
        pond.violation_fraction() < 0.08,
        "Pond should stay near its QoS target: {}",
        pond.violation_fraction()
    );

    // Pond saves at least as much as the static 15% strawman.
    assert!(
        pond.dram_savings_fraction() >= static15.dram_savings_fraction() - 0.01,
        "pond {} vs static {}",
        pond.dram_savings_fraction(),
        static15.dram_savings_fraction()
    );
}

/// The latency story that motivates small pools: a 16-socket Pond pool stays
/// close to the paper's 180 ns / 212% point and far below a switch-only design.
#[test]
fn latency_model_matches_paper_design_points() {
    let model = LatencyModel::default();
    let pond16 = PoolTopology::pond(16).unwrap();
    let latency = model.pool_access_latency(&pond16);
    assert!((175.0..=185.0).contains(&latency.as_nanos()));
    let switch16 = PoolTopology::switch_only(16).unwrap();
    assert!(model.pool_access_latency(&switch16).as_nanos() > latency.as_nanos() * 1.3);
    // The emulation scenarios bracket the Pond design points.
    assert!(LatencyScenario::Increase182.multiplier() < LatencyScenario::Increase222.multiplier());
}

/// Drives the full control plane (prediction, pool manager, hypervisor, QoS)
/// over a trace prefix and checks resource accounting stays consistent.
#[test]
fn control_plane_accounting_is_consistent() {
    let trace = small_trace();
    let config = ControlPlaneConfig { pool_capacity: Bytes::from_gib(256), ..Default::default() };
    let mut plane = PondControlPlane::new(&trace, config, 3).unwrap();

    let mut placed = Vec::new();
    for request in trace.requests.iter().take(80) {
        let now = Duration::from_secs(request.arrival);
        if let Ok(summary) = plane.handle_request(request, now) {
            assert_eq!(summary.local + summary.pool, request.memory);
            placed.push(summary.vm);
        }
    }
    assert!(!placed.is_empty());
    assert_eq!(plane.running_vms(), placed.len());

    // Pool capacity assigned to hosts equals what the hosts onlined.
    let host_pool_online: Bytes = plane.hosts().iter().map(|h| h.pool_online()).sum();
    let pool_assigned = plane.pool().pool().assigned_capacity();
    assert!(
        pool_assigned >= host_pool_online,
        "pool assigned {pool_assigned} must cover host onlined {host_pool_online}"
    );

    // QoS pass and departures leave the system consistent.
    plane.run_qos_pass(Duration::from_secs(7200)).unwrap();
    for vm in placed {
        plane.handle_departure(vm, Duration::from_secs(1_000_000)).unwrap();
    }
    assert_eq!(plane.running_vms(), 0);
}

/// The workload suite, hypervisor spill model, and cluster simulator agree on
/// the zero-pool case: without pool memory nothing slows down.
#[test]
fn all_local_configuration_has_no_slowdowns_anywhere() {
    let trace = small_trace();
    let outcome = Simulation::new(SimulationConfig::default(), AllLocal).run(&trace);
    assert!(outcome.slowdowns.iter().all(|&s| s == 0.0));
    assert_eq!(outcome.sum_pool_peaks, Bytes::ZERO);
}

/// Determinism across the whole stack: the same seeds produce identical
/// simulation outcomes (a requirement for reproducible experiments).
#[test]
fn simulations_are_deterministic() {
    let trace = small_trace();
    let config = SimulationConfig::default();
    let a = Simulation::new(config.clone(), FixedPoolFraction::new(0.3)).run(&trace);
    let b = Simulation::new(config, FixedPoolFraction::new(0.3)).run(&trace);
    assert_eq!(a, b);
}

/// The parallel sweep runner reproduces the serial reference bit for bit
/// across the whole stack: trained Pond policy, QoS mitigation, several pool
/// sizes and traces, all fanned out over threads.
#[test]
fn parallel_pool_size_sweep_is_bit_identical_with_pond_policy() {
    let traces = TraceGenerator::new(ClusterConfig::small(), 2).generate_all();
    let policy = PondPolicy::train(&traces[0], &PondPolicyConfig::default(), 7);
    let config = SimulationConfig::default();
    let pool_sizes = [8u16, 32];
    let parallel =
        cluster_sim::pooling::pool_size_sweep(&traces, &pool_sizes, &config, || policy.clone());
    let serial =
        cluster_sim::pooling::pool_size_sweep_serial(&traces, &pool_sizes, &config, || {
            policy.clone()
        });
    assert_eq!(parallel, serial);
}
