//! Observer neutrality pinned end to end: watching a replay must never
//! change it. Three pins:
//!
//! * a proptest drives random arrival schedules through the composed
//!   lifecycle drill (failures + repairs + decommission + expansion +
//!   rebalance) three ways — unobserved, observed by a
//!   [`TimeSeriesRecorder`], and observed by a [`MetricsObserver`] — and
//!   requires all three [`MultiPoolOutcome`]s bit-identical, plus the
//!   recorder's own series reproducible across runs;
//! * the single-pool observed entry point equals the unobserved one and
//!   [`NullObserver`] equals the plain function on the same stream;
//! * the metrics a [`MetricsObserver`] accumulates must reconcile with the
//!   replay's own outcome counters (events observed, arrivals decided,
//!   QoS passes seen) — the registry is a projection of the replay, not a
//!   second bookkeeper that can drift.

use cluster_sim::source::TraceCursor;
use cluster_sim::trace::{ClusterTrace, CustomerId, GuestOs, VmRequest, VmType};
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cxl_hw::topology::PodStyle;
use cxl_hw::units::Bytes;
use pond_core::fleet::{run_fleet_source, run_fleet_source_observed, FleetConfig};
use pond_core::multipool::{
    run_multipool_source, run_multipool_source_observed, DrillKind, FailureDrillSpec,
    GroupSchedulerKind, LifecycleEvent, LifecycleOp, LifecyclePlan, MultiPoolConfig, RebalanceSpec,
};
use pond_core::policy::PondPolicy;
use pond_metrics::{MetricsObserver, NullObserver, TimeSeriesRecorder};
use proptest::prelude::*;

/// The fixed cluster shape every random schedule replays on (the same
/// 4-server shape as `lifecycle_drills.rs`, sharded into 2 Octopus groups).
fn shaped(requests: Vec<VmRequest>) -> ClusterTrace {
    ClusterTrace {
        cluster_id: 0,
        servers: 4,
        cores_per_server: 16,
        dram_per_server: Bytes::from_gib(128),
        duration: 86_400,
        requests,
    }
}

/// The composed drill: every lifecycle code path an observer can watch —
/// failures healing, pod 1 draining out, pod 0 expanding, rebalancing.
fn drilled_config() -> MultiPoolConfig {
    MultiPoolConfig::for_trace(
        &shaped(Vec::new()),
        PodStyle::Octopus,
        2,
        0.20,
        GroupSchedulerKind::RoundRobin,
        7,
    )
    .with_drill(FailureDrillSpec {
        rate_per_day: 24.0,
        kind: DrillKind::EmcWithRepair { mttr_secs: 7_200 },
        seed: 99,
    })
    .with_lifecycle(LifecyclePlan {
        events: vec![
            LifecycleEvent {
                time: 86_400 / 3,
                op: LifecycleOp::ExpandGroup { group: 0, capacity: Bytes::from_gib(16) },
            },
            LifecycleEvent { time: 86_400 / 2, op: LifecycleOp::DecommissionGroup { group: 1 } },
        ],
    })
    .with_rebalance(RebalanceSpec { starved_fraction: 0.5, max_moves_per_pass: 2 })
}

/// One policy trained once on the small generated trace and cached for
/// every proptest case.
fn trained_policy() -> &'static PondPolicy {
    static TRAINED: std::sync::OnceLock<PondPolicy> = std::sync::OnceLock::new();
    TRAINED.get_or_init(|| {
        let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
        let config = drilled_config();
        PondPolicy::train(&trace, &config.control.policy, config.seed)
    })
}

type Entry = ((u64, u64, u32, u64), (u32, usize, u8, u8, u8));

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        (
            0..=86_400u64, // arrival
            1..200_000u64, // lifetime (may outlive the trace)
            1..=16u32,     // cores
            1..=96u64,     // memory GiB
        ),
        (
            0..6u32,   // customer
            0..4usize, // vm type
            0..2u8,    // guest os
            0..3u8,    // region
            0..=100u8, // untouched fraction, percent
        ),
    )
}

fn build_trace(mut entries: Vec<Entry>) -> ClusterTrace {
    entries.sort_by_key(|&((arrival, ..), _)| arrival);
    let requests = entries
        .into_iter()
        .enumerate()
        .map(
            |(
                id,
                ((arrival, lifetime, cores, gib), (customer, vm_type, os, region, untouched)),
            )| {
                VmRequest {
                    id: id as u64,
                    arrival,
                    lifetime,
                    cores,
                    memory: Bytes::from_gib(gib),
                    customer: CustomerId(customer),
                    vm_type: VmType::ALL[vm_type],
                    guest_os: if os == 0 { GuestOs::Linux } else { GuestOs::Windows },
                    region,
                    workload_index: (id * 7) % 158,
                    untouched_fraction: untouched as f64 / 100.0,
                }
            },
        )
        .collect();
    shaped(requests)
}

proptest! {
    /// Watching a random replay through the composed lifecycle drill — with
    /// a time-series recorder or a metrics registry — must cost zero bits
    /// of outcome, and the recorded series itself must be a pure function
    /// of the replay.
    #[test]
    fn observed_replays_are_bit_identical_on_random_schedules(
        entries in proptest::collection::vec(arb_entry(), 0..60),
    ) {
        let trace = build_trace(entries);
        prop_assert_eq!(trace.validate(), Ok(()));
        let config = drilled_config();
        let policy = trained_policy();

        let unobserved =
            run_multipool_source(TraceCursor::new(&trace), &config, policy.clone()).unwrap();

        let mut recorder = TimeSeriesRecorder::new();
        let recorded = run_multipool_source_observed(
            TraceCursor::new(&trace), &config, policy.clone(), &mut recorder,
        ).unwrap();
        prop_assert_eq!(&recorded, &unobserved);
        prop_assert_eq!(recorder.points().len() as u64, unobserved.fleet.qos_passes);

        let mut metrics = MetricsObserver::new();
        let metered = run_multipool_source_observed(
            TraceCursor::new(&trace), &config, policy.clone(), &mut metrics,
        ).unwrap();
        prop_assert_eq!(&metered, &unobserved);

        // The series is reproducible: observing twice records the same points.
        let mut again = TimeSeriesRecorder::new();
        run_multipool_source_observed(
            TraceCursor::new(&trace), &config, policy.clone(), &mut again,
        ).unwrap();
        prop_assert_eq!(again.points(), recorder.points());
    }
}

fn small_trace() -> ClusterTrace {
    TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
}

/// The single-pool entry points agree: `run_fleet_source` is the
/// `NullObserver` case of the observed loop, and a real observer costs
/// nothing there either.
#[test]
fn single_pool_observed_replay_matches_the_plain_entry_point() {
    let trace = small_trace();
    let config = FleetConfig::for_trace(&trace, 0.15, 42);
    let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);

    let plain = run_fleet_source(TraceCursor::new(&trace), &config, policy.clone()).unwrap();
    let nulled = run_fleet_source_observed(
        TraceCursor::new(&trace),
        &config,
        policy.clone(),
        &mut NullObserver,
    )
    .unwrap();
    assert_eq!(nulled, plain, "NullObserver must equal the plain entry point");

    let mut recorder = TimeSeriesRecorder::new();
    let recorded =
        run_fleet_source_observed(TraceCursor::new(&trace), &config, policy, &mut recorder)
            .unwrap();
    assert_eq!(recorded, plain, "a recording observer must cost zero bits");
    assert_eq!(recorder.points().len() as u64, plain.qos_passes);
    // Single pool: every point carries exactly one group sample.
    assert!(recorder.points().iter().all(|p| p.groups.len() == 1));
}

/// The metrics registry reconciles with the outcome it watched: events,
/// decisions, and QoS passes all line up with the replay's own counters.
#[test]
fn metrics_reconcile_with_the_observed_outcome() {
    let trace = small_trace();
    let config = drilled_config();
    let policy = trained_policy();

    let mut metrics = MetricsObserver::new();
    let outcome = run_multipool_source_observed(
        TraceCursor::new(&trace),
        &config,
        policy.clone(),
        &mut metrics,
    )
    .unwrap();

    let registry = metrics.registry();
    let fleet = &outcome.fleet;
    assert_eq!(
        registry.counter("events.arrival"),
        fleet.scheduled_vms + fleet.rejected_vms,
        "every arrival event is counted"
    );
    assert_eq!(registry.counter("events.snapshot"), fleet.qos_passes);
    assert_eq!(
        registry.counter_prefix_sum("ladder."),
        fleet.scheduled_vms + fleet.rejected_vms,
        "every arrival lands on exactly one ladder rung"
    );
    assert_eq!(
        registry.counter("lifecycle.emc_failure"),
        fleet.emc_failures,
        "every failure traces one lifecycle op"
    );
    assert_eq!(registry.counter("lifecycle.emc_repair"), fleet.emcs_repaired);
    assert_eq!(registry.counter("lifecycle.expansion"), fleet.groups_expanded);
    assert_eq!(
        registry.counter("lifecycle.decommission_complete"),
        fleet.groups_decommissioned,
        "every decommission completes exactly once"
    );
    assert_eq!(registry.counter("lifecycle.vm_rebalanced"), fleet.vms_rebalanced);
    // The lifetime histogram saw exactly the scheduled VMs.
    assert_eq!(
        registry.histogram("vm.lifetime_secs").map_or(0, |h| h.total()),
        fleet.scheduled_vms
    );
}
