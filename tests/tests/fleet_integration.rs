//! Integration tests for the event-driven fleet replay: the control plane
//! driven through `cluster-sim`'s event core must agree with driving
//! [`PondControlPlane`] directly on the same request sequence, conserve pool
//! accounting at every event, and produce bit-identical sweeps.

use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cluster_sim::ClusterTrace;
use cxl_hw::units::Bytes;
use hypervisor_sim::vm::VmId;
use pond_core::control_plane::PondControlPlane;
use pond_core::fleet::{fleet_pool_sweep, run_fleet, FleetConfig};
use std::time::Duration;

fn small_trace() -> ClusterTrace {
    TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
}

/// Drives the control plane directly (no event queue) over the same merged
/// arrival/departure order the event core produces — departures before
/// arrivals at equal times, ties in request order — and returns the placement
/// fingerprint: (scheduled, rejected, fallbacks, pool GiB-hours).
fn drive_directly(trace: &ClusterTrace, config: &FleetConfig) -> (u64, u64, u64, f64) {
    let mut plane = PondControlPlane::new(trace, config.control.clone(), config.seed).unwrap();

    // class 0 = departure, 1 = arrival, matching the event core's tie order.
    let mut events: Vec<(u64, u8, usize)> = Vec::new();
    for (index, request) in trace.requests.iter().enumerate() {
        events.push((request.arrival, 1, index));
    }
    events.sort_unstable_by_key(|&(time, class, index)| (time, class, index));

    let (mut scheduled, mut rejected, mut fallbacks, mut pool_gib_hours) = (0u64, 0u64, 0u64, 0.0);
    let mut pending_departures: Vec<(u64, usize)> = Vec::new();
    let mut cursor = 0;
    while cursor < events.len() {
        // Splice any departures due before (or at) this event's time into the
        // stream, earliest first, request order at ties.
        let (time, _, index) = events[cursor];
        pending_departures.sort_unstable();
        while let Some(&(dep_time, dep_index)) = pending_departures.first() {
            if dep_time > time {
                break;
            }
            pending_departures.remove(0);
            let vm = VmId(trace.requests[dep_index].id);
            plane.handle_departure(vm, Duration::from_secs(dep_time)).unwrap();
            plane.assert_pool_conserved();
        }
        let request = &trace.requests[index];
        match plane.handle_request(request, Duration::from_secs(time)) {
            Ok(summary) => {
                scheduled += 1;
                fallbacks += u64::from(summary.fallback_all_local);
                pool_gib_hours += summary.pool.as_gib_f64() * request.lifetime as f64 / 3600.0;
                pending_departures.push((request.departure(), index));
            }
            Err(_) => rejected += 1,
        }
        plane.assert_pool_conserved();
        cursor += 1;
    }
    // Drain the tail of departures after the last arrival.
    pending_departures.sort_unstable();
    for (dep_time, dep_index) in pending_departures {
        let vm = VmId(trace.requests[dep_index].id);
        plane.handle_departure(vm, Duration::from_secs(dep_time)).unwrap();
        plane.assert_pool_conserved();
    }
    assert_eq!(plane.running_vms(), 0);

    // After the offlining delays elapse, every slice is back in the buffer.
    plane.complete_releases(Duration::from_secs(u32::MAX as u64));
    plane.assert_pool_conserved();
    assert_eq!(plane.pool().available(), config.control.pool_capacity);

    (scheduled, rejected, fallbacks, pool_gib_hours)
}

/// The event-driven replay and the hand-driven control plane are two drivers
/// of the same machine: on the same request sequence (QoS passes disabled so
/// both see identical mutations) they must place, reject, and fall back
/// identically, down to the pool GiB-hours served.
#[test]
fn fleet_replay_agrees_with_driving_the_control_plane_directly() {
    let trace = small_trace();
    let mut config = FleetConfig::for_trace(&trace, 0.20, 7);
    config.qos_interval = 0;

    let fleet = run_fleet(&trace, &config).unwrap();
    let (scheduled, rejected, fallbacks, pool_gib_hours) = drive_directly(&trace, &config);

    assert_eq!(fleet.scheduled_vms, scheduled);
    assert_eq!(fleet.rejected_vms, rejected);
    assert_eq!(fleet.fallback_all_local, fallbacks);
    assert!(
        (fleet.pool_gib_hours - pool_gib_hours).abs() < 1e-9,
        "identical placements must serve identical pool GiB-hours: {} vs {}",
        fleet.pool_gib_hours,
        pool_gib_hours
    );
}

/// With QoS passes on, the replay exercises every mutation path (placement,
/// mitigation, async release) under the per-event conservation debug-asserts
/// inside `run_fleet`; reaching the end without a panic *is* the invariant,
/// and the end state must show a fully drained pool.
#[test]
fn fleet_replay_conserves_pool_accounting_with_qos_enabled() {
    let trace = small_trace();
    let config = FleetConfig::for_trace(&trace, 0.20, 7);
    let outcome = run_fleet(&trace, &config).unwrap();
    assert!(outcome.scheduled_vms > 0);
    assert!(outcome.qos_passes > 0);
    assert!(outcome.releases_completed > 0, "async releases must complete as events");
    assert!(outcome.pool_peak <= config.control.pool_capacity);
    assert!(outcome.sum_host_pool_peaks >= Bytes::ZERO);
}

/// The new bench sweep is deterministic: identical (trace, fractions, seed)
/// inputs produce identical outcomes — including across the parallel runner,
/// whose reduction order is fixed.
#[test]
fn fleet_pool_sweep_is_deterministic() {
    let trace = small_trace();
    let fractions = [0.05, 0.20, 0.40];
    let a = fleet_pool_sweep(&trace, &fractions, 7).unwrap();
    let b = fleet_pool_sweep(&trace, &fractions, 7).unwrap();
    assert_eq!(a, b, "same inputs must reproduce the sweep bit for bit");
    assert_eq!(a.len(), fractions.len());
    for (point, &fraction) in a.iter().zip(&fractions) {
        assert_eq!(point.pool_fraction, fraction);
    }
}
