//! The streaming arrival path is only admissible because it is invisible:
//! replaying through an [`ArrivalSource`] must produce bit-identical
//! outcomes to the materialized-trace path. Two pins:
//!
//! * a proptest drives random arrival/departure schedules through the
//!   streamed adapter and through the retained pre-refactor reference
//!   replay, comparing the *full* [`FleetOutcome`] (QoS snapshot counters
//!   included);
//! * a golden test streams the 15-day bench trace — training prefix
//!   included, the request vector never materialized — and must reproduce
//!   the pre-refactor outcome pinned in `multipool_integration.rs`.

use cluster_sim::source::{ArrivalSource, TraceCursor};
use cluster_sim::trace::{ClusterTrace, CustomerId, GuestOs, VmRequest, VmType};
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cxl_hw::topology::PodStyle;
use cxl_hw::units::Bytes;
use pond_core::fleet::{run_fleet_reference_with_policy, run_fleet_source, FleetConfig};
use pond_core::multipool::{run_multipool_source, GroupSchedulerKind, MultiPoolConfig};
use pond_core::policy::PondPolicy;
use proptest::prelude::*;

/// The fixed cluster shape every random schedule replays on. Holding the
/// shape constant lets one trained policy serve every proptest case (the
/// fleet config derives from servers and DRAM, not from the schedule).
fn shaped(requests: Vec<VmRequest>) -> ClusterTrace {
    ClusterTrace {
        cluster_id: 0,
        servers: 4,
        cores_per_server: 16,
        dram_per_server: Bytes::from_gib(128),
        duration: 86_400,
        requests,
    }
}

/// A policy trained once on the small generated trace and cached for every
/// proptest case, so the property spends its time replaying schedules, not
/// retraining models.
fn trained_policy() -> &'static (PondPolicy, FleetConfig) {
    static TRAINED: std::sync::OnceLock<(PondPolicy, FleetConfig)> = std::sync::OnceLock::new();
    TRAINED.get_or_init(|| {
        let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
        let config = FleetConfig::for_trace(&shaped(Vec::new()), 0.20, 7);
        let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);
        (policy, config)
    })
}

/// One random schedule entry, before ids are assigned: the shape/timing
/// fields `(arrival, lifetime, cores, memory GiB)` and the metadata fields
/// `(customer, vm type, guest os, region, untouched %)`.
type Entry = ((u64, u64, u32, u64), (u32, usize, u8, u8, u8));

/// Generates one entry: arrival within the horizon (the boundary
/// `arrival == duration` included), lifetimes that freely overshoot the
/// horizon, and sizes large enough to force rejections and all-local
/// fallbacks as well as clean placements.
fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        (
            0..=86_400u64, // arrival
            1..200_000u64, // lifetime (may outlive the trace)
            1..=16u32,     // cores
            1..=96u64,     // memory GiB (up to ~3/4 of one server)
        ),
        (
            0..6u32,   // customer
            0..4usize, // vm type
            0..2u8,    // guest os
            0..3u8,    // region
            0..=100u8, // untouched fraction, percent
        ),
    )
}

fn build_trace(mut entries: Vec<Entry>) -> ClusterTrace {
    entries.sort_by_key(|&((arrival, ..), _)| arrival);
    let requests = entries
        .into_iter()
        .enumerate()
        .map(
            |(
                id,
                ((arrival, lifetime, cores, gib), (customer, vm_type, os, region, untouched)),
            )| {
                VmRequest {
                    id: id as u64,
                    arrival,
                    lifetime,
                    cores,
                    memory: Bytes::from_gib(gib),
                    customer: CustomerId(customer),
                    vm_type: VmType::ALL[vm_type],
                    guest_os: if os == 0 { GuestOs::Linux } else { GuestOs::Windows },
                    region,
                    workload_index: (id * 7) % 158,
                    untouched_fraction: untouched as f64 / 100.0,
                }
            },
        )
        .collect();
    shaped(requests)
}

proptest! {
    /// Random arrival/departure schedules replay bit-identically through
    /// the streamed adapter and through the retained reference replay
    /// (materialized trace, five-heap queue, full host scans). The whole
    /// [`FleetOutcome`] is compared — placement counts, QoS snapshot
    /// counters, peaks, and the float GiB-hour sums.
    #[test]
    fn streamed_replay_matches_the_reference_on_random_schedules(
        entries in proptest::collection::vec(arb_entry(), 0..120),
    ) {
        let trace = build_trace(entries);
        prop_assert_eq!(trace.validate(), Ok(()));
        let (policy, config) = trained_policy();

        let streamed =
            run_fleet_source(TraceCursor::new(&trace), config, policy.clone()).unwrap();
        let reference =
            run_fleet_reference_with_policy(&trace, config, policy.clone()).unwrap();
        prop_assert_eq!(streamed, reference);
    }
}

/// The 15-day bench-scale golden, streamed end to end: the policy trains on
/// a streamed prefix and the replay consumes the lazy generator directly —
/// the request vector is never materialized — yet the outcome must
/// reproduce, down to the float GiB-hour sums in the `Debug` string, the
/// pre-refactor outcome pinned by
/// `arena_replay_reproduces_the_pre_refactor_golden_outcome`.
#[test]
fn a_streamed_15_day_replay_reproduces_the_materialized_golden() {
    let generator = TraceGenerator::new(
        ClusterConfig { servers: 24, duration_days: 15, ..ClusterConfig::azure_like() },
        1,
    );
    let header = generator.stream(0).header().clone();
    let config = MultiPoolConfig::for_header(
        &header,
        PodStyle::Symmetric,
        2,
        0.20,
        GroupSchedulerKind::RoundRobin,
        7,
    );
    let policy =
        PondPolicy::train_source(|| generator.stream(0), &config.control.policy, config.seed)
            .expect("generator streams are well-formed");
    let outcome = run_multipool_source(generator.stream(0), &config, policy).unwrap();
    assert_eq!(
        format!("{:?}", outcome.fleet),
        "FleetOutcome { scheduled_vms: 1322, rejected_vms: 5, fallback_all_local: 205, \
         violations: 6, mitigations: 235, mitigation_copy_time: 95.4s, \
         reconfig_completions: 235, peak_degraded_vms: 11, qos_passes: 60, \
         releases_completed: 1092, emc_failures: 0, vms_migrated: 0, vms_killed: 0, \
         migration_completions: 0, evacuation_copy_time: 0ns, vms_drained: 0, \
         vms_rebalanced: 0, emcs_repaired: 0, groups_decommissioned: 0, \
         groups_expanded: 0, pooled_host_count: 24, \
         sum_local_peaks: Bytes(7187627769856), sum_host_pool_peaks: Bytes(5243081326592), \
         sum_total_peaks: Bytes(10335838797824), pool_peak: Bytes(1978906181632), \
         pool_gib_hours: 826997.7958333329, total_gib_hours: 2593592.516944444, vms_borrowed: 0, borrowed_gib_hours: 0.0 }"
    );
    assert_eq!(outcome.cross_group_placements, 0);
}
