//! Integration tests for the prediction-model quality claims that the
//! paper's evaluation rests on (Figures 17, 18, 20).

use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cxl_hw::latency::LatencyScenario;
use pond_core::combined::{CombinedModel, CombinedModelConfig, UntouchedCandidate};
use pond_core::sensitivity::{
    mean_fp_up_to_coverage, training_dataset, CounterHeuristic, SensitivityModelConfig,
};
use pond_core::untouched::{
    evaluate_model, evaluate_predictions, replay_history, UntouchedMemoryModel,
    UntouchedModelConfig,
};
use pond_ml::forest::RandomForest;
use workload_model::WorkloadSuite;

fn trace_requests() -> Vec<cluster_sim::VmRequest> {
    let config = ClusterConfig { servers: 24, duration_days: 12, ..ClusterConfig::small() };
    TraceGenerator::new(config, 1).generate(0).requests
}

/// Figure 17's ordering: RandomForest ≥ DRAM-bound > Memory-bound.
#[test]
fn sensitivity_model_ordering_holds_across_seeds() {
    let suite = WorkloadSuite::standard();
    let config = SensitivityModelConfig::default();
    let mut rf_sum = 0.0;
    let mut dram_sum = 0.0;
    let mut mem_sum = 0.0;
    for seed in 0..3u64 {
        let data = training_dataset(&suite, &config, seed);
        let (train, test) = data.train_test_split(0.5, seed + 100);
        let forest = RandomForest::fit(&train, &config.forest, seed);
        let scores = forest.predict_proba_batch(&test).unwrap();
        let rf = pond_ml::eval::threshold_sweep(&scores, test.labels(), 50);
        rf_sum += mean_fp_up_to_coverage(&rf, 0.4);
        dram_sum +=
            mean_fp_up_to_coverage(&CounterHeuristic::DramBound.operating_points(&test, 50), 0.4);
        mem_sum +=
            mean_fp_up_to_coverage(&CounterHeuristic::MemoryBound.operating_points(&test, 50), 0.4);
    }
    assert!(rf_sum <= dram_sum + 0.02, "RandomForest {rf_sum} vs DRAM-bound {dram_sum}");
    assert!(dram_sum < mem_sum, "DRAM-bound {dram_sum} vs Memory-bound {mem_sum}");
}

/// Figure 18's headline: at a comparable average amount of untouched memory
/// the GBM overpredicts several times less often than the fixed strawman.
#[test]
fn untouched_model_beats_strawman_by_a_wide_margin() {
    let requests = trace_requests();
    let split = requests.len() / 2;
    let (train, test) = requests.split_at(split);
    let model =
        UntouchedMemoryModel::train(train, &UntouchedModelConfig { quantile: 0.15, rounds: 40 }, 5);
    let gbm = evaluate_model(&model, test, replay_history(train));

    let strawman_predictions = vec![gbm.avg_untouched_fraction; test.len()];
    let strawman = evaluate_predictions(test, &strawman_predictions);

    assert!(
        gbm.overprediction_rate < strawman.overprediction_rate * 0.7,
        "GBM {gbm:?} should be well below the strawman {strawman:?}"
    );
}

/// Figure 20's qualitative behaviour: the pool share the combined model can
/// schedule grows with the misprediction budget, and the 222% scenario
/// achieves no more than the 182% scenario.
#[test]
fn combined_model_behaves_like_figure20() {
    let suite = WorkloadSuite::standard();
    let requests = trace_requests();
    let split = requests.len() / 2;
    let (train, test) = requests.split_at(split);

    let untouched: Vec<UntouchedCandidate> = [0.05, 0.2, 0.4]
        .iter()
        .map(|&q| {
            let model = UntouchedMemoryModel::train(
                train,
                &UntouchedModelConfig { quantile: q, rounds: 30 },
                6,
            );
            UntouchedCandidate {
                quantile: q,
                point: evaluate_model(&model, test, replay_history(train)),
            }
        })
        .collect();

    let mut shares = Vec::new();
    for scenario in LatencyScenario::all() {
        let config = SensitivityModelConfig { scenario, ..Default::default() };
        let data = training_dataset(&suite, &config, 9);
        let (train_ml, validation) = data.train_test_split(0.5, 10);
        let forest = RandomForest::fit(&train_ml, &config.forest, 10);
        let scores = forest.predict_proba_batch(&validation).unwrap();
        let sens = pond_ml::eval::threshold_sweep(&scores, validation.labels(), 100);

        let strict =
            CombinedModel::solve(CombinedModelConfig { pdm: 0.05, tp: 0.995 }, &sens, &untouched);
        let loose =
            CombinedModel::solve(CombinedModelConfig { pdm: 0.05, tp: 0.95 }, &sens, &untouched);
        let strict_share = strict.map_or(0.0, |m| m.choice.expected_pool_share());
        let loose_share = loose.map_or(0.0, |m| m.choice.expected_pool_share());
        assert!(loose_share >= strict_share, "{scenario}: {loose_share} vs {strict_share}");
        shares.push(loose_share);
        if let Some(model) = loose {
            assert!(model.choice.constraint_value() <= 0.05 + 1e-9);
        }
    }
    assert!(shares[1] <= shares[0] + 0.1, "222% should not beat 182% materially: {shares:?}");
}
