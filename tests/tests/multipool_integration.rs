//! Integration tests for the sharded multi-pool fleet: a single group must
//! reproduce the single-pool fleet replay bit for bit, multi-group replays
//! must conserve pool accounting per group and fleet-wide at every event
//! (debug-asserted inside the run loop), sweeps must be deterministic on the
//! parallel runner, and the host-port lifecycle must let a long trace cycle
//! more hosts through a pool than the pool has CXL ports.

use cluster_sim::sweep;
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cluster_sim::ClusterTrace;
use cxl_hw::topology::PodStyle;
use cxl_hw::units::Bytes;
use pond_core::fleet::{run_fleet, FleetConfig};
use pond_core::multipool::{
    failure_drill_sweep, multipool_sweep, run_multipool_fleet, DrillKind, FailureDrillSpec,
    FailureDrillSweepSpec, GroupSchedulerKind, MultiPoolConfig, MultiPoolSweepSpec,
};

fn small_trace() -> ClusterTrace {
    TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
}

/// With one group, `run_multipool_fleet` and `run_fleet` drive the same
/// control plane through the same event stream with the same fallback
/// ladder, so every field of the outcome — placements, rejections,
/// violations, peaks, GiB-hours, event counts — must agree bit for bit, and
/// the single group's breakdown must equal the fleet aggregate.
#[test]
fn single_group_multipool_reproduces_run_fleet_bit_for_bit() {
    let trace = small_trace();
    for (pod, scheduler, fallback) in [
        (PodStyle::Symmetric, GroupSchedulerKind::RoundRobin, true),
        (PodStyle::Symmetric, GroupSchedulerKind::TightestFit, true),
        (PodStyle::Octopus, GroupSchedulerKind::MostFreePool, true),
        // With the all-local fallback off, both replays must reject the
        // same pool-exhausted VMs instead of placing them.
        (PodStyle::Symmetric, GroupSchedulerKind::RoundRobin, false),
    ] {
        let mut fleet_config = FleetConfig::for_trace(&trace, 0.20, 7);
        fleet_config.control.fallback_all_local = fallback;
        let fleet_outcome = run_fleet(&trace, &fleet_config).unwrap();
        let mut config = MultiPoolConfig::for_trace(&trace, pod, 1, 0.20, scheduler, 7);
        config.control.fallback_all_local = fallback;
        let multi = run_multipool_fleet(&trace, &config).unwrap();
        assert_eq!(
            multi.fleet, fleet_outcome,
            "{pod:?}/{scheduler:?}/fallback={fallback}: one group must reproduce the \
             single-pool replay exactly"
        );
        assert_eq!(multi.per_group.len(), 1);
        assert_eq!(multi.per_group[0], fleet_outcome);
        assert_eq!(multi.cross_group_placements, 0);
    }
}

/// A 4-group replay exercises every mutation path (scheduling, cross-group
/// fallback, mitigation, async release, reconfiguration completion) under
/// the per-event per-group + fleet-wide conservation debug-asserts inside
/// `run_multipool_fleet`; finishing without a panic *is* the invariant, and
/// the end state must be fully drained and internally consistent.
#[test]
fn multi_group_replay_conserves_accounting_per_group_and_fleet_wide() {
    let trace = small_trace();
    for pod in [PodStyle::Symmetric, PodStyle::Octopus] {
        let config =
            MultiPoolConfig::for_trace(&trace, pod, 4, 0.20, GroupSchedulerKind::RoundRobin, 7);
        let outcome = run_multipool_fleet(&trace, &config).unwrap();
        assert_eq!(outcome.per_group.len(), 4);
        assert!(outcome.fleet.scheduled_vms > 0);
        assert!(outcome.fleet.qos_passes > 0);
        assert!(outcome.fleet.releases_completed > 0);
        // One ReconfigDone event per mitigation, all delivered.
        assert_eq!(outcome.fleet.reconfig_completions, outcome.fleet.mitigations);
        // Aggregates are sums of the per-group breakdowns.
        for (field, fleet_value) in [
            (
                outcome.per_group.iter().map(|g| g.scheduled_vms).sum::<u64>(),
                outcome.fleet.scheduled_vms,
            ),
            (
                outcome.per_group.iter().map(|g| g.mitigations).sum::<u64>(),
                outcome.fleet.mitigations,
            ),
            (
                outcome.per_group.iter().map(|g| g.releases_completed).sum::<u64>(),
                outcome.fleet.releases_completed,
            ),
            (
                outcome.per_group.iter().map(|g| g.pooled_host_count).sum::<u64>(),
                outcome.fleet.pooled_host_count,
            ),
        ] {
            assert_eq!(field, fleet_value, "{pod:?}");
        }
        let pool_peak: Bytes = outcome.per_group.iter().map(|g| g.pool_peak).sum();
        assert_eq!(outcome.fleet.pool_peak, pool_peak);
    }
}

fn sweep_grid() -> Vec<MultiPoolSweepSpec> {
    let mut specs = Vec::new();
    for pod in [PodStyle::Symmetric, PodStyle::Octopus] {
        for groups in [2u16, 4] {
            for &pool_fraction in &[0.10, 0.25] {
                for scheduler in GroupSchedulerKind::ALL {
                    specs.push(MultiPoolSweepSpec {
                        pod,
                        groups,
                        pool_fraction,
                        scheduler,
                        borrowing: false,
                    });
                }
            }
        }
    }
    specs
}

/// The multipool sweep on the parallel runner must equal the serial
/// reference — the same cells computed one by one on the calling thread —
/// bit for bit, and re-running it must reproduce itself.
#[test]
fn multipool_sweep_is_deterministic_serial_vs_parallel() {
    let trace = small_trace();
    // Keep the grid small: the full product is exercised by the bench
    // binaries; determinism only needs representative cells.
    let specs: Vec<MultiPoolSweepSpec> = sweep_grid().into_iter().step_by(5).take(5).collect();
    assert!(sweep::worker_count(specs.len()) >= 1);

    let parallel = multipool_sweep(&trace, &specs, 7).unwrap();
    let serial: Vec<_> = specs
        .iter()
        .map(|&spec| {
            let config = MultiPoolConfig::for_trace(
                &trace,
                spec.pod,
                spec.groups,
                spec.pool_fraction,
                spec.scheduler,
                7,
            );
            run_multipool_fleet(&trace, &config).unwrap()
        })
        .collect();
    assert_eq!(parallel.len(), serial.len());
    for (point, reference) in parallel.iter().zip(&serial) {
        assert_eq!(&point.outcome, reference, "parallel cell must equal the serial reference");
    }
    let again = multipool_sweep(&trace, &specs, 7).unwrap();
    assert_eq!(parallel, again, "same inputs must reproduce the sweep bit for bit");
}

/// A drilled multi-pool config with per-host local DRAM tightened to half
/// the trace sizing, so evacuations compete for real headroom (the
/// `fig_failure_drill` setup: on a half-empty fleet every topology survives
/// trivially and the comparison shows nothing).
fn drilled_config(trace: &ClusterTrace, pod: PodStyle, rate_per_day: f64) -> MultiPoolConfig {
    let mut config =
        MultiPoolConfig::for_trace(trace, pod, 4, 0.30, GroupSchedulerKind::RoundRobin, 7);
    config.control.local_dram_per_host =
        Bytes::from_gib(config.control.local_dram_per_host.as_gib() / 2);
    config.with_drill(FailureDrillSpec { rate_per_day, kind: DrillKind::Emc, seed: 99 })
}

/// The availability payoff of pod overlap (the tentpole's acceptance
/// criterion): on the *same* seed and the *same* failure schedule, an
/// Octopus ring — whose pods can push evacuated VMs into the neighbour's
/// pool — migrates strictly more VMs and kills strictly fewer than disjoint
/// symmetric pods, whose stricken VMs can only fall back to their own hosts'
/// local DRAM.
#[test]
fn octopus_overlap_survives_emc_failures_better_than_symmetric_pods() {
    let trace = small_trace();
    let sym = run_multipool_fleet(&trace, &drilled_config(&trace, PodStyle::Symmetric, 4.0))
        .unwrap()
        .fleet;
    let oct =
        run_multipool_fleet(&trace, &drilled_config(&trace, PodStyle::Octopus, 4.0)).unwrap().fleet;
    // Both replays saw the same drill: the plan depends only on
    // (drill seed, duration, group count), which the two cells share.
    assert_eq!(sym.emc_failures, oct.emc_failures);
    assert!(sym.emc_failures > 0, "the drill must fire: {sym:?}");
    assert!(sym.vms_killed > 0, "a tight symmetric fleet must lose VMs: {sym:?}");
    assert!(
        oct.vms_migrated > sym.vms_migrated,
        "overlap must migrate strictly more: octopus {} vs symmetric {}",
        oct.vms_migrated,
        sym.vms_migrated
    );
    assert!(
        oct.vms_killed < sym.vms_killed,
        "overlap must kill strictly fewer: octopus {} vs symmetric {}",
        oct.vms_killed,
        sym.vms_killed
    );
    assert!(oct.availability() > sym.availability());
    // Every migration's copy window opened and closed on the timeline.
    assert_eq!(oct.migration_completions, oct.vms_migrated);
    assert_eq!(sym.migration_completions, sym.vms_migrated);
    assert!(!oct.evacuation_copy_time.is_zero());
}

/// Determinism of failure drills (satellite): the drilled sweep on the
/// parallel runner must equal the serial reference bit for bit, and a
/// zero-rate cell must reproduce the drill-free replay exactly.
#[test]
fn failure_drill_sweep_is_deterministic_and_zero_rate_matches_plain_replay() {
    let trace = small_trace();
    let mut specs = Vec::new();
    for pod in [PodStyle::Symmetric, PodStyle::Octopus] {
        for rate_per_day in [0.0, 4.0] {
            specs.push(FailureDrillSweepSpec {
                cell: MultiPoolSweepSpec {
                    pod,
                    groups: 4,
                    pool_fraction: 0.25,
                    scheduler: GroupSchedulerKind::RoundRobin,
                    borrowing: false,
                },
                rate_per_day,
            });
        }
    }
    assert!(sweep::worker_count(specs.len()) >= 1);
    let parallel = failure_drill_sweep(&trace, &specs, 7, 99).unwrap();
    let again = failure_drill_sweep(&trace, &specs, 7, 99).unwrap();
    assert_eq!(parallel, again, "same inputs must reproduce the sweep bit for bit");
    for point in &parallel {
        if point.spec.rate_per_day == 0.0 {
            // A zero-rate drill cell is exactly the plain multipool replay.
            let plain = run_multipool_fleet(
                &trace,
                &MultiPoolConfig::for_trace(
                    &trace,
                    point.spec.cell.pod,
                    point.spec.cell.groups,
                    point.spec.cell.pool_fraction,
                    point.spec.cell.scheduler,
                    7,
                ),
            )
            .unwrap();
            assert_eq!(point.outcome, plain, "zero-rate drill must be bit-identical");
            assert_eq!(point.outcome.fleet.emc_failures, 0);
        } else {
            assert!(point.outcome.fleet.emc_failures > 0, "{point:?}");
        }
    }
}

/// Regression for the host-port lifecycle: a 20-host fleet shares the
/// default 16-port pool, and over a multi-day trace more than 16 distinct
/// hosts end up holding pool slices — impossible before port detach/reattach
/// existed (the fleet was capped at the first 16 hosts forever).
#[test]
fn long_trace_cycles_more_hosts_than_ports_through_one_pool() {
    let config = ClusterConfig { servers: 20, ..ClusterConfig::small() };
    let trace = TraceGenerator::new(config, 1).generate(0);
    let fleet_config = FleetConfig::for_trace(&trace, 0.20, 7);
    assert_eq!(fleet_config.control.hosts, 20, "for_trace no longer caps hosts at the port count");
    let outcome = run_fleet(&trace, &fleet_config).unwrap();
    assert!(
        outcome.pooled_host_count > 16,
        "hosts must cycle through the 16 ports over the trace: {} pooled hosts",
        outcome.pooled_host_count
    );
    // Port pressure shows up as all-local fallbacks, not hard failures.
    assert!(outcome.fallback_all_local > 0);
    assert!(outcome.scheduled_vms > 0);
}

/// The pinned 24-server / 15-day replay must keep reproducing the outcome
/// captured from the implementation *before* the event-core and accounting
/// refactor (indexed event queue, incremental peaks and conservation
/// counters, arena bookkeeping) — the whole optimization is only admissible
/// because it is bit-identical. The comparison goes through `Debug` strings:
/// Rust's shortest-roundtrip float formatting makes equal strings equivalent
/// to bit-equal `f64` GiB-hour sums.
#[test]
fn arena_replay_reproduces_the_pre_refactor_golden_outcome() {
    let trace = TraceGenerator::new(
        ClusterConfig { servers: 24, duration_days: 15, ..ClusterConfig::azure_like() },
        1,
    )
    .generate(0);

    let plain = run_multipool_fleet(
        &trace,
        &MultiPoolConfig::for_trace(
            &trace,
            PodStyle::Symmetric,
            2,
            0.20,
            GroupSchedulerKind::RoundRobin,
            7,
        ),
    )
    .unwrap();
    assert_eq!(
        format!("{:?}", plain.fleet),
        "FleetOutcome { scheduled_vms: 1322, rejected_vms: 5, fallback_all_local: 205, \
         violations: 6, mitigations: 235, mitigation_copy_time: 95.4s, \
         reconfig_completions: 235, peak_degraded_vms: 11, qos_passes: 60, \
         releases_completed: 1092, emc_failures: 0, vms_migrated: 0, vms_killed: 0, \
         migration_completions: 0, evacuation_copy_time: 0ns, vms_drained: 0, \
         vms_rebalanced: 0, emcs_repaired: 0, groups_decommissioned: 0, \
         groups_expanded: 0, pooled_host_count: 24, \
         sum_local_peaks: Bytes(7187627769856), sum_host_pool_peaks: Bytes(5243081326592), \
         sum_total_peaks: Bytes(10335838797824), pool_peak: Bytes(1978906181632), \
         pool_gib_hours: 826997.7958333329, total_gib_hours: 2593592.516944444, vms_borrowed: 0, borrowed_gib_hours: 0.0 }"
    );
    assert_eq!(plain.cross_group_placements, 0);

    let drilled =
        run_multipool_fleet(&trace, &drilled_config(&trace, PodStyle::Octopus, 4.0)).unwrap();
    assert_eq!(
        format!("{:?}", drilled.fleet),
        "FleetOutcome { scheduled_vms: 1187, rejected_vms: 140, fallback_all_local: 983, \
         violations: 3, mitigations: 23, mitigation_copy_time: 5.7s, \
         reconfig_completions: 23, peak_degraded_vms: 6, qos_passes: 60, \
         releases_completed: 80, emc_failures: 58, vms_migrated: 93, vms_killed: 13, \
         migration_completions: 93, evacuation_copy_time: 101.75s, vms_drained: 0, \
         vms_rebalanced: 0, emcs_repaired: 0, groups_decommissioned: 0, \
         groups_expanded: 0, pooled_host_count: 24, \
         sum_local_peaks: Bytes(4648228356096), sum_host_pool_peaks: Bytes(3273838821376), \
         sum_total_peaks: Bytes(7260642213888), pool_peak: Bytes(2966748659712), \
         pool_gib_hours: 55719.272500000094, total_gib_hours: 1727270.4544444447, vms_borrowed: 0, borrowed_gib_hours: 0.0 }"
    );
    assert_eq!(drilled.cross_group_placements, 89);
}

/// The split-ownership payoff, pinned on the 15-day bench trace: Octopus
/// overlap with cross-pod slice borrowing recovers strictly more DRAM
/// savings than the re-homing baseline (14.5% — see ROADMAP.md), because
/// the borrow rung serves pool pressure without moving the VM's host out
/// of its home pod.
#[test]
fn borrowing_recovers_more_dram_savings_than_rehoming_on_the_bench_trace() {
    let trace = TraceGenerator::new(
        ClusterConfig { servers: 24, duration_days: 15, ..ClusterConfig::azure_like() },
        1,
    )
    .generate(0);
    let base = MultiPoolConfig::for_trace(
        &trace,
        PodStyle::Octopus,
        4,
        0.20,
        GroupSchedulerKind::TightestFit,
        6,
    );
    let sharded = run_multipool_fleet(
        &trace,
        &MultiPoolConfig::for_trace(
            &trace,
            PodStyle::Symmetric,
            4,
            0.20,
            GroupSchedulerKind::TightestFit,
            6,
        ),
    )
    .unwrap();
    let borrowing = run_multipool_fleet(&trace, &base.clone().with_borrowing(true)).unwrap();
    assert!(borrowing.fleet.vms_borrowed > 0, "{:?}", borrowing.fleet);
    // Every borrow keeps its host home: pool pressure no longer re-homes.
    assert_eq!(borrowing.cross_group_placements, 0, "{borrowing:?}");
    assert!(
        borrowing.fleet.dram_savings_fraction() > 0.145,
        "borrowing must beat the pinned re-homing baseline: {}",
        borrowing.fleet.dram_savings_fraction(),
    );
    assert!(
        borrowing.fleet.dram_savings_fraction() > sharded.fleet.dram_savings_fraction(),
        "overlap with borrowing must beat no-overlap sharding: {} vs {}",
        borrowing.fleet.dram_savings_fraction(),
        sharded.fleet.dram_savings_fraction(),
    );
}
