//! Cross-crate integration tests for the Pond reproduction.
//!
//! The actual tests live in `tests/tests/`; this library crate only exists to
//! anchor them in the workspace.
