//! # pond-bench
//!
//! Shared helpers for the figure-regeneration binaries (`src/bin/fig*.rs`)
//! and the Criterion micro-benchmarks (`benches/`).
//!
//! Every binary prints the rows/series of one table or figure from the Pond
//! paper's evaluation; `EXPERIMENTS.md` at the repository root records the
//! paper-reported values next to the regenerated ones. The binaries are
//! sized to finish in seconds to a couple of minutes on a laptop; the
//! `POND_CLUSTERS` and `POND_DAYS` environment variables scale the
//! simulation-based experiments up towards the paper's 100-cluster / 75-day
//! setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;

use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cluster_sim::ClusterTrace;

/// Number of clusters to simulate (default 12, override with `POND_CLUSTERS`).
pub fn cluster_count() -> u32 {
    std::env::var("POND_CLUSTERS").ok().and_then(|v| v.parse().ok()).unwrap_or(12)
}

/// Trace length in days (default 15, override with `POND_DAYS`).
pub fn trace_days() -> u32 {
    std::env::var("POND_DAYS").ok().and_then(|v| v.parse().ok()).unwrap_or(15)
}

/// The cluster configuration used by the simulation-backed figures.
pub fn bench_cluster_config() -> ClusterConfig {
    ClusterConfig { servers: 24, duration_days: trace_days(), ..ClusterConfig::azure_like() }
}

/// Generates the fleet of traces used by the simulation-backed figures.
pub fn bench_traces() -> Vec<ClusterTrace> {
    TraceGenerator::new(bench_cluster_config(), cluster_count()).generate_all()
}

/// A single trace for experiments that only need one cluster.
pub fn bench_trace() -> ClusterTrace {
    bench_generator().generate(0)
}

/// The generator behind [`bench_trace`], for binaries that replay the
/// lazily generated stream through an [`cluster_sim::ArrivalSource`]
/// instead of materializing the request vector. `bench_generator().stream(0)`
/// yields exactly the requests of `bench_trace()`, in order.
pub fn bench_generator() -> TraceGenerator {
    TraceGenerator::new(bench_cluster_config(), 1)
}

/// Prints a figure/table header in a consistent format.
pub fn print_header(figure: &str, description: &str) {
    println!("================================================================");
    println!("{figure}: {description}");
    println!("================================================================");
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(cluster_count() >= 1);
        assert!(trace_days() >= 1);
        let config = bench_cluster_config();
        assert_eq!(config.servers, 24);
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn single_trace_generation_works() {
        let trace = bench_trace();
        assert!(trace.len() > 100);
        assert_eq!(trace.validate(), Ok(()));
    }
}
