//! Wall-clock profiling for the bench binaries: per-phase timings and
//! per-event-class replay attribution.
//!
//! This is the *only* place the observability stack touches wall-clock
//! time. Replay-side metrics (`pond-metrics`) are simulated-time-only and
//! deterministic; the profilers here wrap them from the outside, so the
//! timings land in `BENCH_fleet.json` without ever entering replay state.

use cluster_sim::event::Event;
use pond_metrics::{event_class, ReplayObserver};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Records named phases (training, sweep, replay...) in call order.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Vec<(String, Duration)>,
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock time under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = f();
        self.record(name, start.elapsed());
        result
    }

    /// Records an externally measured duration under `name`.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.phases.push((name.to_string(), elapsed));
    }

    /// The recorded `(name, duration)` pairs in call order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// One-line JSON object (`{"training": 1.23, ...}`), keys in call
    /// order — emitted on a single line so the hand-formatted
    /// `BENCH_fleet.json` section scan stays exact.
    pub fn json_object(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, elapsed)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {:.3}", elapsed.as_secs_f64());
        }
        out.push('}');
        out
    }
}

/// A [`ReplayObserver`] that attributes replay wall-clock to event classes:
/// the window between two consecutive queue pops is charged to the class of
/// the *first* pop (the event whose handling filled that window).
#[derive(Debug, Default)]
pub struct EventClassProfiler {
    last: Option<(&'static str, Instant)>,
    classes: BTreeMap<&'static str, (u64, Duration)>,
}

impl EventClassProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closes the final event's attribution window. Call once, after the
    /// observed replay returns.
    pub fn finish(&mut self) {
        if let Some((class, start)) = self.last.take() {
            self.classes.entry(class).or_default().1 += start.elapsed();
        }
    }

    /// Count of events seen for `class` (zero when none).
    pub fn count(&self, class: &str) -> u64 {
        self.classes.get(class).map_or(0, |&(count, _)| count)
    }

    /// Per-class `(count, wall-clock)` in class-name order.
    pub fn classes(&self) -> impl Iterator<Item = (&'static str, u64, Duration)> + '_ {
        self.classes.iter().map(|(&class, &(count, elapsed))| (class, count, elapsed))
    }

    /// One-line JSON object
    /// (`{"arrival": {"count": 9, "secs": 1.2}, ...}`), classes in name
    /// order.
    pub fn json_object(&self) -> String {
        let mut out = String::from("{");
        for (i, (class, count, elapsed)) in self.classes().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{class}\": {{\"count\": {count}, \"secs\": {:.3}}}",
                elapsed.as_secs_f64()
            );
        }
        out.push('}');
        out
    }
}

impl ReplayObserver for EventClassProfiler {
    fn on_event(&mut self, event: &Event) {
        let now = Instant::now();
        if let Some((class, start)) = self.last.take() {
            self.classes.entry(class).or_default().1 += now - start;
        }
        let class = event_class(event);
        self.classes.entry(class).or_default().0 += 1;
        self.last = Some((class, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_profiler_renders_one_line_json() {
        let mut profiler = PhaseProfiler::new();
        profiler.record("training", Duration::from_millis(1500));
        profiler.record("replay", Duration::from_millis(250));
        let json = profiler.json_object();
        assert_eq!(json, "{\"training\": 1.500, \"replay\": 0.250}");
        assert!(!json.contains('\n'));
    }

    #[test]
    fn event_class_profiler_counts_and_attributes() {
        let mut profiler = EventClassProfiler::new();
        profiler.on_event(&Event::Arrival { time: 0, request_index: 0 });
        profiler.on_event(&Event::Arrival { time: 1, request_index: 1 });
        profiler.on_event(&Event::Departure { time: 5, token: 0 });
        profiler.finish();
        assert_eq!(profiler.count("arrival"), 2);
        assert_eq!(profiler.count("departure"), 1);
        assert_eq!(profiler.count("snapshot"), 0);
        let json = profiler.json_object();
        assert!(json.contains("\"arrival\": {\"count\": 2"));
        assert!(!json.contains('\n'));
    }
}
