//! Figure 6/7 (fleet sharding): how the pool *grouping* — not just the pool
//! size — drives DRAM savings. Shards the same fleet into 4 pool groups and
//! sweeps the pod overlap degree across every topology style — symmetric
//! pods (degree 0), the Octopus ring (1), k-regular rings (k), and
//! two-level pod-of-pods clusters — with cross-pod slice borrowing off
//! (pool pressure re-homes the whole VM to a neighbour pod) and on (the
//! host stays home and only the slices come from a reachable lender).
//! An unsharded single-pool row anchors what sharding gives up.

use cxl_hw::topology::PodStyle;
use pond_bench::{bench_trace, pct, print_header};
use pond_core::multipool::{
    multipool_sweep, GroupSchedulerKind, MultiPoolConfig, MultiPoolSweepSpec,
};

fn main() {
    print_header(
        "Figure 6/7 (fleet sharding)",
        "DRAM savings vs. pod overlap degree, with and without slice borrowing",
    );
    let trace = bench_trace();
    let fraction = 0.20;
    let groups = 4u16;
    let styles = [
        PodStyle::Symmetric,
        PodStyle::Octopus,
        PodStyle::KRegular { k: 2 },
        PodStyle::KRegular { k: 3 },
        PodStyle::PodOfPods { cluster: 2 },
        PodStyle::PodOfPods { cluster: 4 },
    ];
    let mut specs = vec![MultiPoolSweepSpec {
        pod: PodStyle::Symmetric,
        groups: 1,
        pool_fraction: fraction,
        scheduler: GroupSchedulerKind::TightestFit,
        borrowing: false,
    }];
    for pod in styles {
        for borrowing in [false, true] {
            specs.push(MultiPoolSweepSpec {
                pod,
                groups,
                pool_fraction: fraction,
                scheduler: GroupSchedulerKind::TightestFit,
                borrowing,
            });
        }
    }
    let points = multipool_sweep(&trace, &specs, 6).expect("multipool replay must not fail");

    println!(
        "{:>12} {:>7} {:>8} {:>7} {:>12} {:>11} {:>9} {:>12} {:>10}",
        "pods",
        "groups",
        "overlap",
        "borrow",
        "DRAM saved",
        "pool share",
        "borrowed",
        "cross-group",
        "fallbacks"
    );
    for point in &points {
        let fleet = &point.outcome.fleet;
        let overlap = MultiPoolConfig::for_trace(
            &trace,
            point.spec.pod,
            point.spec.groups,
            point.spec.pool_fraction,
            point.spec.scheduler,
            6,
        )
        .group_topology()
        .expect("a completed sweep cell has a valid topology")
        .overlap_degree();
        println!(
            "{:>12} {:>7} {:>8} {:>7} {:>12} {:>11} {:>9} {:>12} {:>10}",
            point.spec.pod.name(),
            point.spec.groups,
            overlap,
            if point.spec.borrowing { "on" } else { "off" },
            pct(fleet.dram_savings_fraction()),
            pct(fleet.pool_dram_fraction()),
            fleet.vms_borrowed,
            point.outcome.cross_group_placements,
            fleet.fallback_all_local,
        );
    }
    println!(
        "\nat {} pool: sharding the fleet shrinks each group's statistical multiplexing \
         pool; overlap claws part of it back, and slice borrowing recovers more of it \
         than re-homing because the VM's host never leaves its home pod",
        pct(fraction)
    );
    println!(
        "paper: Pond's savings grow with pool scope (Figure 3); pods trade that for blast radius"
    );
}
