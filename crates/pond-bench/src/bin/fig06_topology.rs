//! Figure 6/7 (fleet sharding): how the pool *grouping* — not just the pool
//! size — drives DRAM savings. Shards the same fleet into 1, 2, and 4 pool
//! groups under symmetric pods (every host reaches exactly its home pool)
//! and Octopus-style sparse rings (each pod also reaches the next pod's
//! pool), and replays the full Pond pipeline per group on the single
//! time-ordered event core.

use cxl_hw::topology::PodStyle;
use pond_bench::{bench_trace, pct, print_header};
use pond_core::multipool::{multipool_sweep, GroupSchedulerKind, MultiPoolSweepSpec};

fn main() {
    print_header(
        "Figure 6/7 (fleet sharding)",
        "DRAM savings vs. pod topology: symmetric pods vs. Octopus overlap",
    );
    let trace = bench_trace();
    let fraction = 0.20;
    let mut specs = Vec::new();
    for pod in [PodStyle::Symmetric, PodStyle::Octopus] {
        for groups in [1u16, 2, 4] {
            specs.push(MultiPoolSweepSpec {
                pod,
                groups,
                pool_fraction: fraction,
                scheduler: GroupSchedulerKind::TightestFit,
            });
        }
    }
    let points = multipool_sweep(&trace, &specs, 6).expect("multipool replay must not fail");

    println!(
        "{:>10} {:>7} {:>12} {:>11} {:>12} {:>10} {:>11}",
        "pods", "groups", "DRAM saved", "pool share", "cross-group", "fallbacks", "mitigated"
    );
    for point in &points {
        let fleet = &point.outcome.fleet;
        println!(
            "{:>10} {:>7} {:>12} {:>11} {:>12} {:>10} {:>11}",
            point.spec.pod.name(),
            point.spec.groups,
            pct(fleet.dram_savings_fraction()),
            pct(fleet.pool_dram_fraction()),
            point.outcome.cross_group_placements,
            fleet.fallback_all_local,
            fleet.mitigations,
        );
    }
    println!(
        "\nat {} pool: sharding the fleet shrinks each group's statistical multiplexing \
         pool, and Octopus overlap claws part of it back by letting pods borrow \
         from their ring neighbour",
        pct(fraction)
    );
    println!(
        "paper: Pond's savings grow with pool scope (Figure 3); pods trade that for blast radius"
    );
}
