//! Figure 15: effectiveness of zNUMA — traffic that reaches the zNUMA node
//! for latency-sensitive workloads whose untouched memory was predicted
//! correctly (video, database, KV store, analytics).

use cxl_hw::latency::LatencyScenario;
use cxl_hw::units::Bytes;
use hypervisor_sim::guest::{GuestAllocation, GuestPerformance};
use hypervisor_sim::vm::{VirtualMachine, VmConfig};
use pond_bench::print_header;
use workload_model::spill::SpillModel;
use workload_model::WorkloadSuite;

fn main() {
    print_header(
        "Figure 15",
        "traffic to the zNUMA node under correct untouched-memory predictions",
    );
    let suite = WorkloadSuite::standard();
    let spill = SpillModel::default();
    // Stand-ins for the paper's four production workloads.
    let picks = [
        ("Video", "proprietary/P1"),
        ("Database", "voltdb/tpcc"),
        ("KV store", "redis/ycsb-a"),
        ("Analytics", "spark/kmeans"),
    ];

    println!(
        "{:<12} {:<20} {:>18} {:>14}",
        "workload", "suite stand-in", "traffic to zNUMA", "slowdown"
    );
    for (label, name) in picks {
        let workload = suite.get(name).expect("stand-in exists in the suite").clone();
        // Correct prediction: zNUMA sized exactly to the untouched memory.
        let untouched = Bytes::from_gib(16);
        let memory = workload.footprint + untouched;
        let vm = VirtualMachine::launch(
            1,
            VmConfig { cores: 16, memory, pool_memory: untouched },
            workload,
        );
        let alloc = GuestAllocation::for_vm(&vm);
        let perf = GuestPerformance::evaluate(&vm, &alloc, LatencyScenario::Increase182, &spill);
        println!(
            "{:<12} {:<20} {:>17.2}% {:>13.2}%",
            label,
            name,
            perf.znuma_traffic_fraction * 100.0,
            perf.slowdown * 100.0
        );
    }
    println!("\npaper values: Video 0.25%, Database 0.06%, KV store 0.11%, Analytics 0.38%");
    println!("paper shape: a correctly sized zNUMA receives a negligible share of accesses");
}
