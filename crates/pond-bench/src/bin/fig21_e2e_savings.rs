//! Figure 21: end-to-end DRAM savings vs. pool size under PDM = 5% and
//! TP = 98%, for Pond at 182% and 222% latency and the static 15% strawman.

use cluster_sim::pooling::pool_size_sweep;
use cluster_sim::scheduler::FixedPoolFraction;
use cluster_sim::simulation::SimulationConfig;
use cxl_hw::latency::LatencyScenario;
use pond_bench::{bench_traces, pct, print_header};
use pond_core::policy::{PondPolicy, PondPolicyConfig};

fn main() {
    print_header("Figure 21", "required overall DRAM [%] vs. pool size (PDM = 5%, TP = 98%)");
    let traces = bench_traces();
    let pool_sizes = [2u16, 8, 16, 32, 64];

    // Train one Pond policy per scenario on the first trace and reuse it
    // (cloned) across pool sizes and clusters — the models do not depend on
    // the pool size.
    let mut columns: Vec<(String, Vec<f64>, f64)> = Vec::new();
    for scenario in LatencyScenario::all() {
        let policy_config = PondPolicyConfig { scenario, ..Default::default() };
        let policy = PondPolicy::train(&traces[0], &policy_config, 21);
        let sim_config = SimulationConfig {
            scenario,
            pdm: policy_config.pdm,
            qos_mitigation: true,
            ..Default::default()
        };
        let points = pool_size_sweep(&traces, &pool_sizes, &sim_config, || policy.clone());
        let violations =
            points.iter().map(|p| p.violation_fraction).sum::<f64>() / points.len() as f64;
        columns.push((
            format!("Pond @ {scenario}"),
            points.into_iter().map(|p| p.required_dram_fraction).collect(),
            violations,
        ));
    }

    // The static strawman: 15% of every VM's memory on the pool.
    let static_config = SimulationConfig {
        scenario: LatencyScenario::Increase182,
        qos_mitigation: false,
        ..Default::default()
    };
    let static_points =
        pool_size_sweep(&traces, &pool_sizes, &static_config, || FixedPoolFraction::new(0.15));
    let static_violations = static_points.iter().map(|p| p.violation_fraction).sum::<f64>()
        / static_points.len() as f64;
    columns.push((
        "Static 15%".to_string(),
        static_points.into_iter().map(|p| p.required_dram_fraction).collect(),
        static_violations,
    ));

    print!("{:<14}", "pool sockets");
    for (name, _, _) in &columns {
        print!(" {name:>22}");
    }
    println!();
    for (i, &sockets) in pool_sizes.iter().enumerate() {
        print!("{sockets:<14}");
        for (_, series, _) in &columns {
            print!(" {:>22}", pct(series[i]));
        }
        println!();
    }
    println!();
    for (name, series, violations) in &columns {
        let savings_16 = 1.0 - series[2];
        println!(
            "{name}: DRAM saved at 16 sockets = {}, scheduling mispredictions = {}",
            pct(savings_16),
            pct(*violations)
        );
    }
    println!("\npaper values at 16 sockets: Pond@182% saves ~9%, Pond@222% saves ~7%, static ~3%");
}
