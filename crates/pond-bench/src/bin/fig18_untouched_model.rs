//! Figure 18: the untouched-memory model's overprediction rate as a function
//! of the average amount of memory it labels untouched, compared with a
//! fixed-amount-per-VM strawman.

use pond_bench::{bench_trace, pct, print_header};
use pond_core::untouched::{
    evaluate_model, evaluate_predictions, replay_history, UntouchedMemoryModel,
    UntouchedModelConfig,
};

fn main() {
    print_header(
        "Figure 18",
        "overpredictions vs. average untouched memory (GBM vs. fixed strawman)",
    );
    let trace = bench_trace();
    let split = trace.requests.len() / 2;
    let (train, test) = trace.requests.split_at(split);
    println!("training on {} VMs, evaluating on {} VMs\n", train.len(), test.len());

    println!("{:<28} {:>22} {:>18}", "predictor", "avg untouched [%GB-h]", "overpredictions");
    for quantile in [0.02, 0.05, 0.10, 0.20, 0.35, 0.50] {
        let model =
            UntouchedMemoryModel::train(train, &UntouchedModelConfig { quantile, rounds: 50 }, 42);
        let point = evaluate_model(&model, test, replay_history(train));
        println!(
            "{:<28} {:>22} {:>18}",
            format!("GBM (q = {quantile:.2})"),
            pct(point.avg_untouched_fraction),
            pct(point.overprediction_rate)
        );
    }
    println!();
    for fraction in [0.05, 0.10, 0.15, 0.20, 0.30, 0.40] {
        let predictions = vec![fraction; test.len()];
        let point = evaluate_predictions(test, &predictions);
        println!(
            "{:<28} {:>22} {:>18}",
            format!("fixed {:.0}% per VM", fraction * 100.0),
            pct(point.avg_untouched_fraction),
            pct(point.overprediction_rate)
        );
    }
    println!("\npaper shape: at ~20% average untouched memory the GBM overpredicts ~2.5% of VMs");
    println!("             while the fixed strawman overpredicts ~12% (about 5x worse)");
}
