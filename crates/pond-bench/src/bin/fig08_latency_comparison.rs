//! Figure 8: pool access latency of Pond's multi-headed EMC design vs. the
//! switch-only strawman across pool sizes.

use cxl_hw::latency::LatencyModel;
use cxl_hw::topology::PoolTopology;
use pond_bench::print_header;

fn main() {
    print_header("Figure 8", "pool access latency: multi-headed EMC vs. switch-only design");
    let model = LatencyModel::default();
    println!("NUMA-local baseline: {}\n", model.local_dram_latency());
    println!(
        "{:<14} {:>16} {:>16} {:>12}",
        "pool sockets", "Pond (EMC)", "switch-only", "reduction"
    );

    for sockets in [2u16, 8, 16, 32, 64] {
        let pond = PoolTopology::pond(sockets)
            .map(|t| model.pool_access_latency(&t))
            .expect("supported pool size");
        let switch_only = model.pool_access_latency(&PoolTopology::switch_only(sockets).unwrap());
        let reduction = 1.0 - pond.as_nanos() / switch_only.as_nanos();
        println!(
            "{:<14} {:>16} {:>16} {:>11.0}%",
            sockets,
            format!("{pond}"),
            format!("{switch_only}"),
            reduction * 100.0
        );
    }
    println!("\npaper shape: Pond reduces latency by about one third (-36% at 16 sockets)");
}
