//! Pods sweep: the full (pod style × group count × pool fraction ×
//! scheduler) grid over one trace, replayed through the sharded multi-pool
//! fleet on the parallel sweep runner. The trace is never materialized —
//! every cell replays the lazily generated arrival stream. Every cell is
//! deterministic for a fixed `(stream, seed)` — including between
//! `POND_SWEEP_THREADS=1` and the default thread count, which CI checks by
//! diffing the two outputs.
//!
//! Set `POND_SMOKE=1` to shrink the grid to a CI-sized smoke check.

use cxl_hw::topology::PodStyle;
use pond_bench::{bench_generator, pct, print_header};
use pond_core::multipool::{multipool_sweep_source, GroupSchedulerKind, MultiPoolSweepSpec};

fn smoke() -> bool {
    std::env::var("POND_SMOKE").is_ok_and(|v| v == "1")
}

fn grid() -> Vec<MultiPoolSweepSpec> {
    let (group_counts, fractions): (&[u16], &[f64]) =
        if smoke() { (&[2], &[0.15]) } else { (&[2, 4], &[0.10, 0.20, 0.30]) };
    let mut specs = Vec::new();
    for &pod in &[PodStyle::Symmetric, PodStyle::Octopus] {
        for &groups in group_counts {
            for &pool_fraction in fractions {
                for scheduler in GroupSchedulerKind::ALL {
                    specs.push(MultiPoolSweepSpec {
                        pod,
                        groups,
                        pool_fraction,
                        scheduler,
                        borrowing: false,
                    });
                }
            }
        }
    }
    specs
}

fn main() {
    print_header(
        "Pods sweep",
        "DRAM savings and mitigation rate over (pods x groups x pool % x scheduler)",
    );
    let generator = bench_generator();
    let specs = grid();
    let points = multipool_sweep_source(|| generator.stream(0), &specs, 11)
        .expect("multipool replay must not fail");

    println!(
        "{:>10} {:>7} {:>7} {:>15} {:>12} {:>10} {:>12} {:>10}",
        "pods",
        "groups",
        "pool %",
        "scheduler",
        "DRAM saved",
        "mit rate",
        "cross-group",
        "rejected"
    );
    for point in &points {
        let fleet = &point.outcome.fleet;
        println!(
            "{:>10} {:>7} {:>7} {:>15} {:>12} {:>10} {:>12} {:>10}",
            point.spec.pod.name(),
            point.spec.groups,
            pct(point.spec.pool_fraction),
            point.spec.scheduler.name(),
            pct(fleet.dram_savings_fraction()),
            pct(fleet.mitigation_rate()),
            point.outcome.cross_group_placements,
            fleet.rejected_vms,
        );
    }
    let best = points
        .iter()
        .max_by(|a, b| {
            a.outcome
                .fleet
                .dram_savings_fraction()
                .total_cmp(&b.outcome.fleet.dram_savings_fraction())
        })
        .expect("non-empty sweep");
    println!(
        "\nbest cell: {} pods x {} groups x {} pool x {} -> {} DRAM saved",
        best.spec.pod.name(),
        best.spec.groups,
        pct(best.spec.pool_fraction),
        best.spec.scheduler.name(),
        pct(best.outcome.fleet.dram_savings_fraction()),
    );
    println!("paper: grouping, not just pool size, decides how much stranding pooling recovers");
}
