//! Failure drill: EMC failures injected into the multi-pool fleet timeline,
//! answered by cross-group VM migration (§4.1 / §7 of the paper — "a pool
//! bounds the blast radius of a memory-device failure" — made measurable).
//!
//! Every cell replays the same trace with the *same* deterministic failure
//! schedule (one drill seed shared across cells at equal rates), so the
//! survival comparison isolates the pod topology: symmetric pods can only
//! re-home a stricken VM onto their own hosts' local DRAM, while an
//! Octopus-overlap pod can also borrow its ring neighbour's pool. Per-host
//! local DRAM is tightened to half the trace sizing so evacuations compete
//! for real headroom — on a half-empty fleet every topology survives
//! trivially and the drill shows nothing.
//!
//! Deterministic for a fixed `(trace, seed)` — including between
//! `POND_SWEEP_THREADS=1` and the default thread count, which CI checks by
//! diffing the two outputs. Set `POND_SMOKE=1` to shrink the grid to a
//! CI-sized smoke check.

use cxl_hw::topology::PodStyle;
use cxl_hw::units::Bytes;
use pond_bench::{bench_trace, pct, print_header};
use pond_core::multipool::{
    drill_config, failure_drill_sweep_with, FailureDrillSweepSpec, GroupSchedulerKind,
    MultiPoolSweepSpec,
};

const SEED: u64 = 7;
const DRILL_SEED: u64 = 99;

fn smoke() -> bool {
    std::env::var("POND_SMOKE").is_ok_and(|v| v == "1")
}

fn grid() -> Vec<FailureDrillSweepSpec> {
    let rates: &[f64] = if smoke() { &[0.0, 4.0] } else { &[0.0, 1.0, 2.0, 4.0, 8.0] };
    let mut specs = Vec::new();
    for &rate_per_day in rates {
        for &pod in &[PodStyle::Symmetric, PodStyle::Octopus] {
            specs.push(FailureDrillSweepSpec {
                cell: MultiPoolSweepSpec {
                    pod,
                    groups: 4,
                    pool_fraction: 0.30,
                    scheduler: GroupSchedulerKind::RoundRobin,
                    borrowing: false,
                },
                rate_per_day,
            });
        }
    }
    specs
}

fn main() {
    print_header(
        "Failure drill",
        "EMC failures vs. pod overlap: survival by cross-group migration",
    );
    let trace = bench_trace();
    let points = failure_drill_sweep_with(&trace, &grid(), |spec| {
        let mut config = drill_config(&trace, spec, SEED, DRILL_SEED);
        // Half the trace sizing: evacuations must fight for headroom.
        config.control.local_dram_per_host =
            Bytes::from_gib(config.control.local_dram_per_host.as_gib() / 2);
        config
    })
    .expect("failure drill replay must not fail");

    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>7} {:>9} {:>13} {:>13}",
        "pods",
        "rate/day",
        "failures",
        "migrated",
        "killed",
        "survival",
        "availability",
        "copy time"
    );
    for point in &points {
        let fleet = &point.outcome.fleet;
        println!(
            "{:>10} {:>10} {:>9} {:>9} {:>7} {:>9} {:>13} {:>12.1}s",
            point.spec.cell.pod.name(),
            point.spec.rate_per_day,
            fleet.emc_failures,
            fleet.vms_migrated,
            fleet.vms_killed,
            pct(fleet.survival_rate()),
            pct(fleet.availability()),
            fleet.evacuation_copy_time.as_secs_f64(),
        );
    }

    // The headline contrast: at the highest drilled rate, overlap must pay.
    let at_max = |pod: PodStyle| {
        points
            .iter()
            .filter(|p| p.spec.cell.pod == pod && p.spec.rate_per_day > 0.0)
            .max_by(|a, b| a.spec.rate_per_day.total_cmp(&b.spec.rate_per_day))
            .expect("grid has drilled cells")
    };
    let sym = at_max(PodStyle::Symmetric);
    let oct = at_max(PodStyle::Octopus);
    println!(
        "\nat {}/day: symmetric kills {} ({} availability), octopus kills {} ({} availability)",
        sym.spec.rate_per_day,
        sym.outcome.fleet.vms_killed,
        pct(sym.outcome.fleet.availability()),
        oct.outcome.fleet.vms_killed,
        pct(oct.outcome.fleet.availability()),
    );
    println!("\noctopus at {}/day:\n{}", oct.spec.rate_per_day, oct.outcome.fleet);
    println!("paper: pooling bounds the blast radius; pod overlap turns kills into migrations");
}
