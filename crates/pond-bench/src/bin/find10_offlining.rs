//! Finding 10: pool memory offlining speeds stay below 1 GB/s for 99.99% of
//! VM starts (and 10 GB/s for 99.999%) — the asynchronous release buffer
//! keeps offlining off the VM-start critical path.

use cluster_sim::scheduler::FixedPoolFraction;
use cluster_sim::simulation::{Simulation, SimulationConfig};
use pond_bench::{bench_trace, print_header};

fn main() {
    print_header("Finding 10", "pool offlining rates required to keep up with VM starts");
    let trace = bench_trace();
    let config = SimulationConfig { qos_mitigation: false, ..Default::default() };
    let outcome = Simulation::new(config, FixedPoolFraction::new(0.3)).run(&trace);

    // For every pool release, compute the rate that would be required to have
    // the capacity back before the next VM start that needs pool memory.
    let mut rates: Vec<f64> = Vec::new();
    let mut releases = outcome.pool_releases.clone();
    releases.sort_by_key(|r| r.time);
    let starts: Vec<u64> = trace.requests.iter().map(|r| r.arrival).collect();
    for release in &releases {
        let next_start = starts.iter().find(|&&t| t > release.time);
        let gap_secs = next_start.map(|&t| (t - release.time).max(1)).unwrap_or(1) as f64;
        rates.push(release.amount.as_gib_f64() / gap_secs);
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| rates[((rates.len() - 1) as f64 * p) as usize];

    println!("pool releases observed: {}", rates.len());
    println!("required offlining rate percentiles (GB/s):");
    for p in [0.50_f64, 0.90, 0.99, 0.9999, 0.99999] {
        println!("  p{:<8} {:>10.3}", p * 100.0, q(p.min(1.0)));
    }
    println!("\npaper values: below 1 GB/s for 99.99% of VM starts and 10 GB/s for 99.999%");
}
