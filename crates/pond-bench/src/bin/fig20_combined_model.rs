//! Figure 20: the combined prediction model — scheduling mispredictions vs.
//! the average fraction of DRAM allocated on the pool, for both latency
//! scenarios, after solving Eq. (1).

use cxl_hw::latency::LatencyScenario;
use pond_bench::{bench_trace, pct, print_header};
use pond_core::combined::{CombinedModel, UntouchedCandidate};
use pond_core::sensitivity::{training_dataset, SensitivityModelConfig};
use pond_core::untouched::{
    evaluate_model, replay_history, UntouchedMemoryModel, UntouchedModelConfig,
};
use pond_ml::forest::RandomForest;
use workload_model::WorkloadSuite;

fn main() {
    print_header("Figure 20", "combined model: mispredictions vs. average pool DRAM");
    let suite = WorkloadSuite::standard();
    let trace = bench_trace();
    let split = trace.requests.len() / 2;
    let (train, test) = trace.requests.split_at(split);

    // Candidate operating points of the untouched-memory model (shared by
    // both scenarios — untouched memory does not depend on latency).
    let untouched_candidates: Vec<UntouchedCandidate> = [0.02, 0.05, 0.10, 0.20, 0.35]
        .iter()
        .map(|&quantile| {
            let model = UntouchedMemoryModel::train(
                train,
                &UntouchedModelConfig { quantile, rounds: 40 },
                7,
            );
            UntouchedCandidate {
                quantile,
                point: evaluate_model(&model, test, replay_history(train)),
            }
        })
        .collect();

    for scenario in LatencyScenario::all() {
        let config = SensitivityModelConfig { scenario, ..Default::default() };
        let data = training_dataset(&suite, &config, 11);
        let (train_ml, validation) = data.train_test_split(0.5, 13);
        let forest = RandomForest::fit(&train_ml, &config.forest, 13);
        let scores = forest.predict_proba_batch(&validation).expect("matching schema");
        let sensitivity_points = pond_ml::eval::threshold_sweep(&scores, validation.labels(), 100);

        println!("\n-- scenario {scenario} --");
        println!("{:<26} {:>18} {:>18}", "misprediction budget", "avg pool DRAM", "mispredictions");
        let budgets = [0.005, 0.01, 0.02, 0.03, 0.05];
        for point in
            CombinedModel::tradeoff_curve(&sensitivity_points, &untouched_candidates, &budgets)
        {
            println!(
                "{:<26} {:>18} {:>18}",
                pct(point.budget),
                pct(point.pool_share),
                pct(point.mispredictions)
            );
        }
    }
    println!("\npaper shape: at a 2% misprediction target Pond schedules ~44% of DRAM on the pool");
    println!("             at 182% latency and ~35% at 222% (the harder scenario achieves less)");
}
