//! Figure 2: memory stranding at cluster scale.
//!
//! (a) Stranded memory vs. scheduled CPU cores, bucketed as in the paper
//!     (mean, 5th/95th percentile, outliers).
//! (b) Stranding over time for 8 racks, including a workload-shift event.

use cluster_sim::scheduler::AllLocal;
use cluster_sim::simulation::{Simulation, SimulationConfig};
use cluster_sim::stranding::{bucket_by_scheduled_cores, rack_time_series, skip_warmup};
use cluster_sim::sweep;
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use pond_bench::{bench_cluster_config, cluster_count, pct, print_header};

fn main() {
    print_header("Figure 2a", "stranded memory vs. scheduled CPU cores");

    let config = SimulationConfig {
        enforce_memory_capacity: true,
        qos_mitigation: false,
        snapshot_interval: 6 * 3600,
        ..Default::default()
    };

    // One independent simulation per cluster, fanned out across cores; the
    // flattened sample list keeps cluster order, so output is identical to
    // the serial loop's.
    let generator = TraceGenerator::new(bench_cluster_config(), cluster_count());
    let clusters: Vec<u32> = (0..cluster_count()).collect();
    let samples: Vec<_> = sweep::parallel_map(&clusters, |_, &cluster| {
        let trace = generator.generate(cluster);
        let outcome = Simulation::new(config.clone(), AllLocal).run(&trace);
        skip_warmup(&outcome.stranding_samples, 86_400)
    })
    .into_iter()
    .flatten()
    .collect();

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scheduled cores", "samples", "mean", "p5", "p95", "max"
    );
    for bucket in bucket_by_scheduled_cores(&samples, &[0.60, 0.70, 0.80, 0.90]) {
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
            format!("{:.0}%-{:.0}%", bucket.cores_from * 100.0, bucket.cores_to.min(1.0) * 100.0),
            bucket.samples,
            pct(bucket.mean),
            pct(bucket.p5),
            pct(bucket.p95),
            pct(bucket.max),
        );
    }
    println!("paper shape: ~6% stranded at 75% scheduled cores, >10% at 85%, p95 up to ~25%");

    print_header("Figure 2b", "stranding over time across 8 racks (workload shift at day 36)");
    let shift_config = ClusterConfig {
        servers: 24,
        duration_days: 60,
        workload_shift_day: Some(36),
        ..ClusterConfig::azure_like()
    };
    let trace = TraceGenerator::new(shift_config.clone(), 1).generate(0);
    let outcome = Simulation::new(config, AllLocal).run(&trace);
    let racks = rack_time_series(&outcome.stranding_samples, 3, shift_config.dram_per_server);
    println!("{:<8} {:>14} {:>14} {:>14}", "rack", "day 10", "day 30", "day 50");
    for rack in racks.iter().take(8) {
        let at_day = |day: u64| {
            rack.points
                .iter()
                .min_by_key(|(t, _)| t.abs_diff(day * 86_400))
                .map(|(_, s)| pct(*s))
                .unwrap_or_else(|| "-".into())
        };
        println!("{:<8} {:>14} {:>14} {:>14}", rack.rack, at_day(10), at_day(30), at_day(50));
    }
    println!("paper shape: stranding jumps after the workload change around day 36");
}
