//! Figure 7: pool access latency breakdown for each Pond pool size.

use cxl_hw::latency::LatencyModel;
use cxl_hw::topology::PoolTopology;
use pond_bench::print_header;

fn main() {
    print_header("Figure 7", "pool size vs. access latency breakdown (Pond multi-headed EMC)");
    let model = LatencyModel::default();
    println!("local DRAM baseline: {}\n", model.local_dram_latency());

    for sockets in [8u16, 16, 32, 64] {
        let topology = PoolTopology::pond(sockets).expect("supported Pond pool size");
        let total = model.pool_access_latency(&topology);
        let percent = model.pool_latency_percent(&topology);
        println!(
            "{}-socket Pond: {} ({:.0}% of local, +{} over local)",
            sockets,
            total,
            percent,
            model.pool_added_latency(&topology)
        );
        for entry in model.pool_access_breakdown(&topology) {
            println!(
                "    {:<22} x{:<2} {:>8}",
                format!("{:?}", entry.component),
                entry.count,
                format!("{}", entry.total)
            );
        }
        println!();
    }
    println!(
        "paper values: 8-socket 155ns (182%), 16-socket 180ns (212%), 32/64-socket >270ns (318%)"
    );
}
