//! The fleet timeline: the `fig_lifecycle` "full" drill — failures,
//! repairs, a mid-trace decommission, an expansion, and proactive
//! rebalancing — rendered as per-snapshot availability / DRAM-savings /
//! pool-occupancy series instead of a single end-of-trace number.
//!
//! This is the paper's trajectory view (§6, Figs. 19–20 track savings and
//! availability over 75+ days of fleet time) and the dashboard the
//! experiment harness consumes: a [`TimeSeriesRecorder`] rides the observed
//! multipool replay, one sample per group per QoS tick, and the drill's
//! story — pod 3 draining out at mid-trace, pod 0 growing a device, every
//! failure healing 6 h later — becomes visible as series instead of being
//! inferred from totals.
//!
//! Set `POND_EVENT_LOG=<path>` to also stream the JSONL structured event
//! log (every placement decision, QoS pass, and lifecycle operation) for
//! post-hoc forensics. Observers are read-only, so the `outcome` line is
//! bit-identical with the log on or off — which CI asserts by diffing the
//! two runs. `POND_SMOKE=1` shrinks the trace to a CI-sized check.

use cluster_sim::source::TraceCursor;
use cxl_hw::topology::PodStyle;
use cxl_hw::units::Bytes;
use pond_bench::{bench_trace, pct, print_header};
use pond_core::multipool::{
    lifecycle_config, run_multipool_source_observed, DrillKind, FailureDrillSpec,
    GroupSchedulerKind, LifecycleEvent, LifecycleOp, LifecyclePlan, LifecycleSweepSpec,
    MultiPoolSweepSpec, RebalanceSpec,
};
use pond_core::policy::PondPolicy;
use pond_metrics::{TimeSeriesRecorder, EVENT_LOG_ENV};

const SEED: u64 = 7;
const DRILL_SEED: u64 = 99;
const MTTR_SECS: u64 = 6 * 3_600;

/// Timeline rows printed: the recorded points are downsampled to at most
/// this many evenly strided rows (the final tick is always shown).
const MAX_ROWS: usize = 30;

fn smoke() -> bool {
    std::env::var("POND_SMOKE").is_ok_and(|v| v == "1")
}

/// The `fig_lifecycle` "full" phase, spelled out: same cell, same drill,
/// same plan, same rebalance spec, same sizing — so the timeline is the
/// trajectory view of a scenario whose totals are already pinned there.
fn spec(duration: u64) -> LifecycleSweepSpec {
    LifecycleSweepSpec {
        cell: MultiPoolSweepSpec {
            pod: PodStyle::Octopus,
            groups: 4,
            pool_fraction: 0.30,
            scheduler: GroupSchedulerKind::RoundRobin,
            borrowing: false,
        },
        drill: Some(FailureDrillSpec {
            rate_per_day: 4.0,
            kind: DrillKind::EmcWithRepair { mttr_secs: MTTR_SECS },
            seed: DRILL_SEED,
        }),
        lifecycle: Some(LifecyclePlan {
            events: vec![
                LifecycleEvent {
                    time: duration / 3,
                    op: LifecycleOp::ExpandGroup { group: 0, capacity: Bytes::from_gib(32) },
                },
                LifecycleEvent {
                    time: duration / 2,
                    op: LifecycleOp::DecommissionGroup { group: 3 },
                },
            ],
        }),
        rebalance: Some(RebalanceSpec { starved_fraction: 0.10, max_moves_per_pass: 2 }),
    }
}

fn main() {
    print_header(
        "Fleet timeline",
        "availability / savings / occupancy series through the full lifecycle drill",
    );
    let trace = bench_trace();
    let mut config = lifecycle_config(&trace, &spec(trace.duration), SEED);
    // Same three-quarter sizing as fig_lifecycle's non-smoke run.
    if !smoke() {
        config.control.local_dram_per_host =
            Bytes::from_gib(config.control.local_dram_per_host.as_gib() * 3 / 4);
    }
    let groups = usize::from(config.groups);

    let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);
    let mut recorder = TimeSeriesRecorder::from_env().expect("event-log path must be creatable");
    let outcome =
        run_multipool_source_observed(TraceCursor::new(&trace), &config, policy, &mut recorder)
            .expect("lifecycle replay must not fail");
    let points = recorder.points();

    println!(
        "fleet: {} servers, {} requests, {} days, {} groups ({:?} pods), {} snapshot ticks",
        trace.servers,
        trace.requests.len(),
        trace.duration / 86_400,
        groups,
        config.pod,
        points.len(),
    );

    let mut header = format!("{:>7} {:>9} {:>9} {:>9}", "day", "avail", "savings", "live VMs");
    for g in 0..groups {
        header.push_str(&format!(" {:>8}", format!("pool{g}")));
    }
    println!("{header}");
    let stride = points.len().div_ceil(MAX_ROWS).max(1);
    for (i, point) in points.iter().enumerate() {
        if i % stride != 0 && i != points.len() - 1 {
            continue;
        }
        let mut row = format!(
            "{:>7.2} {:>9} {:>9} {:>9}",
            point.time as f64 / 86_400.0,
            pct(point.fleet_availability),
            pct(point.fleet_savings),
            point.live_vms,
        );
        for series in &point.groups {
            // A drained pod's occupancy is meaningless; mark it offline.
            if series.online {
                row.push_str(&format!(" {:>8}", pct(series.occupancy)));
            } else {
                row.push_str(&format!(" {:>8}", "--"));
            }
        }
        println!("{row}");
    }

    println!("\nfleet outcome:\n{}", outcome.fleet);
    // The log status is deliberately NOT part of the `outcome` line: CI
    // diffs that line between a logged and an unlogged run to assert the
    // observer is read-only.
    match std::env::var(EVENT_LOG_ENV) {
        Ok(path) if !path.is_empty() => println!("\nevent log: {path}"),
        _ => println!("\nevent log: off (set {EVENT_LOG_ENV}=<path> for the JSONL stream)"),
    }
    println!(
        "outcome scheduled={} killed={} availability={} savings={} points={} groups={}",
        outcome.fleet.scheduled_vms,
        outcome.fleet.vms_killed,
        pct(outcome.fleet.availability()),
        pct(outcome.fleet.dram_savings_fraction()),
        points.len(),
        groups,
    );
    println!("paper: the headline claims are trajectories, not endpoints (section 6, figs 19-20)");
}
