//! Figure 17: the latency-insensitivity model's false-positive rate as a
//! function of how many workloads it marks insensitive, compared with the
//! Memory-Bound and DRAM-Bound single-counter heuristics.

use pond_bench::{pct, print_header};
use pond_core::sensitivity::{
    mean_fp_up_to_coverage, training_dataset, CounterHeuristic, SensitivityModelConfig,
};
use pond_ml::eval::OperatingPoint;
use pond_ml::forest::RandomForest;
use workload_model::WorkloadSuite;

fn interpolate_fp(points: &[OperatingPoint], coverage: f64) -> f64 {
    points
        .iter()
        .filter(|p| p.positive_fraction <= coverage)
        .map(|p| p.false_positive_fraction)
        .fold(0.0, f64::max)
}

fn main() {
    print_header("Figure 17", "false positives vs. share of workloads marked latency-insensitive");
    let suite = WorkloadSuite::standard();
    let config = SensitivityModelConfig::default();

    // 10-fold repeated random split validation (the paper uses 100-fold).
    let folds = 10;
    let mut rf_points: Vec<Vec<OperatingPoint>> = Vec::new();
    let mut dram_points: Vec<Vec<OperatingPoint>> = Vec::new();
    let mut mem_points: Vec<Vec<OperatingPoint>> = Vec::new();
    for fold in 0..folds {
        let data = training_dataset(&suite, &config, fold);
        let (train, test) = data.train_test_split(0.5, fold * 31 + 7);
        let forest = RandomForest::fit(&train, &config.forest, fold);
        let scores = forest.predict_proba_batch(&test).expect("matching schema");
        rf_points.push(pond_ml::eval::threshold_sweep(&scores, test.labels(), 50));
        dram_points.push(CounterHeuristic::DramBound.operating_points(&test, 50));
        mem_points.push(CounterHeuristic::MemoryBound.operating_points(&test, 50));
    }
    let flatten = |folds: &[Vec<OperatingPoint>]| -> Vec<OperatingPoint> {
        folds.iter().flatten().copied().collect()
    };
    let rf = flatten(&rf_points);
    let dram = flatten(&dram_points);
    let mem = flatten(&mem_points);

    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "workloads insensitive", "RandomForest", "DRAM-bound", "Memory-bound"
    );
    for coverage in [0.10, 0.20, 0.30, 0.40, 0.50] {
        println!(
            "{:<26} {:>12} {:>12} {:>12}",
            pct(coverage),
            pct(interpolate_fp(&rf, coverage)),
            pct(interpolate_fp(&dram, coverage)),
            pct(interpolate_fp(&mem, coverage))
        );
    }
    println!(
        "\nmean FP up to 40% coverage: RF {} | DRAM-bound {} | Memory-bound {}",
        pct(mean_fp_up_to_coverage(&rf, 0.4)),
        pct(mean_fp_up_to_coverage(&dram, 0.4)),
        pct(mean_fp_up_to_coverage(&mem, 0.4))
    );
    println!(
        "paper shape: the RandomForest slightly outperforms DRAM-bound; both beat Memory-bound;"
    );
    println!("             ~30% of workloads can go on the pool at ~2% false positives");
}
