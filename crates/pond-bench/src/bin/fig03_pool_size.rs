//! Figure 3: required overall DRAM vs. pool size when a fixed percentage of
//! every VM's memory (10% / 30% / 50%) is allocated on the pool.

use cluster_sim::pooling::pool_size_sweep;
use cluster_sim::scheduler::FixedPoolFraction;
use cluster_sim::simulation::SimulationConfig;
use pond_bench::{bench_traces, pct, print_header};

fn main() {
    print_header("Figure 3", "required overall DRAM [%] vs. pool size, fixed pool percentages");
    let traces = bench_traces();
    let pool_sizes = [2u16, 8, 16, 32, 64];
    let config = SimulationConfig { qos_mitigation: false, ..Default::default() };

    println!("{:<14} {:>10} {:>10} {:>10}", "pool sockets", "10% pool", "30% pool", "50% pool");
    // Each sweep fans its (pool size × trace) grid out across cores on the
    // cluster-sim sweep runner; the three fractions run back to back.
    let sweeps: Vec<Vec<f64>> = [0.10, 0.30, 0.50]
        .iter()
        .map(|&fraction| {
            pool_size_sweep(&traces, &pool_sizes, &config, || FixedPoolFraction::new(fraction))
                .into_iter()
                .map(|p| p.required_dram_fraction)
                .collect()
        })
        .collect();
    for (i, &sockets) in pool_sizes.iter().enumerate() {
        println!(
            "{:<14} {:>10} {:>10} {:>10}",
            sockets,
            pct(sweeps[0][i]),
            pct(sweeps[1][i]),
            pct(sweeps[2][i]),
        );
    }
    println!("paper shape: savings grow with pool size and saturate around 32 sockets");
    println!("             (e.g. ~12% saved at 32 sockets and ~13% at 64 with 50% pool memory)");
}
