//! Figure 16: slowdown as a function of how much of the workload's footprint
//! is (mistakenly) allocated on pool memory — from a correctly sized zNUMA
//! (0% spilled) to an entirely pool-backed VM (100%).

use cxl_hw::latency::LatencyScenario;
use pond_bench::{pct, print_header};
use workload_model::spill::{SpillModel, FIGURE16_SPILL_FRACTIONS};
use workload_model::WorkloadSuite;

fn main() {
    print_header("Figure 16", "slowdown vs. fraction of the footprint spilled onto the pool");
    let suite = WorkloadSuite::standard();
    let model = SpillModel::default();
    let scenario = LatencyScenario::Increase182;

    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "spill", "p25", "median", "p75", "max");
    for &fraction in &FIGURE16_SPILL_FRACTIONS {
        let mut slowdowns: Vec<f64> =
            suite.workloads().map(|w| model.spill_slowdown(w, scenario, fraction)).collect();
        slowdowns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| slowdowns[((slowdowns.len() - 1) as f64 * p) as usize];
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            pct(fraction),
            pct(q(0.25)),
            pct(q(0.50)),
            pct(q(0.75)),
            pct(*slowdowns.last().unwrap())
        );
    }
    println!("\npaper shape: ~0% slowdown with a correct prediction (0% spilled); slowdowns grow");
    println!("steadily with the spilled fraction, reaching 30-35% for some workloads at 20-75%");
    println!("spilled and up to ~50% when fully pool-backed");
}
