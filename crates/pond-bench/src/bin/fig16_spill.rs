//! Figure 16: slowdown as a function of how much of the workload's footprint
//! is (mistakenly) allocated on pool memory — from a correctly sized zNUMA
//! (0% spilled) to an entirely pool-backed VM (100%).

use cluster_sim::sweep;
use cxl_hw::latency::LatencyScenario;
use pond_bench::{pct, print_header};
use workload_model::spill::{SpillModel, FIGURE16_SPILL_FRACTIONS};
use workload_model::WorkloadSuite;

fn main() {
    print_header("Figure 16", "slowdown vs. fraction of the footprint spilled onto the pool");
    let suite = WorkloadSuite::standard();
    let model = SpillModel::default();
    let scenario = LatencyScenario::Increase182;

    // Each spill fraction sweeps the whole 158-workload suite independently;
    // fan the fractions out across cores and print rows in fraction order.
    let rows = sweep::parallel_map(&FIGURE16_SPILL_FRACTIONS, |_, &fraction| {
        let mut slowdowns: Vec<f64> =
            suite.workloads().map(|w| model.spill_slowdown(w, scenario, fraction)).collect();
        slowdowns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| slowdowns[((slowdowns.len() - 1) as f64 * p) as usize];
        (fraction, q(0.25), q(0.50), q(0.75), *slowdowns.last().unwrap())
    });

    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "spill", "p25", "median", "p75", "max");
    for (fraction, p25, median, p75, max) in rows {
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            pct(fraction),
            pct(p25),
            pct(median),
            pct(p75),
            pct(max)
        );
    }
    println!("\npaper shape: ~0% slowdown with a correct prediction (0% spilled); slowdowns grow");
    println!("steadily with the spilled fraction, reaching 30-35% for some workloads at 20-75%");
    println!("spilled and up to ~50% when fully pool-backed");
}
