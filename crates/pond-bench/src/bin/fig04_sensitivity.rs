//! Figure 4: per-workload slowdown when all memory is remote (pool) memory,
//! under 182% and 222% latency increases, grouped by workload class.

use cxl_hw::latency::LatencyScenario;
use pond_bench::{pct, print_header};
use workload_model::class::WorkloadClass;
use workload_model::{SlowdownModel, WorkloadSuite};

fn main() {
    print_header("Figure 4", "slowdown of 158 workloads under 182% / 222% memory latency");
    let suite = WorkloadSuite::standard();
    let model = SlowdownModel::default();

    println!(
        "{:<14} {:>6} {:>22} {:>22}",
        "class", "count", "182% (min/median/max)", "222% (min/median/max)"
    );
    for class in WorkloadClass::ALL {
        let mut stats = Vec::new();
        for scenario in LatencyScenario::all() {
            let mut slowdowns: Vec<f64> = suite
                .by_class(class)
                .iter()
                .map(|w| model.full_pool_slowdown(w, scenario))
                .collect();
            slowdowns.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = slowdowns[slowdowns.len() / 2];
            stats.push(format!(
                "{}/{}/{}",
                pct(slowdowns[0]),
                pct(median),
                pct(*slowdowns.last().unwrap())
            ));
        }
        println!(
            "{:<14} {:>6} {:>22} {:>22}",
            class.label(),
            class.workload_count(),
            stats[0],
            stats[1]
        );
    }

    for scenario in LatencyScenario::all() {
        let slowdowns: Vec<f64> =
            suite.workloads().map(|w| model.full_pool_slowdown(w, scenario)).collect();
        let buckets = SlowdownModel::bucketize(&slowdowns);
        println!(
            "\n{scenario}: <1%: {}  1-5%: {}  5-25%: {}  >25%: {}",
            pct(buckets.under_1pct),
            pct(buckets.between_1_and_5pct),
            pct(buckets.between_5_and_25pct),
            pct(buckets.over_25pct)
        );
    }
    println!("\npaper shape at 182%: 26% under 1%, +17% under 5%, 21% above 25%");
    println!("paper shape at 222%: 23% under 1%, +14% under 5%, 37% above 25%");
}
