//! Figure 19: the untouched-memory model in "production" — retrained daily
//! and evaluated on the following day's VM arrivals.

use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use pond_bench::{pct, print_header, trace_days};
use pond_core::untouched::{
    evaluate_model, replay_history, UntouchedMemoryModel, UntouchedModelConfig,
};

fn main() {
    print_header("Figure 19", "untouched-memory model performance with daily retraining");
    let days = trace_days().max(10);
    let config = ClusterConfig { servers: 24, duration_days: days, ..ClusterConfig::azure_like() };
    let trace = TraceGenerator::new(config, 1).generate(0);
    // A 4%-overprediction target corresponds to a conservative quantile.
    let model_config = UntouchedModelConfig { quantile: 0.08, rounds: 50 };

    println!(
        "{:<8} {:>12} {:>22} {:>18}",
        "day", "VMs scored", "avg untouched [%GB-h]", "overpredictions"
    );
    for day in 3..days as u64 {
        let cutoff = day * 86_400;
        let train: Vec<_> = trace.requests.iter().filter(|r| r.arrival < cutoff).cloned().collect();
        let eval: Vec<_> = trace
            .requests
            .iter()
            .filter(|r| r.arrival >= cutoff && r.arrival < cutoff + 86_400)
            .cloned()
            .collect();
        if train.is_empty() || eval.is_empty() {
            continue;
        }
        let model = UntouchedMemoryModel::train(&train, &model_config, day);
        let point = evaluate_model(&model, &eval, replay_history(&train));
        println!(
            "{:<8} {:>12} {:>22} {:>18}",
            day,
            eval.len(),
            pct(point.avg_untouched_fraction),
            pct(point.overprediction_rate)
        );
    }
    println!("\npaper shape: ~20-40% average untouched memory at a ~4% overprediction target,");
    println!("             with some day-to-day variability from distribution shift");
}
