//! Fleet-replay throughput: events/sec of the rebuilt event core (indexed
//! departure arena, incremental peak/conservation accounting, arena
//! bookkeeping) against the retained pre-refactor reference replay
//! (five-heap peek-scan queue, full host scan per event, hash-map
//! bookkeeping) on a large single-pool fleet.
//!
//! stdout carries only the deterministic outcome table — a pool-fraction
//! sweep on the parallel runner plus the bit-for-bit indexed-vs-reference
//! cross-check — so CI can diff a `POND_SWEEP_THREADS=1` run against the
//! default thread count. Timings and the measured speedup go to stderr, and
//! a machine-readable summary is written to `BENCH_fleet.json`.
//!
//! Set `POND_SMOKE=1` to shrink the fleet to a CI-sized smoke check (which
//! also skips the speedup floor: a smoke fleet is too small for the
//! per-event host scan to dominate the reference replay).

use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cluster_sim::ClusterTrace;
use pond_bench::{pct, print_header};
use pond_core::fleet::{
    fleet_pool_sweep, run_fleet_reference_with_policy, run_fleet_with_policy, FleetConfig,
    FleetOutcome,
};
use pond_core::policy::PondPolicy;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("POND_SMOKE").is_ok_and(|v| v == "1")
}

/// Servers in the benched fleet (`POND_FLEET_SERVERS` overrides).
fn servers() -> u32 {
    let default = if smoke() { 192 } else { 8192 };
    std::env::var("POND_FLEET_SERVERS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn bench_trace() -> ClusterTrace {
    let config =
        ClusterConfig { servers: servers(), duration_days: 1, ..ClusterConfig::azure_like() };
    TraceGenerator::new(config, 1).generate(0)
}

/// Events the replay processed: arrivals (placed and rejected), departures
/// (one per placed VM), release and reconfiguration completions, and QoS
/// snapshot ticks.
fn replay_events(outcome: &FleetOutcome) -> u64 {
    outcome.scheduled_vms
        + outcome.rejected_vms
        + outcome.scheduled_vms
        + outcome.releases_completed
        + outcome.reconfig_completions
        + outcome.qos_passes
}

/// Best-of-`runs` timing; `f` clones the policy outside its own timed
/// region, so each sample covers exactly one replay.
fn best_of<F: FnMut() -> (Duration, FleetOutcome)>(
    runs: usize,
    mut f: F,
) -> (Duration, FleetOutcome) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..runs {
        let (elapsed, outcome) = f();
        best = best.min(elapsed);
        out = Some(outcome);
    }
    (best, out.expect("at least one run"))
}

fn main() {
    print_header(
        "Fleet throughput",
        "events/sec of the rebuilt event core vs the reference replay",
    );
    let trace = bench_trace();
    let config = FleetConfig::for_trace(&trace, 0.20, 7);
    println!("fleet: {} servers, {} requests, 1 day", trace.servers, trace.requests.len());

    // Deterministic outcome table over the parallel sweep runner; CI diffs
    // this whole stdout between POND_SWEEP_THREADS=1 and the default.
    let fractions = [0.10, 0.20, 0.30];
    let points =
        fleet_pool_sweep(&trace, &fractions, config.seed).expect("fleet replay must not fail");
    println!(
        "{:>7} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "pool %", "scheduled", "rejected", "DRAM saved", "mit rate", "events"
    );
    for point in &points {
        println!(
            "{:>7} {:>10} {:>10} {:>12} {:>10} {:>10}",
            pct(point.pool_fraction),
            point.outcome.scheduled_vms,
            point.outcome.rejected_vms,
            pct(point.outcome.dram_savings_fraction()),
            pct(point.outcome.mitigation_rate()),
            replay_events(&point.outcome),
        );
    }

    // The timed comparison: one trained policy, both replay loops, and a
    // bit-for-bit outcome cross-check.
    let train_start = Instant::now();
    let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);
    let trained = train_start.elapsed();
    let runs = if smoke() { 1 } else { 3 };
    let (indexed, outcome) = best_of(runs, || {
        let policy = policy.clone();
        let start = Instant::now();
        let outcome = run_fleet_with_policy(&trace, &config, policy).unwrap();
        (start.elapsed(), outcome)
    });
    let (reference, reference_outcome) = best_of(runs, || {
        let policy = policy.clone();
        let start = Instant::now();
        let outcome = run_fleet_reference_with_policy(&trace, &config, policy).unwrap();
        (start.elapsed(), outcome)
    });
    assert_eq!(
        outcome, reference_outcome,
        "the indexed and reference replays must produce identical outcomes"
    );
    println!(
        "indexed replay == reference replay: bit-for-bit over {} events",
        replay_events(&outcome)
    );

    let events = replay_events(&outcome);
    let indexed_eps = events as f64 / indexed.as_secs_f64();
    let reference_eps = events as f64 / reference.as_secs_f64();
    let speedup = reference.as_secs_f64() / indexed.as_secs_f64();
    eprintln!("policy training: {trained:.2?} (excluded from both timings)");
    eprintln!(
        "reference {reference:.2?} ({reference_eps:.0} events/sec) vs indexed {indexed:.2?} \
         ({indexed_eps:.0} events/sec) -> {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"servers\": {},\n  \"requests\": {},\n  \"events\": {events},\n  \
         \"indexed_secs\": {},\n  \"reference_secs\": {},\n  \
         \"indexed_events_per_sec\": {:.0},\n  \"reference_events_per_sec\": {:.0},\n  \
         \"speedup\": {:.2}\n}}\n",
        trace.servers,
        trace.requests.len(),
        indexed.as_secs_f64(),
        reference.as_secs_f64(),
        indexed_eps,
        reference_eps,
        speedup,
    );
    std::fs::write("BENCH_fleet.json", json).expect("write BENCH_fleet.json");
    eprintln!("wrote BENCH_fleet.json");
}
