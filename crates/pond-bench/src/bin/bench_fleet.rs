//! Fleet-replay throughput: events/sec of the rebuilt event core (indexed
//! departure calendar, incremental peak/conservation accounting, live-VM
//! arena bookkeeping) against the retained pre-refactor reference replay
//! (five-heap peek-scan queue, full host scan per event, hash-map
//! bookkeeping) on a large single-pool fleet.
//!
//! stdout carries only the deterministic outcome table — a pool-fraction
//! sweep on the parallel runner plus the bit-for-bit indexed-vs-reference
//! cross-check — so CI can diff a `POND_SWEEP_THREADS=1` run against the
//! default thread count. Each sweep point is also printed as a bare
//! `outcome ...` line, which CI greps to diff the streamed mode against the
//! materialized mode. Timings, the measured speedup, and the streamed
//! mode's peak-RSS line go to stderr, and a machine-readable summary is
//! merged into `BENCH_fleet.json` (each mode owns its own section and
//! preserves the other's).
//!
//! Modes:
//!
//! * default — materialize the trace, run the sweep, and time the indexed
//!   replay against the reference replay.
//! * `POND_STREAM=1` — never materialize: replay the lazily generated
//!   stream through [`run_fleet_source`] with a bounded training prefix,
//!   and print peak RSS against the request-vector footprint the
//!   materialized path would have paid. The full-size stream run covers 40
//!   days of a 65,535-server fleet (the control plane's host-id clamp caps
//!   hosts at `u16::MAX`, so the multi-million-VM stream spreads over days
//!   rather than a literal single day) — close to 9M VMs through one
//!   replay.
//! * `POND_SMOKE=1` — shrink either mode to a CI-sized fleet; the two
//!   modes' `outcome` lines are then bit-identical, which CI asserts.

use cluster_sim::source::{summarize, ArrivalSource, TraceCursor};
use cluster_sim::trace::VmRequest;
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cluster_sim::ClusterTrace;
use pond_bench::profile::{EventClassProfiler, PhaseProfiler};
use pond_bench::{pct, print_header};
use pond_core::fleet::{
    fleet_pool_sweep, run_fleet_reference_with_policy, run_fleet_source, run_fleet_source_observed,
    run_fleet_with_policy, FleetConfig, FleetOutcome,
};
use pond_core::policy::PondPolicy;
use std::time::{Duration, Instant};

/// Schema version of the `BENCH_fleet.json` sections and run records. Bump
/// when fields change shape; CI greps for it.
const BENCH_SCHEMA: u32 = 2;

/// Run records kept in the `"runs"` trajectory (oldest dropped first).
const MAX_RUN_RECORDS: usize = 20;

fn smoke() -> bool {
    std::env::var("POND_SMOKE").is_ok_and(|v| v == "1")
}

fn stream_mode() -> bool {
    std::env::var("POND_STREAM").is_ok_and(|v| v == "1")
}

/// Servers in the benched fleet (`POND_FLEET_SERVERS` overrides). The
/// streamed mode defaults to the host-id clamp's maximum so one replay
/// carries the largest expressible fleet.
fn servers() -> u32 {
    let default = match (smoke(), stream_mode()) {
        (true, _) => 192,
        (false, false) => 8192,
        (false, true) => u32::from(u16::MAX),
    };
    std::env::var("POND_FLEET_SERVERS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Days the streamed mode generates (`POND_STREAM_DAYS` overrides).
fn stream_days() -> u32 {
    let default = if smoke() { 1 } else { 40 };
    std::env::var("POND_STREAM_DAYS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn cluster_config(days: u32) -> ClusterConfig {
    ClusterConfig { servers: servers(), duration_days: days, ..ClusterConfig::azure_like() }
}

fn bench_trace() -> ClusterTrace {
    TraceGenerator::new(cluster_config(1), 1).generate(0)
}

/// The deterministic per-point line both modes print and CI diffs.
fn outcome_line(fraction: f64, o: &FleetOutcome) -> String {
    format!(
        "outcome pool={} scheduled={} rejected={} fallbacks={} savings={} mitrate={} \
         borrowed={} events={}",
        pct(fraction),
        o.scheduled_vms,
        o.rejected_vms,
        o.fallback_all_local,
        pct(o.dram_savings_fraction()),
        pct(o.mitigation_rate()),
        o.vms_borrowed,
        replay_events(o),
    )
}

/// Events the replay processed: arrivals (placed and rejected), departures
/// (one per placed VM), release and reconfiguration completions, and QoS
/// snapshot ticks.
fn replay_events(outcome: &FleetOutcome) -> u64 {
    outcome.scheduled_vms
        + outcome.rejected_vms
        + outcome.scheduled_vms
        + outcome.releases_completed
        + outcome.reconfig_completions
        + outcome.qos_passes
}

/// Best-of-`runs` timing; `f` clones the policy outside its own timed
/// region, so each sample covers exactly one replay.
fn best_of<F: FnMut() -> (Duration, FleetOutcome)>(
    runs: usize,
    mut f: F,
) -> (Duration, FleetOutcome) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..runs {
        let (elapsed, outcome) = f();
        best = best.min(elapsed);
        out = Some(outcome);
    }
    (best, out.expect("at least one run"))
}

/// Peak resident set size of this process, from `/proc/self/status`
/// (`None` where procfs is unavailable).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Extracts one mode's section block from a previously written
/// `BENCH_fleet.json`, so re-running the other mode preserves it. The file
/// is always this binary's own hand-formatted output, so a line scan for
/// the two-space-indented key through its closing brace is exact.
fn extract_section(json: &str, key: &str) -> Option<String> {
    let lines: Vec<&str> = json.lines().collect();
    let open = format!("  \"{key}\": {{");
    let start = lines.iter().position(|l| *l == open)?;
    let end = start + lines[start..].iter().position(|l| l.trim_end_matches(',') == "  }")?;
    let mut block = lines[start..end].join("\n");
    block.push_str("\n  }");
    Some(block)
}

/// Extracts the one-line run records of the `"runs"` trajectory from a
/// previously written `BENCH_fleet.json` (empty for schema-1 files, which
/// had no trajectory).
fn extract_runs(json: &str) -> Vec<String> {
    let lines: Vec<&str> = json.lines().collect();
    let Some(start) = lines.iter().position(|l| *l == "  \"runs\": [") else {
        return Vec::new();
    };
    lines[start + 1..]
        .iter()
        .take_while(|l| !l.starts_with("  ]"))
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .collect()
}

/// One schema-versioned run record for the `"runs"` trajectory: enough to
/// diff throughput, memory, and event mix across PRs. Emitted on one line
/// so the line-oriented merge stays exact.
fn run_record(mode: &str, servers: u64, requests: u64, eps: f64, outcome: &FleetOutcome) -> String {
    let rss = peak_rss_bytes().map_or_else(|| "null".to_string(), |rss| rss.to_string());
    format!(
        "{{\"schema\": {BENCH_SCHEMA}, \"mode\": \"{mode}\", \"servers\": {servers}, \
         \"requests\": {requests}, \"events\": {}, \"events_per_sec\": {eps:.0}, \
         \"peak_rss_bytes\": {rss}, \"arrivals\": {}, \"departures\": {}, \"releases\": {}, \
         \"reconfig_done\": {}, \"qos_passes\": {}}}",
        replay_events(outcome),
        outcome.scheduled_vms + outcome.rejected_vms,
        outcome.scheduled_vms,
        outcome.releases_completed,
        outcome.reconfig_completions,
        outcome.qos_passes,
    )
}

/// Writes `BENCH_fleet.json` with this run's section, keeping the other
/// mode's section from a previous run when present, and appending this
/// run's record to the `"runs"` trajectory so perf regressions stay
/// diffable across PRs.
fn write_bench_json(section: &str, body: String, record: String) {
    let other_key = if section == "stream" { "materialized" } else { "stream" };
    let existing = std::fs::read_to_string("BENCH_fleet.json").ok();
    let other = existing.as_deref().and_then(|json| extract_section(json, other_key));
    let mut runs = existing.as_deref().map(extract_runs).unwrap_or_default();
    runs.push(record);
    if runs.len() > MAX_RUN_RECORDS {
        runs.drain(..runs.len() - MAX_RUN_RECORDS);
    }
    let own = format!("  \"{section}\": {{\n{body}\n  }}");
    // Deterministic section order: materialized first.
    let sections = match (&other, section) {
        (Some(other), "stream") => format!("{other},\n{own}"),
        (Some(other), _) => format!("{own},\n{other}"),
        (None, _) => own,
    };
    let runs_block: Vec<String> = runs.iter().map(|r| format!("    {r}")).collect();
    let json = format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA},\n{sections},\n  \"runs\": [\n{}\n  ]\n}}\n",
        runs_block.join(",\n"),
    );
    std::fs::write("BENCH_fleet.json", json).expect("write BENCH_fleet.json");
    eprintln!("wrote BENCH_fleet.json");
}

/// The `POND_STREAM=1` mode: the whole replay — training prefix included —
/// runs off the lazy generator source, so resident memory is bounded by
/// live VMs instead of trace length.
fn run_stream() {
    print_header(
        "Fleet throughput (streamed)",
        "bounded-memory replay through the streaming arrival source",
    );
    let days = stream_days();
    let generator = TraceGenerator::new(cluster_config(days), 1);
    let header = generator.stream(0).header().clone();

    // One streaming pass for the summary line the materialized path used to
    // read off the request vector.
    let summary = summarize(generator.stream(0)).expect("generator streams are well-formed");
    let requests = summary.requests;
    println!(
        "fleet: {} servers, {requests} requests, {days} days, {} mean core utilization (streamed)",
        header.servers,
        pct(summary.mean_core_utilization()),
    );

    let base = FleetConfig::for_header(&header, 0.20, 7);
    // Bounded-memory training: cap the materialized training prefix at
    // 64 Ki requests. The smoke fleet stays under the cap, so its derived
    // fraction equals the default and the CI outcome diff sees identical
    // replays.
    let training_fraction = (65_536.0 / requests as f64).min(base.control.policy.training_fraction);
    let mut policy_config = base.control.policy.clone();
    policy_config.training_fraction = training_fraction;

    let train_start = Instant::now();
    let policy = PondPolicy::train_source(|| generator.stream(0), &policy_config, base.seed)
        .expect("generator streams are well-formed");
    let trained = train_start.elapsed();
    eprintln!(
        "policy training: {trained:.2?} on a streamed prefix (fraction {training_fraction:.4})"
    );

    // Full-size streams replay one pool point; the smoke fleet replays the
    // same three points the materialized mode prints.
    let fractions: &[f64] = if smoke() { &[0.10, 0.20, 0.30] } else { &[0.20] };
    let mut total_events = 0u64;
    let mut total_elapsed = Duration::ZERO;
    let mut last_outcome = FleetOutcome::default();
    for &fraction in fractions {
        let mut config = FleetConfig::for_header(&header, fraction, 7);
        config.control.policy.training_fraction = training_fraction;
        let policy = policy.clone();
        let start = Instant::now();
        let outcome = run_fleet_source(generator.stream(0), &config, policy)
            .expect("fleet replay must not fail");
        let elapsed = start.elapsed();
        total_events += replay_events(&outcome);
        total_elapsed += elapsed;
        println!("{}", outcome_line(fraction, &outcome));
        last_outcome = outcome;
    }
    let eps = total_events as f64 / total_elapsed.as_secs_f64();
    eprintln!("streamed {total_events} events in {total_elapsed:.2?} ({eps:.0} events/sec)");

    // The headline claim, measured: resident memory stays bounded by live
    // VMs. The floor is what the materialized path pays for the request
    // vector alone (before any of its trace-length bookkeeping).
    const MIB: f64 = (1 << 20) as f64;
    let floor = requests * std::mem::size_of::<VmRequest>() as u64;
    let rss = peak_rss_bytes();
    match rss {
        Some(rss) => {
            eprintln!(
                "peak RSS {:.1} MiB vs materialized request-vector floor {:.1} MiB ({:.2}x)",
                rss as f64 / MIB,
                floor as f64 / MIB,
                rss as f64 / floor as f64,
            );
            assert!(
                requests < 5_000_000 || rss < floor,
                "a multi-million-VM stream must replay under the materialized footprint: \
                 peak RSS {rss} >= {floor} bytes"
            );
        }
        None => eprintln!("peak RSS unavailable (no /proc/self/status)"),
    }

    // Per-class event mix of the final pool point, derived from its outcome
    // (the streamed mode is never observed — its point is the
    // bounded-memory floor, and an observer's wall-clock overhead would
    // muddy the events/sec line). Emitted on one line so the hand-formatted
    // section scan stays exact.
    let per_class = format!(
        "{{\"arrival\": {}, \"departure\": {}, \"release\": {}, \"reconfig_done\": {}, \
         \"snapshot\": {}}}",
        last_outcome.scheduled_vms + last_outcome.rejected_vms,
        last_outcome.scheduled_vms,
        last_outcome.releases_completed,
        last_outcome.reconfig_completions,
        last_outcome.qos_passes,
    );
    write_bench_json(
        "stream",
        format!(
            "    \"schema\": {BENCH_SCHEMA},\n    \
             \"servers\": {},\n    \"days\": {days},\n    \"requests\": {requests},\n    \
             \"events\": {total_events},\n    \"secs\": {},\n    \
             \"events_per_sec\": {eps:.0},\n    \"peak_rss_bytes\": {},\n    \
             \"materialized_floor_bytes\": {floor},\n    \"per_class\": {per_class}",
            header.servers,
            total_elapsed.as_secs_f64(),
            rss.map_or_else(|| "null".to_string(), |rss| rss.to_string()),
        ),
        run_record("stream", u64::from(header.servers), requests, eps, &last_outcome),
    );
}

fn main() {
    if stream_mode() {
        run_stream();
        return;
    }
    print_header(
        "Fleet throughput",
        "events/sec of the rebuilt event core vs the reference replay",
    );
    let trace = bench_trace();
    let config = FleetConfig::for_trace(&trace, 0.20, 7);
    println!("fleet: {} servers, {} requests, 1 day", trace.servers, trace.requests.len());

    // Deterministic outcome table over the parallel sweep runner; CI diffs
    // this whole stdout between POND_SWEEP_THREADS=1 and the default, and
    // the bare `outcome` lines against the streamed mode's.
    let mut phases = PhaseProfiler::new();
    let fractions = [0.10, 0.20, 0.30];
    let points = phases.time("sweep", || {
        fleet_pool_sweep(&trace, &fractions, config.seed).expect("fleet replay must not fail")
    });
    println!(
        "{:>7} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "pool %", "scheduled", "rejected", "DRAM saved", "mit rate", "events"
    );
    for point in &points {
        println!(
            "{:>7} {:>10} {:>10} {:>12} {:>10} {:>10}",
            pct(point.pool_fraction),
            point.outcome.scheduled_vms,
            point.outcome.rejected_vms,
            pct(point.outcome.dram_savings_fraction()),
            pct(point.outcome.mitigation_rate()),
            replay_events(&point.outcome),
        );
    }
    for point in &points {
        println!("{}", outcome_line(point.pool_fraction, &point.outcome));
    }

    // The timed comparison: one trained policy, both replay loops, and a
    // bit-for-bit outcome cross-check.
    let train_start = Instant::now();
    let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);
    let trained = train_start.elapsed();
    phases.record("training", trained);
    let runs = if smoke() { 1 } else { 3 };
    let (indexed, outcome) = best_of(runs, || {
        let policy = policy.clone();
        let start = Instant::now();
        let outcome = run_fleet_with_policy(&trace, &config, policy).unwrap();
        (start.elapsed(), outcome)
    });
    phases.record("replay_indexed", indexed);
    let (reference, reference_outcome) = best_of(runs, || {
        let policy = policy.clone();
        let start = Instant::now();
        let outcome = run_fleet_reference_with_policy(&trace, &config, policy).unwrap();
        (start.elapsed(), outcome)
    });
    phases.record("replay_reference", reference);
    assert_eq!(
        outcome, reference_outcome,
        "the indexed and reference replays must produce identical outcomes"
    );
    println!(
        "indexed replay == reference replay: bit-for-bit over {} events",
        replay_events(&outcome)
    );

    // One observed replay: wall-clock attribution per event class, plus the
    // bench-scale half of the observer-neutrality pin (the property test
    // covers the multipool drills; this covers the big single-pool fleet).
    let mut class_profiler = EventClassProfiler::new();
    let observed_start = Instant::now();
    let observed_outcome = run_fleet_source_observed(
        TraceCursor::new(&trace),
        &config,
        policy.clone(),
        &mut class_profiler,
    )
    .expect("fleet replay must not fail");
    class_profiler.finish();
    phases.record("replay_observed", observed_start.elapsed());
    assert_eq!(
        observed_outcome, outcome,
        "an observed replay must be bit-identical to the unobserved replay"
    );
    assert_eq!(
        class_profiler.count("arrival"),
        outcome.scheduled_vms + outcome.rejected_vms,
        "the observer must see one arrival event per request"
    );
    println!("observed replay == unobserved replay: bit-for-bit");

    let events = replay_events(&outcome);
    let indexed_eps = events as f64 / indexed.as_secs_f64();
    let reference_eps = events as f64 / reference.as_secs_f64();
    let speedup = reference.as_secs_f64() / indexed.as_secs_f64();
    eprintln!("policy training: {trained:.2?} (excluded from both timings)");
    eprintln!(
        "reference {reference:.2?} ({reference_eps:.0} events/sec) vs indexed {indexed:.2?} \
         ({indexed_eps:.0} events/sec) -> {speedup:.2}x"
    );

    write_bench_json(
        "materialized",
        format!(
            "    \"schema\": {BENCH_SCHEMA},\n    \
             \"servers\": {},\n    \"requests\": {},\n    \"events\": {events},\n    \
             \"indexed_secs\": {},\n    \"reference_secs\": {},\n    \
             \"indexed_events_per_sec\": {indexed_eps:.0},\n    \
             \"reference_events_per_sec\": {reference_eps:.0},\n    \"speedup\": {speedup:.2},\n    \
             \"phase_secs\": {},\n    \"per_class\": {}",
            trace.servers,
            trace.requests.len(),
            indexed.as_secs_f64(),
            reference.as_secs_f64(),
            phases.json_object(),
            class_profiler.json_object(),
        ),
        run_record(
            "materialized",
            u64::from(trace.servers),
            trace.requests.len() as u64,
            indexed_eps,
            &outcome,
        ),
    );
}
