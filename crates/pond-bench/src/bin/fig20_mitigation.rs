//! Figure 20 (fleet replay): QoS mitigation behaviour of the full Pond
//! pipeline across CXL latency scenarios — how often ground-truth slowdowns
//! exceed the PDM, how many VMs the QoS monitor reconfigures back to
//! all-local memory, and the pool→local copy time those mitigations charge
//! to the event timeline (50 ms per GiB).

use cxl_hw::latency::LatencyScenario;
use pond_bench::{bench_trace, pct, print_header};
use pond_core::fleet::{fleet_pool_sweep_with, FleetConfig};

fn main() {
    print_header(
        "Figure 20 (fleet replay)",
        "violation and mitigation rates vs. pool percentage, per latency scenario",
    );
    let trace = bench_trace();
    let fractions = [0.10, 0.20, 0.30];

    println!(
        "{:>13} {:>7} {:>11} {:>10} {:>11} {:>12} {:>11}",
        "scenario", "pool %", "violations", "mitigated", "mit. rate", "copy time", "DRAM saved"
    );
    for scenario in LatencyScenario::all() {
        let points = fleet_pool_sweep_with(&trace, &fractions, |fraction| {
            let mut config = FleetConfig::for_trace(&trace, fraction, 20);
            config.control.policy.scenario = scenario;
            config
        })
        .expect("fleet replay must not fail");
        for point in &points {
            let o = &point.outcome;
            println!(
                "{:>13} {:>7} {:>11} {:>10} {:>11} {:>11.1}s {:>11}",
                scenario.to_string(),
                pct(point.pool_fraction),
                pct(o.violation_fraction()),
                o.mitigations,
                pct(o.mitigation_rate()),
                o.mitigation_copy_time.as_secs_f64(),
                pct(o.dram_savings_fraction()),
            );
        }
    }
    println!(
        "\npaper: Pond keeps scheduling mispredictions near the 2% target and the QoS \
         monitor reconfigures the mispredicted tail within its budget"
    );
}
