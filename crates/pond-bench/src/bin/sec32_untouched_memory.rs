//! §3.2: the distribution of untouched memory across VMs and clusters
//! (median ~50%; even the least-untouched cluster has >50% of VMs with more
//! than 20% untouched memory).

use cluster_sim::tracegen::TraceGenerator;
use pond_bench::{bench_cluster_config, cluster_count, pct, print_header};

fn main() {
    print_header("§3.2", "untouched memory across VMs and clusters");
    let generator = TraceGenerator::new(bench_cluster_config(), cluster_count());

    let mut all: Vec<f64> = Vec::new();
    let mut per_cluster_over20: Vec<f64> = Vec::new();
    for cluster in 0..cluster_count() {
        let trace = generator.generate(cluster);
        let fractions: Vec<f64> = trace.requests.iter().map(|r| r.untouched_fraction).collect();
        let over20 = fractions.iter().filter(|&&f| f > 0.2).count() as f64 / fractions.len() as f64;
        per_cluster_over20.push(over20);
        all.extend(fractions);
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| all[((all.len() - 1) as f64 * p) as usize];

    println!("VMs analysed: {}", all.len());
    println!(
        "untouched memory percentiles: p10 {}  p25 {}  p50 {}  p75 {}  p90 {}",
        pct(q(0.10)),
        pct(q(0.25)),
        pct(q(0.50)),
        pct(q(0.75)),
        pct(q(0.90))
    );
    let min_cluster = per_cluster_over20.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "share of VMs with >20% untouched memory: fleet {}  |  least-untouched cluster {}",
        pct(all.iter().filter(|&&f| f > 0.2).count() as f64 / all.len() as f64),
        pct(min_cluster)
    );
    println!("\npaper values: 50th percentile is ~50% untouched; in the least-untouched cluster");
    println!("              still over 50% of VMs have more than 20% untouched memory");
}
