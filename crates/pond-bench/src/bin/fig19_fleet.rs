//! Figure 19 (fleet replay): DRAM savings vs. pool size with the *full* Pond
//! pipeline — live untouched-memory and sensitivity predictions per arrival,
//! asynchronous Pool Manager slice offlining as first-class events, and QoS
//! mitigation — replayed over a cloud VM trace on the time-ordered event
//! core. Contrast with `fig21_e2e_savings`, which drives the cluster
//! simulator's static placement hook instead of the control plane.
//!
//! The trace is never materialized: every sweep point (training prefix
//! included) replays the lazily generated arrival stream, and the summary
//! line comes from a streaming pass instead of the request vector.

use cluster_sim::source::summarize;
use pond_bench::{bench_generator, pct, print_header};
use pond_core::fleet::fleet_pool_sweep_source;

fn main() {
    print_header(
        "Figure 19 (fleet replay)",
        "DRAM savings vs. pool percentage, full Pond control plane",
    );
    let generator = bench_generator();
    let summary = summarize(generator.stream(0)).expect("generator streams are well-formed");
    println!(
        "trace: {} requests, {} mean core utilization (streamed)",
        summary.requests,
        pct(summary.mean_core_utilization()),
    );
    let fractions = [0.05, 0.10, 0.15, 0.20, 0.30, 0.50];
    let points = fleet_pool_sweep_source(|| generator.stream(0), &fractions, 19)
        .expect("fleet replay must not fail");

    println!(
        "{:>7} {:>12} {:>11} {:>10} {:>11} {:>10} {:>9}",
        "pool %", "DRAM saved", "pool share", "fallbacks", "violations", "mitigated", "releases"
    );
    for point in &points {
        let o = &point.outcome;
        println!(
            "{:>7} {:>12} {:>11} {:>10} {:>11} {:>10} {:>9}",
            pct(point.pool_fraction),
            pct(o.dram_savings_fraction()),
            pct(o.pool_dram_fraction()),
            o.fallback_all_local,
            pct(o.violation_fraction()),
            o.mitigations,
            o.releases_completed,
        );
    }
    let best = points.last().expect("non-empty sweep");
    println!("\nat {} pool:\n{}", pct(best.pool_fraction), best.outcome);
    println!("paper: the full pipeline sustains ~7-9% DRAM savings at 16-socket pools");
}
