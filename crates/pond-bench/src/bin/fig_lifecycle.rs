//! Pool lifecycle: pools die, heal, drain, and join inside one replay
//! (§4.2 of the paper — the operational reality behind the steady-state
//! figures — made measurable).
//!
//! Each phase replays the same trace on the same Octopus fleet as the
//! failure drill (4 groups, 30% pool, halved per-host local DRAM) and adds
//! one lifecycle ingredient at a time:
//!
//! * `drill`     — the PR-5 baseline: EMC failures, no healing.
//! * `repair`    — the same failure schedule, every device replaced 6 h
//!   later ([`DrillKind::EmcWithRepair`]); isolates the value of healing.
//! * `decommission` — one pod drains gracefully mid-trace: every VM
//!   migrates out, none die.
//! * `expansion` — a fresh EMC attaches to a pool live.
//! * `full`      — failures + repairs + decommission + expansion +
//!   proactive QoS-cadence rebalancing, all at once.
//!
//! Deterministic for a fixed `(trace, seed)` — including between
//! `POND_SWEEP_THREADS=1` and the default thread count, which CI checks by
//! diffing the two outputs. Set `POND_SMOKE=1` to shrink the grid to a
//! CI-sized smoke check.

use cxl_hw::topology::PodStyle;
use cxl_hw::units::Bytes;
use pond_bench::{bench_trace, pct, print_header};
use pond_core::multipool::{
    lifecycle_config, lifecycle_sweep_with, DrillKind, FailureDrillSpec, GroupSchedulerKind,
    LifecycleEvent, LifecycleOp, LifecyclePlan, LifecycleSweepSpec, MultiPoolSweepSpec,
    RebalanceSpec,
};

const SEED: u64 = 7;
const DRILL_SEED: u64 = 99;
const MTTR_SECS: u64 = 6 * 3_600;

fn smoke() -> bool {
    std::env::var("POND_SMOKE").is_ok_and(|v| v == "1")
}

fn cell() -> MultiPoolSweepSpec {
    MultiPoolSweepSpec {
        pod: PodStyle::Octopus,
        groups: 4,
        pool_fraction: 0.30,
        scheduler: GroupSchedulerKind::RoundRobin,
        borrowing: false,
    }
}

fn drill(kind: DrillKind) -> FailureDrillSpec {
    FailureDrillSpec { rate_per_day: 4.0, kind, seed: DRILL_SEED }
}

/// The lifecycle schedule: pod 3 drains out at mid-trace and a fresh 32 GiB
/// device joins pod 0 a third of the way in.
fn plan(duration: u64) -> LifecyclePlan {
    LifecyclePlan {
        events: vec![
            LifecycleEvent {
                time: duration / 3,
                op: LifecycleOp::ExpandGroup { group: 0, capacity: Bytes::from_gib(32) },
            },
            LifecycleEvent { time: duration / 2, op: LifecycleOp::DecommissionGroup { group: 3 } },
        ],
    }
}

fn phases(duration: u64) -> Vec<(&'static str, LifecycleSweepSpec)> {
    let none = LifecycleSweepSpec { cell: cell(), drill: None, lifecycle: None, rebalance: None };
    let mut phases = vec![
        ("baseline", none.clone()),
        ("drill", LifecycleSweepSpec { drill: Some(drill(DrillKind::Emc)), ..none.clone() }),
        (
            "repair",
            LifecycleSweepSpec {
                drill: Some(drill(DrillKind::EmcWithRepair { mttr_secs: MTTR_SECS })),
                ..none.clone()
            },
        ),
        (
            "decommission",
            LifecycleSweepSpec {
                lifecycle: Some(LifecyclePlan {
                    events: vec![LifecycleEvent {
                        time: duration / 2,
                        op: LifecycleOp::DecommissionGroup { group: 3 },
                    }],
                }),
                ..none.clone()
            },
        ),
        (
            "expansion",
            LifecycleSweepSpec {
                lifecycle: Some(LifecyclePlan {
                    events: vec![LifecycleEvent {
                        time: duration / 3,
                        op: LifecycleOp::ExpandGroup { group: 0, capacity: Bytes::from_gib(32) },
                    }],
                }),
                ..none.clone()
            },
        ),
        (
            "full",
            LifecycleSweepSpec {
                drill: Some(drill(DrillKind::EmcWithRepair { mttr_secs: MTTR_SECS })),
                lifecycle: Some(plan(duration)),
                rebalance: Some(RebalanceSpec { starved_fraction: 0.10, max_moves_per_pass: 2 }),
                ..none
            },
        ),
    ];
    if smoke() {
        phases.retain(|(name, _)| matches!(*name, "baseline" | "decommission" | "full"));
    }
    phases
}

fn main() {
    print_header(
        "Pool lifecycle",
        "pools die, heal, drain, and join: repair, decommission, expansion, rebalance",
    );
    let trace = bench_trace();
    let phases = phases(trace.duration);
    let specs: Vec<LifecycleSweepSpec> = phases.iter().map(|(_, spec)| spec.clone()).collect();
    let points = lifecycle_sweep_with(&trace, &specs, |spec| {
        let mut config = lifecycle_config(&trace, spec, SEED);
        // Three-quarter trace sizing: enough pressure that drains and
        // rebalances move real load, enough headroom that healing pays.
        // The CI smoke run keeps full sizing — its shrunken trace leaves
        // too little slack for a graceful drain to stay kill-free.
        if !smoke() {
            config.control.local_dram_per_host =
                Bytes::from_gib(config.control.local_dram_per_host.as_gib() * 3 / 4);
        }
        config
    })
    .expect("lifecycle replay must not fail");

    println!(
        "{:>13} {:>9} {:>9} {:>9} {:>9} {:>8} {:>11} {:>7} {:>8} {:>7} {:>13}",
        "phase",
        "scheduled",
        "failures",
        "repaired",
        "migrated",
        "drained",
        "rebalanced",
        "killed",
        "decomms",
        "joined",
        "availability"
    );
    for ((name, _), point) in phases.iter().zip(&points) {
        let fleet = &point.outcome.fleet;
        println!(
            "{:>13} {:>9} {:>9} {:>9} {:>9} {:>8} {:>11} {:>7} {:>8} {:>7} {:>13}",
            name,
            fleet.scheduled_vms,
            fleet.emc_failures,
            fleet.emcs_repaired,
            fleet.vms_migrated,
            fleet.vms_drained,
            fleet.vms_rebalanced,
            fleet.vms_killed,
            fleet.groups_decommissioned,
            fleet.groups_expanded,
            pct(fleet.availability()),
        );
    }

    let by_name = |wanted: &str| {
        phases
            .iter()
            .zip(&points)
            .find(|((name, _), _)| *name == wanted)
            .map(|(_, point)| &point.outcome.fleet)
    };
    if let Some(decommission) = by_name("decommission") {
        println!(
            "\ndecommission drains {} VMs with {} killed: a graceful drain is not a failure",
            decommission.vms_drained, decommission.vms_killed,
        );
    }
    if let (Some(drilled), Some(repaired)) = (by_name("drill"), by_name("repair")) {
        println!(
            "repair at the same failure schedule: schedules {} VMs vs {}, survival {} vs {}",
            repaired.scheduled_vms,
            drilled.scheduled_vms,
            pct(repaired.survival_rate()),
            pct(drilled.survival_rate()),
        );
    }
    if let Some(full) = by_name("full") {
        println!("\nfull phase:\n{full}");
    }
    println!("paper: pooling only pays if pools can be serviced without downtime (section 4.2)");
}
