//! Figure 5: CDF of workload slowdowns under the two emulated CXL latencies.

use cxl_hw::latency::LatencyScenario;
use pond_bench::{pct, print_header};
use workload_model::{SlowdownModel, WorkloadSuite};

fn main() {
    print_header("Figure 5", "CDF of slowdowns under 182% and 222% latency");
    let suite = WorkloadSuite::standard();
    let model = SlowdownModel::default();
    let points = [0.0, 0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00];

    println!("{:<12} {:>14} {:>14}", "slowdown <=", "182% (142ns)", "222% (255ns)");
    let cdfs: Vec<Vec<(f64, f64)>> = LatencyScenario::all()
        .iter()
        .map(|&scenario| {
            let slowdowns: Vec<f64> =
                suite.workloads().map(|w| model.full_pool_slowdown(w, scenario)).collect();
            SlowdownModel::cdf(&slowdowns, &points)
        })
        .collect();
    for (i, &p) in points.iter().enumerate() {
        println!("{:<12} {:>14} {:>14}", pct(p), pct(cdfs[0][i].1), pct(cdfs[1][i].1));
    }

    let outliers = suite
        .workloads()
        .filter(|w| model.full_pool_slowdown(w, LatencyScenario::Increase222) > 1.0)
        .count();
    println!("\noutliers with >100% slowdown at 222%: {outliers} (paper reports 3, max 124%)");
    println!(
        "paper shape: the head of the CDF barely moves with latency, the body and tail shift right"
    );
}
