//! Fleet-replay throughput benchmark on an 8192-server trace.
//!
//! Replays one day of fleet arrivals through the full Pond control plane
//! twice: once on the rebuilt event core (indexed departure arena, O(1)
//! incremental peak/conservation accounting, arena bookkeeping) and once
//! through [`run_fleet_reference`] — the replay loop this PR replaced, with
//! the five-heap peek-scan queue, a full host scan after every event, and
//! hash-map bookkeeping. Both replays produce the *same* [`FleetOutcome`]
//! bit for bit (asserted on every run), so the timing difference is purely
//! the event-core data structures. The prediction models are trained once,
//! outside the timed region, and shared by both replays.
//!
//! Run with `cargo bench -p pond-bench --bench fleet`. The final line prints
//! the measured events/sec and speedup; the acceptance bar is >= 5x.
//!
//! [`run_fleet_reference`]: pond_core::fleet::run_fleet_reference

use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use cluster_sim::ClusterTrace;
use criterion::{criterion_group, BatchSize, Criterion};
use pond_core::fleet::{
    run_fleet_reference_with_policy, run_fleet_with_policy, FleetConfig, FleetOutcome,
};
use pond_core::policy::PondPolicy;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SERVERS: u32 = 8192;

fn bench_trace() -> ClusterTrace {
    let config =
        ClusterConfig { servers: SERVERS, duration_days: 1, ..ClusterConfig::azure_like() };
    TraceGenerator::new(config, 1).generate(0)
}

/// Events the replay processed: arrivals (placed and rejected), departures
/// (one per placed VM), release and reconfiguration completions, and QoS
/// snapshot ticks. The single-pool replay schedules no failure-drill events.
fn replay_events(outcome: &FleetOutcome) -> u64 {
    outcome.scheduled_vms
        + outcome.rejected_vms
        + outcome.scheduled_vms
        + outcome.releases_completed
        + outcome.reconfig_completions
        + outcome.qos_passes
}

fn bench_fleet(c: &mut Criterion) {
    let trace = bench_trace();
    let config = FleetConfig::for_trace(&trace, 0.20, 7);
    let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);
    println!("fleet trace: {} servers, {} requests, 1 day", trace.servers, trace.requests.len());
    // The replay consumes its policy, so each sample gets a clone — built in
    // the untimed setup half of `iter_batched` to keep the clone cost out of
    // both arms' timings.
    c.bench_function(&format!("fleet_replay_indexed_{SERVERS}_servers"), |b| {
        b.iter_batched(
            || policy.clone(),
            |policy| run_fleet_with_policy(black_box(&trace), &config, policy).unwrap(),
            BatchSize::LargeInput,
        )
    });
    c.bench_function(&format!("fleet_replay_reference_{SERVERS}_servers"), |b| {
        b.iter_batched(
            || policy.clone(),
            |policy| run_fleet_reference_with_policy(black_box(&trace), &config, policy).unwrap(),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
);

/// Best-of-`runs` wall time of `f`, cloning the consumed policy outside the
/// timed region each run.
fn best_of<F: FnMut(PondPolicy) -> FleetOutcome>(
    runs: usize,
    policy: &PondPolicy,
    mut f: F,
) -> (Duration, FleetOutcome) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..runs {
        let policy = policy.clone();
        let start = Instant::now();
        let outcome = f(policy);
        best = best.min(start.elapsed());
        out = Some(outcome);
    }
    (best, out.expect("at least one run"))
}

fn main() {
    benches();

    // Explicit throughput report: best-of-5 full replays of each loop on the
    // same trace and the same trained policy, with a bit-for-bit outcome
    // cross-check.
    let trace = bench_trace();
    let config = FleetConfig::for_trace(&trace, 0.20, 7);
    let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);
    let (indexed, outcome) =
        best_of(5, &policy, |policy| run_fleet_with_policy(&trace, &config, policy).unwrap());
    let (reference, reference_outcome) = best_of(5, &policy, |policy| {
        run_fleet_reference_with_policy(&trace, &config, policy).unwrap()
    });
    assert_eq!(
        outcome, reference_outcome,
        "the indexed and reference replays must produce identical outcomes"
    );
    let events = replay_events(&outcome);
    let speedup = reference.as_secs_f64() / indexed.as_secs_f64();
    println!(
        "fleet replay on {SERVERS} servers: reference {:.2?} vs indexed {:.2?} -> {speedup:.1}x speedup \
         ({events} events, {:.0} vs {:.0} events/sec)",
        reference,
        indexed,
        events as f64 / reference.as_secs_f64(),
        events as f64 / indexed.as_secs_f64(),
    );
    assert!(
        speedup >= 5.0,
        "expected the rebuilt event core to be >= 5x faster than the reference replay, got {speedup:.1}x"
    );
}
