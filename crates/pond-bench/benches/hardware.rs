//! Criterion micro-benchmarks for the hardware layer: EMC slice assignment,
//! permission checks, and the latency-model composition.

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_hw::emc::{Emc, EmcConfig};
use cxl_hw::latency::LatencyModel;
use cxl_hw::pool::PoolState;
use cxl_hw::slice::SliceId;
use cxl_hw::topology::PoolTopology;
use cxl_hw::units::{Bytes, EmcId, HostId};
use std::hint::black_box;

fn bench_emc(c: &mut Criterion) {
    c.bench_function("emc_assign_and_release_64_slices", |b| {
        b.iter(|| {
            let mut emc = Emc::new(EmcId(0), EmcConfig::pond_16_socket(Bytes::from_gib(64)));
            let slices = emc.assign_slices(HostId(0), 64).unwrap();
            for slice in &slices {
                emc.begin_release(HostId(0), *slice).unwrap();
                emc.complete_release(HostId(0), *slice).unwrap();
            }
            black_box(emc.free_capacity())
        })
    });

    c.bench_function("emc_permission_check", |b| {
        let mut emc = Emc::new(EmcId(0), EmcConfig::pond_16_socket(Bytes::from_gib(1024)));
        emc.assign_slices(HostId(3), 512).unwrap();
        b.iter(|| black_box(emc.check_access(HostId(3), SliceId(black_box(137)))))
    });

    c.bench_function("pool_state_add_capacity_16gib", |b| {
        let topology = PoolTopology::pond_with_capacity(16, Bytes::from_gib(1024)).unwrap();
        b.iter(|| {
            let mut pool = PoolState::from_topology(&topology);
            black_box(pool.add_capacity(HostId(1), Bytes::from_gib(16)).unwrap())
        })
    });
}

fn bench_latency_model(c: &mut Criterion) {
    let model = LatencyModel::default();
    c.bench_function("latency_breakdown_all_pool_sizes", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for sockets in [8u16, 16, 32, 64] {
                let topology = PoolTopology::pond(sockets).unwrap();
                total += model.pool_access_latency(&topology).as_nanos();
            }
            black_box(total)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_emc, bench_latency_model
);
criterion_main!(benches);
