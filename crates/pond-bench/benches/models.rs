//! Criterion micro-benchmarks for the prediction models: training and
//! inference latency of the sensitivity and untouched-memory models.
//!
//! Inference latency matters because the sensitivity model sits on the VM
//! request path (Figure 11, A2) and the untouched-memory prediction is added
//! to the VM request path by the serving system (§5).

use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use pond_core::sensitivity::{SensitivityModel, SensitivityModelConfig};
use pond_core::untouched::{replay_history, UntouchedMemoryModel, UntouchedModelConfig};
use std::hint::black_box;
use workload_model::telemetry::TelemetrySampler;
use workload_model::WorkloadSuite;

fn bench_sensitivity(c: &mut Criterion) {
    let suite = WorkloadSuite::standard();
    let config = SensitivityModelConfig { samples_per_workload: 2, ..Default::default() };
    c.bench_function("sensitivity_model_training", |b| {
        b.iter(|| black_box(SensitivityModel::train(&suite, &config, 1)))
    });

    let model = SensitivityModel::train(&suite, &SensitivityModelConfig::default(), 1);
    let counters = TelemetrySampler::default().sample(suite.at(10).unwrap(), 3);
    c.bench_function("sensitivity_model_inference", |b| {
        b.iter(|| black_box(model.insensitive_probability(black_box(&counters))))
    });
}

fn bench_untouched(c: &mut Criterion) {
    let config = ClusterConfig { servers: 16, duration_days: 6, ..ClusterConfig::small() };
    let trace = TraceGenerator::new(config, 1).generate(0);
    let model_config = UntouchedModelConfig { quantile: 0.05, rounds: 30 };
    c.bench_function("untouched_model_training", |b| {
        b.iter(|| black_box(UntouchedMemoryModel::train(&trace.requests, &model_config, 2)))
    });

    let model = UntouchedMemoryModel::train(&trace.requests, &model_config, 2);
    let history = replay_history(&trace.requests);
    let request = &trace.requests[0];
    c.bench_function("untouched_model_inference", |b| {
        b.iter(|| black_box(model.predict_fraction(black_box(request), &history)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sensitivity, bench_untouched
);
criterion_main!(benches);
