//! Placement-path benchmark on a 1024-server trace.
//!
//! Replays one day of arrivals and departures against 1024 servers twice:
//! once through `PlacementEngine`'s incrementally maintained free-core bucket
//! index (O(log n) candidate selection) and once through the sort-scan
//! reference this PR replaced (a full stable sort of the server list on every
//! arrival). Both replays make identical placement decisions — the reference
//! reproduces the old candidate order exactly — so the timing difference is
//! purely the candidate-selection data structure.
//!
//! Run with `cargo bench -p pond-bench --bench placement`. The final line
//! prints the measured speedup; the acceptance bar is >= 5x.

use cluster_sim::scheduler::{host_selection_key, PlacementEngine};
use cluster_sim::server::{Placement, Server};
use cluster_sim::trace::{ClusterTrace, VmRequest};
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use criterion::{criterion_group, Criterion};
use cxl_hw::units::Bytes;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SERVERS: u32 = 1024;

fn bench_trace() -> ClusterTrace {
    let config =
        ClusterConfig { servers: SERVERS, duration_days: 1, ..ClusterConfig::azure_like() };
    TraceGenerator::new(config, 1).generate(0)
}

/// The placement surface the replay drives, so the indexed engine and the
/// sort-scan reference run the exact same schedule.
trait Placer {
    fn place(&mut self, request: &VmRequest, local: Bytes) -> Option<(usize, Placement)>;
    fn remove(&mut self, server: usize, vm: u64, cores: u32);
}

impl Placer for PlacementEngine {
    fn place(&mut self, request: &VmRequest, local: Bytes) -> Option<(usize, Placement)> {
        PlacementEngine::place(self, request, local)
    }
    fn remove(&mut self, server: usize, vm: u64, cores: u32) {
        PlacementEngine::remove(self, server, vm, cores);
    }
}

/// The pre-index placement path: re-sort every server by the shared
/// host-selection key on every arrival, then scan for the tightest fit.
struct SortScanEngine {
    servers: Vec<Server>,
}

impl SortScanEngine {
    fn new(trace: &ClusterTrace) -> Self {
        SortScanEngine {
            servers: (0..trace.servers)
                .map(|i| Server::new(i, trace.cores_per_server, trace.dram_per_server, true))
                .collect(),
        }
    }
}

impl Placer for SortScanEngine {
    fn place(&mut self, request: &VmRequest, local: Bytes) -> Option<(usize, Placement)> {
        let mut candidates: Vec<usize> = (0..self.servers.len()).collect();
        candidates.sort_by_key(|&i| {
            host_selection_key(self.servers[i].free_cores(), self.servers[i].free_memory(), i)
        });
        for i in candidates {
            if self.servers[i].free_cores() < request.cores {
                continue;
            }
            if let Some(placement) = self.servers[i].try_place(request, local) {
                return Some((i, placement));
            }
        }
        None
    }
    fn remove(&mut self, server: usize, vm: u64, cores: u32) {
        self.servers[server].remove(vm, cores);
    }
}

/// Replays the trace's arrival/departure schedule against a placer and
/// returns (placed, rejected, decision hash) for cross-checking the two
/// engines: the hash folds every per-request decision (chosen server, core
/// node, memory split — or rejection), so two replays agree only if they made
/// identical placement decisions at every step.
fn replay<P: Placer>(engine: &mut P, trace: &ClusterTrace) -> (u64, u64, u64) {
    let mut departures: BinaryHeap<Reverse<(u64, u64, usize, u32)>> = BinaryHeap::new();
    let mut placed = 0;
    let mut rejected = 0;
    let mut decisions: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |value: u64| decisions = (decisions ^ value).wrapping_mul(0x100_0000_01b3);
    for request in &trace.requests {
        while let Some(&Reverse((time, vm, server, cores))) = departures.peek() {
            if time > request.arrival {
                break;
            }
            departures.pop();
            engine.remove(server, vm, cores);
        }
        match engine.place(request, request.memory) {
            Some((server, placement)) => {
                placed += 1;
                fold(server as u64);
                fold(placement.core_node as u64);
                fold(placement.local_on_core_node.as_u64());
                departures.push(Reverse((request.departure(), request.id, server, request.cores)));
            }
            None => {
                rejected += 1;
                fold(u64::MAX);
            }
        }
    }
    (placed, rejected, decisions)
}

fn indexed_replay(trace: &ClusterTrace) -> (u64, u64, u64) {
    let mut engine =
        PlacementEngine::new(trace.servers, trace.cores_per_server, trace.dram_per_server, true);
    replay(&mut engine, trace)
}

fn sort_scan_replay(trace: &ClusterTrace) -> (u64, u64, u64) {
    let mut engine = SortScanEngine::new(trace);
    replay(&mut engine, trace)
}

fn bench_placement(c: &mut Criterion) {
    let trace = bench_trace();
    println!(
        "placement trace: {} servers, {} requests, 1 day",
        trace.servers,
        trace.requests.len()
    );
    c.bench_function("placement_indexed_1024_servers", |b| {
        b.iter(|| black_box(indexed_replay(black_box(&trace))))
    });
    c.bench_function("placement_sort_scan_1024_servers", |b| {
        b.iter(|| black_box(sort_scan_replay(black_box(&trace))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_placement
);

fn best_of<F: FnMut() -> (u64, u64, u64)>(runs: usize, mut f: F) -> (Duration, (u64, u64, u64)) {
    let mut best = Duration::MAX;
    let mut out = (0, 0, 0);
    for _ in 0..runs {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed());
    }
    (best, out)
}

fn main() {
    benches();

    // Explicit speedup report: best-of-5 full replays of each engine on the
    // same trace, with a decision cross-check.
    let trace = bench_trace();
    let (indexed, placed_indexed) = best_of(5, || indexed_replay(&trace));
    let (sorted, placed_sorted) = best_of(5, || sort_scan_replay(&trace));
    // The decision hash covers every per-request (server, node, split) choice.
    assert_eq!(
        placed_indexed, placed_sorted,
        "indexed and sort-scan engines must make identical placement decisions"
    );
    let speedup = sorted.as_secs_f64() / indexed.as_secs_f64();
    println!(
        "placement path on {SERVERS} servers: sort-scan {:.2?} vs indexed {:.2?} -> {speedup:.1}x speedup \
         ({} placed, {} rejected)",
        sorted, indexed, placed_indexed.0, placed_indexed.1
    );
    assert!(
        speedup >= 5.0,
        "expected the free-core bucket index to be >= 5x faster than the per-arrival sort, got {speedup:.1}x"
    );
}
