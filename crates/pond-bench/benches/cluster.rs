//! Criterion micro-benchmarks for the cluster substrate: trace generation and
//! the event-driven simulation that backs Figures 2, 3, and 21.

use cluster_sim::scheduler::FixedPoolFraction;
use cluster_sim::simulation::{Simulation, SimulationConfig};
use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tracegen(c: &mut Criterion) {
    let config = ClusterConfig { servers: 24, duration_days: 10, ..ClusterConfig::azure_like() };
    let generator = TraceGenerator::new(config, 4);
    c.bench_function("trace_generation_10_days_24_servers", |b| {
        b.iter(|| black_box(generator.generate(black_box(1))))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let config = ClusterConfig { servers: 24, duration_days: 10, ..ClusterConfig::azure_like() };
    let trace = TraceGenerator::new(config, 1).generate(0);
    c.bench_function("cluster_simulation_fixed_pool", |b| {
        b.iter(|| {
            let sim_config = SimulationConfig { qos_mitigation: false, ..Default::default() };
            let mut sim = Simulation::new(sim_config, FixedPoolFraction::new(0.3));
            black_box(sim.run(&trace))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tracegen, bench_simulation
);
criterion_main!(benches);
