//! Link and memory-channel bandwidth model (§2).
//!
//! The paper observes that with PCIe 5.0, a bidirectional ×8 CXL port at a
//! typical 2:1 read:write ratio matches a DDR5-4800 channel. This module
//! encodes that arithmetic so topologies can be checked for bandwidth
//! balance (CXL ports vs. DDR5 channels behind the EMC).

use crate::topology::PoolTopology;
use serde::{Deserialize, Serialize};

/// PCIe 5.0 raw bandwidth per lane per direction, in GB/s (32 GT/s with
/// 128b/130b encoding ≈ 3.938 GB/s usable).
pub const PCIE5_GBPS_PER_LANE_PER_DIR: f64 = 3.938;

/// DDR5-4800 channel bandwidth in GB/s (64-bit channel × 4800 MT/s).
pub const DDR5_4800_GBPS_PER_CHANNEL: f64 = 38.4;

/// A bandwidth value in GB/s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from GB/s.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is negative or not finite.
    pub fn from_gbps(gbps: f64) -> Self {
        assert!(gbps.is_finite() && gbps >= 0.0, "bandwidth must be finite and non-negative");
        Bandwidth(gbps)
    }

    /// The value in GB/s.
    pub fn as_gbps(self) -> f64 {
        self.0
    }
}

impl std::ops::Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::from_gbps(0.0), |a, b| a + b)
    }
}

/// Read/write mix of a traffic stream, expressed as the fraction of reads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadWriteMix {
    read_fraction: f64,
}

impl ReadWriteMix {
    /// The paper's "typical" 2:1 read:write ratio.
    pub const TYPICAL_2_TO_1: ReadWriteMix = ReadWriteMix { read_fraction: 2.0 / 3.0 };

    /// Creates a mix from the fraction of requests that are reads.
    ///
    /// # Panics
    ///
    /// Panics unless `read_fraction` is within `[0, 1]`.
    pub fn new(read_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_fraction), "read fraction must be in [0, 1]");
        ReadWriteMix { read_fraction }
    }

    /// Fraction of requests that are reads.
    pub fn read_fraction(self) -> f64 {
        self.read_fraction
    }

    /// Fraction of requests that are writes.
    pub fn write_fraction(self) -> f64 {
        1.0 - self.read_fraction
    }
}

/// Bandwidth model for CXL links and DDR5 channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Usable PCIe 5.0 bandwidth per lane per direction in GB/s.
    pub pcie5_per_lane_per_dir: f64,
    /// DDR5 channel bandwidth in GB/s.
    pub ddr5_per_channel: f64,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        BandwidthModel {
            pcie5_per_lane_per_dir: PCIE5_GBPS_PER_LANE_PER_DIR,
            ddr5_per_channel: DDR5_4800_GBPS_PER_CHANNEL,
        }
    }
}

impl BandwidthModel {
    /// Effective bandwidth a ×`lanes` CXL link delivers under a read/write mix.
    ///
    /// A bidirectional link carries reads on the receive direction and writes
    /// on the transmit direction; the deliverable application bandwidth is
    /// limited by whichever direction saturates first.
    pub fn cxl_link_bandwidth(&self, lanes: u32, mix: ReadWriteMix) -> Bandwidth {
        let per_dir = self.pcie5_per_lane_per_dir * lanes as f64;
        if mix.read_fraction() == 0.0 {
            return Bandwidth::from_gbps(per_dir);
        }
        if mix.write_fraction() == 0.0 {
            return Bandwidth::from_gbps(per_dir);
        }
        // Total traffic T with read share r uses T*r of the read direction
        // and T*(1-r) of the write direction; the max T keeps both <= per_dir.
        let t_read_limited = per_dir / mix.read_fraction();
        let t_write_limited = per_dir / mix.write_fraction();
        Bandwidth::from_gbps(t_read_limited.min(t_write_limited))
    }

    /// Bandwidth of a single DDR5 channel.
    pub fn ddr5_channel_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_gbps(self.ddr5_per_channel)
    }

    /// Aggregate front-side (CXL) bandwidth of a pool topology under a mix.
    pub fn pool_cxl_bandwidth(&self, topology: &PoolTopology, mix: ReadWriteMix) -> Bandwidth {
        topology
            .emc_configs()
            .iter()
            .map(|c| self.cxl_link_bandwidth(8, mix).as_gbps() * c.ports as f64)
            .map(Bandwidth::from_gbps)
            .sum()
    }

    /// Aggregate back-side (DDR5) bandwidth of a pool topology.
    pub fn pool_dram_bandwidth(&self, topology: &PoolTopology) -> Bandwidth {
        Bandwidth::from_gbps(topology.total_ddr5_channels() as f64 * self.ddr5_per_channel)
    }

    /// Ratio of front-side to back-side bandwidth. Values near (or above) the
    /// number of ports per channel indicate the DDR5 channels are the
    /// bottleneck, which is the intended design point: hosts time-share the
    /// pool rather than all bursting at once.
    pub fn front_to_back_ratio(&self, topology: &PoolTopology, mix: ReadWriteMix) -> f64 {
        let front = self.pool_cxl_bandwidth(topology, mix).as_gbps();
        let back = self.pool_dram_bandwidth(topology).as_gbps();
        front / back
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PoolTopology;

    #[test]
    fn x8_link_at_2_to_1_matches_a_ddr5_channel() {
        // §2: a ×8 CXL port at a 2:1 read:write ratio matches DDR5-4800.
        let m = BandwidthModel::default();
        let link = m.cxl_link_bandwidth(8, ReadWriteMix::TYPICAL_2_TO_1);
        let channel = m.ddr5_channel_bandwidth();
        let ratio = link.as_gbps() / channel.as_gbps();
        assert!(
            (0.85..=1.4).contains(&ratio),
            "×8 CXL ({link:?}) should be comparable to one DDR5 channel ({channel:?})"
        );
    }

    #[test]
    fn pure_read_stream_is_limited_by_one_direction() {
        let m = BandwidthModel::default();
        let pure = m.cxl_link_bandwidth(8, ReadWriteMix::new(1.0));
        let mixed = m.cxl_link_bandwidth(8, ReadWriteMix::TYPICAL_2_TO_1);
        assert!(pure.as_gbps() <= mixed.as_gbps());
        let pure_writes = m.cxl_link_bandwidth(8, ReadWriteMix::new(0.0));
        assert_eq!(pure.as_gbps(), pure_writes.as_gbps());
    }

    #[test]
    fn bandwidth_scales_with_lanes() {
        let m = BandwidthModel::default();
        let x8 = m.cxl_link_bandwidth(8, ReadWriteMix::TYPICAL_2_TO_1).as_gbps();
        let x16 = m.cxl_link_bandwidth(16, ReadWriteMix::TYPICAL_2_TO_1).as_gbps();
        assert!((x16 / x8 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pool_level_aggregates_are_consistent() {
        let m = BandwidthModel::default();
        let topo = PoolTopology::pond(16).unwrap();
        let front = m.pool_cxl_bandwidth(&topo, ReadWriteMix::TYPICAL_2_TO_1);
        let back = m.pool_dram_bandwidth(&topo);
        assert!(front.as_gbps() > 0.0);
        assert!(back.as_gbps() > 0.0);
        let ratio = m.front_to_back_ratio(&topo, ReadWriteMix::TYPICAL_2_TO_1);
        // 16 ports share 12 channels: front side exceeds back side.
        assert!(ratio > 1.0, "ratio {ratio}");
    }

    #[test]
    fn read_write_mix_fractions() {
        let mix = ReadWriteMix::new(0.75);
        assert_eq!(mix.read_fraction(), 0.75);
        assert_eq!(mix.write_fraction(), 0.25);
        let typical = ReadWriteMix::TYPICAL_2_TO_1;
        assert!((typical.read_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn invalid_mix_rejected() {
        let _ = ReadWriteMix::new(1.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite")]
    fn negative_bandwidth_rejected() {
        let _ = Bandwidth::from_gbps(-3.0);
    }
}
