//! Pool-level slice ownership: the state the Pool Manager drives (§4.2, Figure 9).
//!
//! [`PoolState`] aggregates the EMCs of one pool and exposes the two control
//! operations the paper defines: `add_capacity(host, slice)` and
//! `release_capacity(host, slice)`, plus the timing model for onlining
//! (microseconds per GiB slice) and offlining (tens of milliseconds per
//! GiB slice) that
//! motivates Pond's asynchronous release strategy.

use crate::emc::{Emc, EmcConfig};
use crate::error::CxlError;
use crate::slice::SliceId;
use crate::topology::PoolTopology;
use crate::units::{Bytes, EmcId, HostId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// A (EMC, slice) pair — the global identity of a slice within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PoolSlice {
    /// The EMC that owns the DRAM.
    pub emc: EmcId,
    /// The slice within that EMC.
    pub slice: SliceId,
}

/// Per-slice lender attribution for a cross-pod borrow: when a VM's host and
/// its pool slices live in different pods, the slices stay owned by the
/// *lender* pod's pool and the lease names who lent them, which
/// port-consuming host identity the borrow occupies on the lender's EMCs
/// (a real CXL port — see `PoolGroupTopology::borrow_port_host`), and the
/// slices themselves.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceLease {
    /// The pool group that lent the slices.
    pub lender: usize,
    /// The port-consuming host identity on the lender's pool.
    pub port_host: HostId,
    /// The borrowed slices, attributed to `port_host` on the lender.
    pub slices: Vec<PoolSlice>,
}

impl SliceLease {
    /// Capacity of the lease (1 GiB per slice).
    pub fn capacity(&self) -> Bytes {
        Bytes::from_gib(self.slices.len() as u64)
    }
}

/// Control-plane events emitted by the pool, mirroring the interrupt flows in
/// §4.2 ("Add_capacity(host, slice)" / "Release_capacity(host, slice)").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PoolEvent {
    /// A slice was assigned to a host; the host driver should online it.
    AddCapacity {
        /// The receiving host.
        host: HostId,
        /// The slice that was assigned.
        slice: PoolSlice,
    },
    /// A slice release was requested; the host driver should offline it.
    ReleaseCapacity {
        /// The releasing host.
        host: HostId,
        /// The slice being released.
        slice: PoolSlice,
    },
    /// A release completed and the slice returned to the free pool.
    ReleaseCompleted {
        /// The host that released the slice.
        host: HostId,
        /// The slice that was freed.
        slice: PoolSlice,
    },
    /// A host's last slice on an EMC was freed, so its CXL port was released
    /// for another host (the detach half of the port lifecycle).
    PortDetached {
        /// The host whose port was released.
        host: HostId,
        /// The EMC the port belonged to.
        emc: EmcId,
    },
    /// An EMC failed: its capacity left the pool, its live slice ownerships
    /// were torn down, and its ports were released (dead, not reusable).
    EmcFailed {
        /// The EMC that failed.
        emc: EmcId,
        /// Slices that were owned (assigned or mid-release) when it died.
        slices_lost: u64,
    },
    /// A failed EMC was repaired (replaced): its capacity rejoined the pool
    /// empty — all slices free, all ports available.
    EmcRepaired {
        /// The EMC that came back.
        emc: EmcId,
        /// The capacity that rejoined the pool.
        capacity: Bytes,
    },
    /// A new EMC was attached to the pool live (capacity expansion).
    EmcAttached {
        /// The id the new EMC was given.
        emc: EmcId,
        /// The capacity it added.
        capacity: Bytes,
    },
}

/// Lifecycle state of one pool group, ordered by operational health à la
/// mayastor's `Online > Degraded > Faulted` pool states: an [`Online`]
/// group accepts placements, a [`Draining`] group is being gracefully
/// decommissioned (existing VMs migrate away, nothing new lands), and a
/// [`Decommissioned`] group has fully drained — no VMs, no in-flight
/// releases — and is out of service until a live expansion re-onlines it.
///
/// The ordering is explicit and manual so `Online > Draining >
/// Decommissioned` is a tested contract, not an accident of declaration
/// order.
///
/// [`Online`]: GroupState::Online
/// [`Draining`]: GroupState::Draining
/// [`Decommissioned`]: GroupState::Decommissioned
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupState {
    /// In service: the group schedules arrivals and accepts migrations.
    Online,
    /// Gracefully decommissioning: VMs drain away via migration, pending
    /// slice releases run to completion, and no new placement lands.
    Draining,
    /// Fully drained and out of service (removable à la maxio's pool
    /// manager, which requires a decommissioned pool to be empty first).
    Decommissioned,
}

impl GroupState {
    /// Whether the group may receive placements (arrivals, migrations,
    /// rebalances). Only [`GroupState::Online`] groups do — a draining
    /// group would never finish draining otherwise.
    pub fn accepts_placements(self) -> bool {
        matches!(self, GroupState::Online)
    }

    /// Operational-health rank backing the manual ordering.
    fn health(self) -> u8 {
        match self {
            GroupState::Online => 2,
            GroupState::Draining => 1,
            GroupState::Decommissioned => 0,
        }
    }
}

impl PartialOrd for GroupState {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GroupState {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.health().cmp(&other.health())
    }
}

/// What one EMC failure took down, as seen by the pool
/// ([`PoolState::fail_emc`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmcFailureReport {
    /// The EMC that failed.
    pub emc: EmcId,
    /// Slice ownerships lost with the device: live assignments and in-flight
    /// releases alike, each attributed to the host that held it.
    pub lost: Vec<(HostId, PoolSlice)>,
    /// Hosts whose CXL port on the failed EMC went away.
    pub ports_lost: Vec<HostId>,
}

/// Timing parameters for memory online/offline transitions (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionTiming {
    /// Time to online one 1 GiB slice on the host (near instantaneous — microseconds).
    pub online_per_gib: Duration,
    /// Lower bound on offlining one 1 GiB slice (10 ms/GiB).
    pub offline_per_gib_min: Duration,
    /// Upper bound on offlining one 1 GiB slice (100 ms/GiB).
    pub offline_per_gib_max: Duration,
}

impl Default for TransitionTiming {
    fn default() -> Self {
        TransitionTiming {
            online_per_gib: Duration::from_micros(10),
            offline_per_gib_min: Duration::from_millis(10),
            offline_per_gib_max: Duration::from_millis(100),
        }
    }
}

impl TransitionTiming {
    /// Time to online `capacity` on a host.
    pub fn online_time(&self, capacity: Bytes) -> Duration {
        self.online_per_gib * capacity.slices_ceil() as u32
    }

    /// Worst-case time to offline `capacity` from a host.
    pub fn offline_time_max(&self, capacity: Bytes) -> Duration {
        self.offline_per_gib_max * capacity.slices_ceil() as u32
    }

    /// Best-case time to offline `capacity` from a host.
    pub fn offline_time_min(&self, capacity: Bytes) -> Duration {
        self.offline_per_gib_min * capacity.slices_ceil() as u32
    }
}

/// The aggregated slice-ownership state of one Pond pool.
///
/// # Example
///
/// ```
/// use cxl_hw::pool::PoolState;
/// use cxl_hw::topology::PoolTopology;
/// use cxl_hw::units::{Bytes, HostId};
///
/// let topo = PoolTopology::pond_with_capacity(8, Bytes::from_gib(16))?;
/// let mut pool = PoolState::from_topology(&topo);
/// let slices = pool.add_capacity(HostId(0), Bytes::from_gib(2))?;
/// assert_eq!(slices.len(), 2);
/// assert_eq!(pool.capacity_of(HostId(0)), Bytes::from_gib(2));
/// # Ok::<(), cxl_hw::CxlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolState {
    emcs: BTreeMap<EmcId, Emc>,
    timing: TransitionTiming,
    events: Vec<PoolEvent>,
}

impl PoolState {
    /// Builds pool state from explicit EMC configurations.
    pub fn new<I>(configs: I) -> Self
    where
        I: IntoIterator<Item = EmcConfig>,
    {
        let emcs = configs
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| (EmcId(i as u16), Emc::new(EmcId(i as u16), cfg)))
            .collect();
        PoolState { emcs, timing: TransitionTiming::default(), events: Vec::new() }
    }

    /// Builds pool state matching a [`PoolTopology`].
    pub fn from_topology(topology: &PoolTopology) -> Self {
        Self::new(topology.emc_configs().iter().cloned())
    }

    /// Overrides the online/offline timing parameters.
    pub fn with_timing(mut self, timing: TransitionTiming) -> Self {
        self.timing = timing;
        self
    }

    /// The timing parameters in use.
    pub fn timing(&self) -> &TransitionTiming {
        &self.timing
    }

    /// Number of EMCs in the pool.
    pub fn emc_count(&self) -> usize {
        self.emcs.len()
    }

    /// Access to a specific EMC.
    pub fn emc(&self, id: EmcId) -> Option<&Emc> {
        self.emcs.get(&id)
    }

    /// Mutable access to a specific EMC (used by the failure model).
    pub fn emc_mut(&mut self, id: EmcId) -> Option<&mut Emc> {
        self.emcs.get_mut(&id)
    }

    /// Iterates over all EMCs.
    pub fn emcs(&self) -> impl Iterator<Item = &Emc> {
        self.emcs.values()
    }

    /// Total pool capacity, dead EMCs included (what was provisioned).
    pub fn total_capacity(&self) -> Bytes {
        self.emcs.values().map(|e| e.capacity()).sum()
    }

    /// Pool capacity behind live EMCs — the denominator of every
    /// conservation check once failures can remove capacity mid-replay.
    /// Equals [`PoolState::total_capacity`] while nothing has failed.
    pub fn live_capacity(&self) -> Bytes {
        self.emcs.values().filter(|e| !e.is_failed()).map(|e| e.capacity()).sum()
    }

    /// Capacity currently assigned to hosts (includes slices mid-release).
    pub fn assigned_capacity(&self) -> Bytes {
        self.emcs.values().map(|e| e.assigned_capacity()).sum()
    }

    /// Capacity free for assignment across all live EMCs.
    pub fn free_capacity(&self) -> Bytes {
        self.emcs.values().filter(|e| !e.is_failed()).map(|e| e.free_capacity()).sum()
    }

    /// Capacity free for assignment *to a specific host*: only EMCs the host
    /// is already attached to, or that still have a free CXL port, count.
    /// This is what bounds a pool to `ports` concurrent slice-owning hosts
    /// while letting any number of hosts cycle through over time.
    pub fn free_capacity_for(&self, host: HostId) -> Bytes {
        self.emcs.values().filter(|e| e.can_attach(host)).map(|e| e.free_capacity()).sum()
    }

    /// Capacity assigned to one host across all EMCs.
    pub fn capacity_of(&self, host: HostId) -> Bytes {
        self.emcs.values().map(|e| e.capacity_of(host)).sum()
    }

    /// Drains the event log accumulated since the last call.
    pub fn drain_events(&mut self) -> Vec<PoolEvent> {
        std::mem::take(&mut self.events)
    }

    /// Assigns `amount` (rounded up to whole slices) to `host`.
    ///
    /// To minimize the blast radius of an EMC failure, the allocation is
    /// served from as few EMCs as possible: the EMC with the most free
    /// capacity is tried first. Only EMCs the host can attach to (already
    /// holding a port, or with a free port) participate — a pool whose ports
    /// are all held by *other* hosts is exhausted from this host's view even
    /// if slices are free.
    ///
    /// Returns the assigned slices and records one
    /// [`PoolEvent::AddCapacity`] per slice.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::InsufficientPoolCapacity`] when the EMCs reachable
    /// by this host cannot satisfy the full request; in that case no slice is
    /// assigned.
    pub fn add_capacity(
        &mut self,
        host: HostId,
        amount: Bytes,
    ) -> Result<Vec<PoolSlice>, CxlError> {
        let needed = amount.slices_ceil();
        if needed == 0 {
            return Ok(Vec::new());
        }
        if self.free_capacity_for(host) < Bytes::from_gib(needed) {
            return Err(CxlError::InsufficientPoolCapacity {
                requested: Bytes::from_gib(needed),
                available: self.free_capacity_for(host),
            });
        }

        // Sort attachable EMCs by free capacity, descending, so a single EMC
        // serves the request whenever possible.
        let mut order: Vec<EmcId> =
            self.emcs.values().filter(|e| e.can_attach(host)).map(|e| e.id()).collect();
        order.sort_by_key(|id| std::cmp::Reverse(self.emcs[id].free_capacity().as_gib()));

        let mut remaining = needed;
        let mut assigned = Vec::with_capacity(needed as usize);
        for emc_id in order {
            if remaining == 0 {
                break;
            }
            let emc = self.emcs.get_mut(&emc_id).expect("id from iteration");
            let take = remaining.min(emc.free_capacity().as_gib());
            if take == 0 {
                continue;
            }
            let slices = emc.assign_slices(host, take)?;
            for slice in slices {
                let ps = PoolSlice { emc: emc_id, slice };
                self.events.push(PoolEvent::AddCapacity { host, slice: ps });
                assigned.push(ps);
            }
            remaining -= take;
        }
        debug_assert_eq!(remaining, 0, "free capacity was checked up front");
        Ok(assigned)
    }

    /// Starts releasing specific slices from a host (the asynchronous path
    /// taken when a VM departs). The slices stay attributed to the host until
    /// [`PoolState::complete_release`] is called for them.
    ///
    /// Returns the worst-case offlining duration for the released amount.
    ///
    /// # Errors
    ///
    /// Returns the first ownership error encountered; slices processed before
    /// the error remain in the releasing state.
    pub fn begin_release(
        &mut self,
        host: HostId,
        slices: &[PoolSlice],
    ) -> Result<Duration, CxlError> {
        for ps in slices {
            let emc = self.emcs.get_mut(&ps.emc).ok_or(CxlError::UnknownEmc { emc: ps.emc })?;
            emc.begin_release(host, ps.slice)?;
            self.events.push(PoolEvent::ReleaseCapacity { host, slice: *ps });
        }
        Ok(self.timing.offline_time_max(Bytes::from_gib(slices.len() as u64)))
    }

    /// Completes the release of slices, returning them to the free pool.
    /// When a completion frees the host's last slice on an EMC, the host's
    /// CXL port detaches so another host can take it.
    ///
    /// # Errors
    ///
    /// Returns the first ownership error encountered.
    pub fn complete_release(&mut self, host: HostId, slices: &[PoolSlice]) -> Result<(), CxlError> {
        for ps in slices {
            let emc = self.emcs.get_mut(&ps.emc).ok_or(CxlError::UnknownEmc { emc: ps.emc })?;
            emc.complete_release(host, ps.slice)?;
            self.events.push(PoolEvent::ReleaseCompleted { host, slice: *ps });
        }
        let touched: std::collections::BTreeSet<EmcId> = slices.iter().map(|ps| ps.emc).collect();
        for emc_id in touched {
            self.detach_if_idle(host, emc_id);
        }
        Ok(())
    }

    /// Detaches the host's port on `emc_id` if the host no longer owns any
    /// slice there (assigned or mid-release — [`Emc::detach_host`] refuses
    /// otherwise), recording a [`PoolEvent::PortDetached`].
    fn detach_if_idle(&mut self, host: HostId, emc_id: EmcId) {
        let Some(emc) = self.emcs.get_mut(&emc_id) else { return };
        if emc.detach_host(host).unwrap_or(false) {
            self.events.push(PoolEvent::PortDetached { host, emc: emc_id });
        }
    }

    /// Fails one EMC: marks it dead, tears down every live slice ownership
    /// on it (assigned or mid-release — an in-flight offlining cannot
    /// complete on a dead device), and releases its CXL ports. The lost
    /// ownerships come back in the report so the layers above can map the
    /// blast radius to VMs and prune their own in-flight state.
    ///
    /// Records one [`PoolEvent::EmcFailed`]. Idempotent: failing a dead EMC
    /// loses nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnknownEmc`] when the EMC does not exist.
    pub fn fail_emc(&mut self, emc_id: EmcId) -> Result<EmcFailureReport, CxlError> {
        let emc = self.emcs.get_mut(&emc_id).ok_or(CxlError::UnknownEmc { emc: emc_id })?;
        let ports_lost = emc.attached_hosts().to_vec();
        let lost: Vec<(HostId, PoolSlice)> = emc
            .fail()
            .into_iter()
            .map(|(host, slice)| (host, PoolSlice { emc: emc_id, slice }))
            .collect();
        self.events.push(PoolEvent::EmcFailed { emc: emc_id, slices_lost: lost.len() as u64 });
        Ok(EmcFailureReport { emc: emc_id, lost, ports_lost })
    }

    /// Repairs (replaces) a failed EMC: the device rejoins the pool empty,
    /// with its full capacity free and every port available —
    /// [`PoolState::fail_emc`] already tore down its ownerships, so nothing
    /// is resurrected; the layers above must treat the restored capacity as
    /// brand new. Returns the capacity that rejoined the pool, which both
    /// `free_capacity` and `live_capacity` grow by, keeping the
    /// free + pending + pinned = live conservation identity intact.
    ///
    /// Records one [`PoolEvent::EmcRepaired`]. Idempotent: repairing a
    /// healthy EMC restores [`Bytes::ZERO`] and records nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnknownEmc`] when the EMC does not exist.
    pub fn restore_emc(&mut self, emc_id: EmcId) -> Result<Bytes, CxlError> {
        let emc = self.emcs.get_mut(&emc_id).ok_or(CxlError::UnknownEmc { emc: emc_id })?;
        if !emc.repair() {
            return Ok(Bytes::ZERO);
        }
        let capacity = emc.capacity();
        self.events.push(PoolEvent::EmcRepaired { emc: emc_id, capacity });
        Ok(capacity)
    }

    /// Attaches a brand-new EMC to the pool live (capacity expansion): the
    /// device gets the next unused id and joins with its full capacity free.
    /// Records one [`PoolEvent::EmcAttached`].
    pub fn attach_emc(&mut self, config: EmcConfig) -> EmcId {
        let id = EmcId(self.emcs.keys().next_back().map_or(0, |last| last.0 + 1));
        let emc = Emc::new(id, config);
        let capacity = emc.capacity();
        self.emcs.insert(id, emc);
        self.events.push(PoolEvent::EmcAttached { emc: id, capacity });
        id
    }

    /// Releases every slice a host owns in one step (host failure handling)
    /// and detaches the host's ports. Returns the number of slices reclaimed.
    pub fn release_host(&mut self, host: HostId) -> u64 {
        let mut reclaimed = 0;
        let emc_ids: Vec<EmcId> = self.emcs.keys().copied().collect();
        for emc_id in emc_ids {
            let slices = self.emcs.get_mut(&emc_id).expect("known id").release_all(host);
            reclaimed += slices.len() as u64;
            for slice in slices {
                self.events.push(PoolEvent::ReleaseCompleted {
                    host,
                    slice: PoolSlice { emc: emc_id, slice },
                });
            }
            self.detach_if_idle(host, emc_id);
        }
        reclaimed
    }

    /// Slices currently owned by a host.
    pub fn slices_of(&self, host: HostId) -> Vec<PoolSlice> {
        self.emcs
            .values()
            .flat_map(|e| {
                e.permission_table()
                    .owned_by(host)
                    .into_iter()
                    .map(move |slice| PoolSlice { emc: e.id(), slice })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pool_8x16() -> PoolState {
        // 8-socket pool with 16 GiB total capacity.
        let topo = PoolTopology::pond_with_capacity(8, Bytes::from_gib(16)).unwrap();
        PoolState::from_topology(&topo)
    }

    #[test]
    fn add_capacity_rounds_up_to_slices() {
        let mut pool = pool_8x16();
        let slices = pool.add_capacity(HostId(0), Bytes::from_mib(1500)).unwrap();
        assert_eq!(slices.len(), 2);
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::from_gib(2));
    }

    #[test]
    fn add_capacity_zero_is_a_noop() {
        let mut pool = pool_8x16();
        assert!(pool.add_capacity(HostId(0), Bytes::ZERO).unwrap().is_empty());
        assert!(pool.drain_events().is_empty());
    }

    #[test]
    fn add_capacity_fails_atomically_when_pool_is_short() {
        let mut pool = pool_8x16();
        pool.add_capacity(HostId(0), Bytes::from_gib(15)).unwrap();
        let before = pool.assigned_capacity();
        let err = pool.add_capacity(HostId(1), Bytes::from_gib(2)).unwrap_err();
        assert!(matches!(err, CxlError::InsufficientPoolCapacity { .. }));
        assert_eq!(pool.assigned_capacity(), before, "failed request must not assign anything");
    }

    #[test]
    fn release_cycle_returns_capacity() {
        let mut pool = pool_8x16();
        let slices = pool.add_capacity(HostId(3), Bytes::from_gib(4)).unwrap();
        let offline = pool.begin_release(HostId(3), &slices).unwrap();
        assert!(offline >= Duration::from_millis(40), "4 GiB at >=10ms/GiB");
        // Capacity still attributed while offlining.
        assert_eq!(pool.capacity_of(HostId(3)), Bytes::from_gib(4));
        pool.complete_release(HostId(3), &slices).unwrap();
        assert_eq!(pool.capacity_of(HostId(3)), Bytes::ZERO);
        assert_eq!(pool.free_capacity(), pool.total_capacity());
    }

    #[test]
    fn events_record_the_figure9_flow() {
        let mut pool = pool_8x16();
        let slices = pool.add_capacity(HostId(1), Bytes::from_gib(1)).unwrap();
        pool.begin_release(HostId(1), &slices).unwrap();
        pool.complete_release(HostId(1), &slices).unwrap();
        let events = pool.drain_events();
        assert_eq!(events.len(), 4);
        assert!(matches!(events[0], PoolEvent::AddCapacity { host: HostId(1), .. }));
        assert!(matches!(events[1], PoolEvent::ReleaseCapacity { host: HostId(1), .. }));
        assert!(matches!(events[2], PoolEvent::ReleaseCompleted { host: HostId(1), .. }));
        // Releasing the host's last slice on the EMC frees its CXL port.
        assert!(matches!(events[3], PoolEvent::PortDetached { host: HostId(1), .. }));
        assert!(pool.drain_events().is_empty(), "drain consumes the log");
    }

    #[test]
    fn ports_cycle_through_more_hosts_than_the_emc_has_ports() {
        // A 2-port EMC serves hosts 0..6 over time: each host releases its
        // slices (detaching its port) before the host two steps later needs
        // one. Before the port lifecycle existed, host 2 already failed.
        let topo = PoolTopology::pond_with_capacity(8, Bytes::from_gib(16)).unwrap();
        let mut pool = PoolState::new(topo.emc_configs().iter().cloned().map(|mut c| {
            c.ports = 2;
            c
        }));
        let mut held: std::collections::VecDeque<(HostId, Vec<PoolSlice>)> = Default::default();
        for h in 0..6u16 {
            let host = HostId(h);
            let slices = pool.add_capacity(host, Bytes::from_gib(2)).unwrap();
            held.push_back((host, slices));
            if held.len() == 2 {
                let (old, old_slices) = held.pop_front().unwrap();
                pool.begin_release(old, &old_slices).unwrap();
                pool.complete_release(old, &old_slices).unwrap();
            }
        }
        let detached = pool
            .drain_events()
            .iter()
            .filter(|e| matches!(e, PoolEvent::PortDetached { .. }))
            .count();
        assert_eq!(detached, 5, "every drained host gave its port back");
    }

    #[test]
    fn port_exhaustion_is_per_host_capacity_exhaustion() {
        // Both ports held with slices: a third host sees no attachable
        // capacity even though slices are free.
        let topo = PoolTopology::pond_with_capacity(8, Bytes::from_gib(16)).unwrap();
        let mut pool = PoolState::new(topo.emc_configs().iter().cloned().map(|mut c| {
            c.ports = 2;
            c
        }));
        pool.add_capacity(HostId(0), Bytes::from_gib(1)).unwrap();
        let slices = pool.add_capacity(HostId(1), Bytes::from_gib(1)).unwrap();
        assert!(pool.free_capacity() > Bytes::ZERO);
        assert_eq!(pool.free_capacity_for(HostId(2)), Bytes::ZERO);
        assert!(matches!(
            pool.add_capacity(HostId(2), Bytes::from_gib(1)),
            Err(CxlError::InsufficientPoolCapacity { .. })
        ));
        // Attached hosts still see the free capacity.
        assert_eq!(pool.free_capacity_for(HostId(0)), pool.free_capacity());
        // Once host 1 drains, its port serves host 2.
        pool.begin_release(HostId(1), &slices).unwrap();
        pool.complete_release(HostId(1), &slices).unwrap();
        assert!(pool.add_capacity(HostId(2), Bytes::from_gib(1)).is_ok());
    }

    #[test]
    fn release_requires_ownership() {
        let mut pool = pool_8x16();
        let slices = pool.add_capacity(HostId(0), Bytes::from_gib(1)).unwrap();
        assert!(pool.begin_release(HostId(1), &slices).is_err());
    }

    #[test]
    fn release_host_reclaims_everything() {
        let mut pool = pool_8x16();
        pool.add_capacity(HostId(0), Bytes::from_gib(3)).unwrap();
        pool.add_capacity(HostId(1), Bytes::from_gib(2)).unwrap();
        assert_eq!(pool.release_host(HostId(0)), 3);
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::ZERO);
        assert_eq!(pool.capacity_of(HostId(1)), Bytes::from_gib(2));
    }

    #[test]
    fn multi_emc_allocation_prefers_single_emc() {
        // 32-socket topology has 4 EMCs; a small allocation should land on one.
        let topo = PoolTopology::pond_with_capacity(32, Bytes::from_gib(32)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        assert_eq!(pool.emc_count(), 4);
        let slices = pool.add_capacity(HostId(0), Bytes::from_gib(4)).unwrap();
        let emcs: std::collections::BTreeSet<EmcId> = slices.iter().map(|s| s.emc).collect();
        assert_eq!(emcs.len(), 1, "small allocation should stay on one EMC");
    }

    #[test]
    fn multi_emc_allocation_spills_when_needed() {
        let topo = PoolTopology::pond_with_capacity(32, Bytes::from_gib(8)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        // Each EMC holds 2 GiB; a 5 GiB request must span at least 3 EMCs.
        let slices = pool.add_capacity(HostId(0), Bytes::from_gib(5)).unwrap();
        let emcs: std::collections::BTreeSet<EmcId> = slices.iter().map(|s| s.emc).collect();
        assert!(emcs.len() >= 3);
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::from_gib(5));
    }

    #[test]
    fn fail_emc_reports_losses_and_shrinks_live_capacity() {
        let topo = PoolTopology::pond_with_capacity(32, Bytes::from_gib(8)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        let slices = pool.add_capacity(HostId(0), Bytes::from_gib(2)).unwrap();
        let dead = slices[0].emc;
        assert_eq!(pool.live_capacity(), pool.total_capacity());

        let report = pool.fail_emc(dead).unwrap();
        assert_eq!(report.emc, dead);
        assert_eq!(report.lost, vec![(HostId(0), slices[0]), (HostId(0), slices[1])]);
        assert_eq!(report.ports_lost, vec![HostId(0)]);
        assert_eq!(pool.live_capacity(), Bytes::from_gib(6));
        assert_eq!(pool.total_capacity(), Bytes::from_gib(8), "provisioned capacity is history");
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::ZERO);
        let events = pool.drain_events();
        assert!(events.iter().any(|e| matches!(e, PoolEvent::EmcFailed { slices_lost: 2, .. })));
        // Idempotent: the second failure loses nothing.
        assert!(pool.fail_emc(dead).unwrap().lost.is_empty());
        assert!(pool.fail_emc(EmcId(42)).is_err());
    }

    #[test]
    fn restore_emc_returns_exactly_the_lost_capacity_empty() {
        let topo = PoolTopology::pond_with_capacity(32, Bytes::from_gib(8)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        let slices = pool.add_capacity(HostId(0), Bytes::from_gib(2)).unwrap();
        let dead = slices[0].emc;
        pool.fail_emc(dead).unwrap();
        assert_eq!(pool.live_capacity(), Bytes::from_gib(6));

        let restored = pool.restore_emc(dead).unwrap();
        assert_eq!(restored, Bytes::from_gib(2), "one 2 GiB EMC rejoined");
        assert_eq!(pool.live_capacity(), pool.total_capacity());
        // The repaired device is empty: nothing of host 0's old ownership
        // survives, and the capacity is all free.
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::ZERO);
        assert_eq!(pool.free_capacity(), pool.live_capacity());
        assert!(pool.drain_events().iter().any(
            |e| matches!(e, PoolEvent::EmcRepaired { capacity, .. } if *capacity == restored)
        ));
        // Idempotent: repairing a healthy EMC restores nothing.
        assert_eq!(pool.restore_emc(dead).unwrap(), Bytes::ZERO);
        assert!(pool.drain_events().is_empty());
        assert!(pool.restore_emc(EmcId(42)).is_err());
        // The restored capacity is allocatable again.
        assert!(pool.add_capacity(HostId(1), Bytes::from_gib(8)).is_ok());
    }

    #[test]
    fn attach_emc_expands_the_pool_live() {
        let topo = PoolTopology::pond_with_capacity(8, Bytes::from_gib(16)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        pool.add_capacity(HostId(0), Bytes::from_gib(16)).unwrap();
        assert!(pool.add_capacity(HostId(1), Bytes::from_gib(1)).is_err());

        let id = pool.attach_emc(EmcConfig::pond_16_socket(Bytes::from_gib(4)));
        assert_eq!(id, EmcId(1), "next unused id");
        assert_eq!(pool.emc_count(), 2);
        assert_eq!(pool.total_capacity(), Bytes::from_gib(20));
        assert_eq!(pool.live_capacity(), Bytes::from_gib(20));
        assert_eq!(pool.free_capacity(), Bytes::from_gib(4));
        assert!(pool
            .drain_events()
            .iter()
            .any(|e| matches!(e, PoolEvent::EmcAttached { emc, capacity }
                if *emc == id && *capacity == Bytes::from_gib(4))));
        // The new capacity serves a previously-starved host.
        assert_eq!(pool.add_capacity(HostId(1), Bytes::from_gib(4)).unwrap().len(), 4);
        // Ids never collide, even after interleaved failures.
        pool.fail_emc(EmcId(0)).unwrap();
        let next = pool.attach_emc(EmcConfig::pond_16_socket(Bytes::from_gib(1)));
        assert_eq!(next, EmcId(2));
    }

    #[test]
    fn group_states_order_online_above_draining_above_decommissioned() {
        // The mayastor-style health ordering is a contract the scheduler
        // relies on: `Online` is the greatest state, and only it accepts
        // placements.
        assert!(GroupState::Online > GroupState::Draining);
        assert!(GroupState::Draining > GroupState::Decommissioned);
        assert!(GroupState::Online > GroupState::Decommissioned);
        assert_eq!(GroupState::Online.max(GroupState::Draining), GroupState::Online);
        assert!(GroupState::Online.accepts_placements());
        assert!(!GroupState::Draining.accepts_placements());
        assert!(!GroupState::Decommissioned.accepts_placements());
    }

    #[test]
    fn failed_emc_capacity_is_not_allocatable() {
        let topo = PoolTopology::pond_with_capacity(32, Bytes::from_gib(8)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        let total_free = pool.free_capacity();
        pool.emc_mut(EmcId(0)).unwrap().mark_failed();
        assert!(pool.free_capacity() < total_free);
        // Requests larger than the remaining live capacity fail.
        assert!(pool.add_capacity(HostId(0), Bytes::from_gib(7)).is_err());
        // Requests that fit on live EMCs still succeed.
        assert!(pool.add_capacity(HostId(0), Bytes::from_gib(6)).is_ok());
    }

    #[test]
    fn timing_model_scales_with_capacity() {
        let t = TransitionTiming::default();
        assert!(t.online_time(Bytes::from_gib(64)) < Duration::from_millis(10));
        assert_eq!(t.offline_time_max(Bytes::from_gib(10)), Duration::from_secs(1));
        assert_eq!(t.offline_time_min(Bytes::from_gib(10)), Duration::from_millis(100));
    }

    #[test]
    fn foreign_host_cannot_release_or_complete() {
        let mut pool = pool_8x16();
        let slices = pool.add_capacity(HostId(0), Bytes::from_gib(2)).unwrap();
        // Host 1 owns nothing: both phases of the release flow must fail and
        // leave ownership untouched.
        assert!(matches!(
            pool.begin_release(HostId(1), &slices),
            Err(CxlError::SliceNotOwned { .. })
        ));
        assert!(matches!(
            pool.complete_release(HostId(1), &slices),
            Err(CxlError::SliceNotOwned { .. })
        ));
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::from_gib(2));
    }

    #[test]
    fn released_slices_can_be_reassigned_to_another_host() {
        let mut pool = pool_8x16();
        let first = pool.add_capacity(HostId(0), Bytes::from_gib(16)).unwrap();
        assert!(pool.add_capacity(HostId(1), Bytes::from_gib(1)).is_err());
        pool.begin_release(HostId(0), &first).unwrap();
        // Capacity stays attributed to host 0 until offlining completes, so
        // the pool is still full from host 1's perspective.
        assert!(pool.add_capacity(HostId(1), Bytes::from_gib(1)).is_err());
        pool.complete_release(HostId(0), &first).unwrap();
        let second = pool.add_capacity(HostId(1), Bytes::from_gib(16)).unwrap();
        assert_eq!(second.len(), 16);
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::ZERO);
        assert_eq!(pool.capacity_of(HostId(1)), Bytes::from_gib(16));
    }

    #[test]
    fn release_host_reclaims_everything_including_in_flight_releases() {
        let mut pool = pool_8x16();
        let slices = pool.add_capacity(HostId(2), Bytes::from_gib(3)).unwrap();
        pool.begin_release(HostId(2), &slices[..1]).unwrap();
        assert_eq!(pool.release_host(HostId(2)), 3);
        assert_eq!(pool.capacity_of(HostId(2)), Bytes::ZERO);
        assert_eq!(pool.free_capacity(), pool.total_capacity());
        // A second reclaim finds nothing left to release.
        assert_eq!(pool.release_host(HostId(2)), 0);
    }

    proptest! {
        /// Invariant: total = assigned + free, regardless of the operation mix.
        #[test]
        fn capacity_conservation(ops in proptest::collection::vec((0u16..4, 1u64..5, proptest::bool::ANY), 0..40)) {
            let topo = PoolTopology::pond_with_capacity(16, Bytes::from_gib(32)).unwrap();
            let mut pool = PoolState::from_topology(&topo);
            for (host, gib, release) in ops {
                let host = HostId(host);
                if release {
                    let owned = pool.slices_of(host);
                    if !owned.is_empty() {
                        let n = (gib as usize).min(owned.len());
                        let to_release: Vec<_> = owned[..n].to_vec();
                        pool.begin_release(host, &to_release).unwrap();
                        pool.complete_release(host, &to_release).unwrap();
                    }
                } else {
                    let _ = pool.add_capacity(host, Bytes::from_gib(gib));
                }
                prop_assert_eq!(
                    pool.assigned_capacity() + pool.free_capacity(),
                    pool.total_capacity()
                );
            }
        }

        /// Invariant: per-host capacity equals the number of slices listed for the host.
        #[test]
        fn slices_of_matches_capacity(allocs in proptest::collection::vec((0u16..4, 1u64..4), 0..16)) {
            let topo = PoolTopology::pond_with_capacity(16, Bytes::from_gib(64)).unwrap();
            let mut pool = PoolState::from_topology(&topo);
            for (host, gib) in allocs {
                let _ = pool.add_capacity(HostId(host), Bytes::from_gib(gib));
            }
            for h in 0..4u16 {
                let host = HostId(h);
                prop_assert_eq!(
                    Bytes::from_gib(pool.slices_of(host).len() as u64),
                    pool.capacity_of(host)
                );
            }
        }
    }
}
