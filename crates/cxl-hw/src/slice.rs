//! Memory slices: the 1 GiB granularity at which pool capacity moves (the
//! paper's "1 GB" slices, realized as binary GiB in this reproduction).
//!
//! The Pond EMC assigns memory to hosts in 1 GB-aligned slices. Each slice is
//! owned by at most one host at a time; the EMC records the owner in a
//! permission table and rejects accesses from any other host (§4.1).

use crate::units::{Bytes, HostId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a 1 GiB slice within a single EMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SliceId(pub u64);

impl SliceId {
    /// Returns the raw slice index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The byte offset of this slice within the EMC's address range.
    pub const fn byte_offset(self) -> Bytes {
        Bytes::new(self.0 * (1 << 30))
    }
}

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Ownership state of a single slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SliceState {
    /// The slice is not assigned to any host (offline from every host's view).
    #[default]
    Unassigned,
    /// The slice is assigned to (and online at) the given host.
    Assigned(HostId),
    /// The slice is being released: the owning host is offlining it but the
    /// EMC has not yet cleared the permission entry. Offlining takes
    /// 10–100 ms/GB (§4.2), so this transient state is visible to the pool
    /// manager.
    Releasing(HostId),
}

impl SliceState {
    /// The host that currently holds the slice, if any.
    ///
    /// A slice in the [`SliceState::Releasing`] state still belongs to the
    /// releasing host until the EMC clears the entry.
    pub fn owner(self) -> Option<HostId> {
        match self {
            SliceState::Unassigned => None,
            SliceState::Assigned(h) | SliceState::Releasing(h) => Some(h),
        }
    }

    /// True when the slice can be handed to a new host right now.
    pub fn is_free(self) -> bool {
        matches!(self, SliceState::Unassigned)
    }
}

/// The EMC permission table: one ownership entry per 1 GiB slice.
///
/// The paper notes that tracking 1024 slices (1 TB) and 64 hosts requires
/// 768 B of EMC state (6 bits per slice plus a valid bit, rounded to bytes);
/// [`PermissionTable::state_bytes`] reproduces that arithmetic.
///
/// Occupancy queries are cheap: `assigned_count`/`free_count` are O(1) from
/// an incremental counter, and `first_free` walks a hierarchical free bitmap
/// (64-ary, so three levels cover 262,144 slices) instead of scanning the
/// entries. The fleet replay issues these queries on every VM arrival and
/// release completion, so scanning the whole table each time made slice
/// traffic O(slices) per GiB moved — quadratic over a replay.
///
/// ```
/// use cxl_hw::slice::PermissionTable;
/// let table = PermissionTable::new(1024, 64);
/// assert_eq!(table.state_bytes(), 768);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PermissionTable {
    entries: Vec<SliceState>,
    max_hosts: u16,
    /// Number of non-free entries; kept in sync by [`PermissionTable::set`].
    assigned: u64,
    /// Free-slice index: bit `i` of `free.levels[0]` is set iff entry `i` is
    /// free, with each higher level summarizing 64 words of the one below.
    free: FreeBitmap,
    /// Per-host owned-slice counts (assigned + releasing), kept in sync by
    /// [`PermissionTable::set`]. At most `max_hosts` entries ever exist and
    /// in practice at most one per CXL port, so linear search beats a map.
    /// Entries are removed when a host's count reaches zero.
    owners: Vec<(HostId, u64)>,
}

/// A 64-ary hierarchical bitmap over slice indices: level 0 holds one bit
/// per slice (1 = free), and bit `w` of a word at level `k + 1` is set iff
/// word `w` at level `k` is non-zero. `first_set` descends from the top via
/// `trailing_zeros`, so finding the lowest free slice is O(levels) — exact
/// lowest-index-first order, never a scan. A lowest-free *cursor* is not
/// enough here: each time a low slice frees and is re-taken, a cursor has to
/// re-scan forward across the whole occupied run, which made allocation
/// O(slices) again on large fragmented pools.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct FreeBitmap {
    /// `levels[0]` is the bit-per-slice layer; the last level is one word.
    levels: Vec<Vec<u64>>,
}

impl FreeBitmap {
    /// Creates a bitmap of `len` bits, all set (every slice starts free).
    fn all_free(len: usize) -> Self {
        let mut levels = Vec::new();
        let mut bits = len;
        while bits > 0 {
            let words = bits.div_ceil(64);
            let mut level = vec![u64::MAX; words];
            // Clear the bits beyond `bits` so a set bit always maps to a
            // real slice (or a real word, on summary levels).
            if bits % 64 != 0 {
                level[words - 1] = (1u64 << (bits % 64)) - 1;
            }
            levels.push(level);
            if words == 1 {
                break;
            }
            bits = words;
        }
        FreeBitmap { levels }
    }

    fn set(&mut self, index: usize) {
        let mut i = index;
        for level in &mut self.levels {
            let was = level[i / 64];
            level[i / 64] = was | (1u64 << (i % 64));
            if was != 0 {
                // The summary bit above was already set.
                break;
            }
            i /= 64;
        }
    }

    fn clear(&mut self, index: usize) {
        let mut i = index;
        for level in &mut self.levels {
            level[i / 64] &= !(1u64 << (i % 64));
            if level[i / 64] != 0 {
                // The word still has bits, so the summary above stays set.
                break;
            }
            i /= 64;
        }
    }

    /// Lowest set bit, if any: descend from the single top-level word.
    fn first_set(&self) -> Option<usize> {
        let top = *self.levels.last()?.first()?;
        if top == 0 {
            return None;
        }
        let mut word = 0usize;
        for level in self.levels.iter().rev() {
            word = word * 64 + level[word].trailing_zeros() as usize;
        }
        Some(word)
    }
}

/// Equality is over the logical table (entries and host width); the derived
/// occupancy fields are excluded so tables that reached the same state via
/// different histories still compare equal.
impl PartialEq for PermissionTable {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries && self.max_hosts == other.max_hosts
    }
}

impl PermissionTable {
    /// Creates a table for `slices` slices shared by up to `max_hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `max_hosts` is zero.
    pub fn new(slices: u64, max_hosts: u16) -> Self {
        assert!(max_hosts > 0, "a pool must allow at least one host");
        PermissionTable {
            entries: vec![SliceState::Unassigned; slices as usize],
            max_hosts,
            assigned: 0,
            free: FreeBitmap::all_free(slices as usize),
            owners: Vec::new(),
        }
    }

    /// Number of slices tracked by the table.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// True when the table tracks no slices.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of hosts the table can encode.
    pub fn max_hosts(&self) -> u16 {
        self.max_hosts
    }

    /// Returns the state of a slice, or `None` if the index is out of range.
    pub fn get(&self, slice: SliceId) -> Option<SliceState> {
        self.entries.get(slice.index()).copied()
    }

    /// Sets the state of a slice. Returns the previous state.
    ///
    /// Callers are expected to have validated the transition; the table
    /// itself only stores state. Returns `None` if the index is out of range.
    pub(crate) fn set(&mut self, slice: SliceId, state: SliceState) -> Option<SliceState> {
        let index = slice.index();
        let entry = self.entries.get_mut(index)?;
        let previous = std::mem::replace(entry, state);
        let (old_owner, new_owner) = (previous.owner(), state.owner());
        if old_owner != new_owner {
            if let Some(host) = old_owner {
                self.decrement_owner(host);
            }
            if let Some(host) = new_owner {
                self.increment_owner(host);
            }
        }
        match (previous.is_free(), state.is_free()) {
            (true, false) => {
                self.assigned += 1;
                self.free.clear(index);
            }
            (false, true) => {
                self.assigned -= 1;
                self.free.set(index);
            }
            // Free-to-free and occupied-to-occupied transitions (for example
            // `Assigned` -> `Releasing`) leave the occupancy unchanged.
            _ => {}
        }
        Some(previous)
    }

    /// Iterates over `(slice, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SliceId, SliceState)> + '_ {
        self.entries.iter().enumerate().map(|(i, s)| (SliceId(i as u64), *s))
    }

    /// Number of slices currently assigned (including ones mid-release). O(1).
    pub fn assigned_count(&self) -> u64 {
        self.assigned
    }

    /// Number of slices free for assignment. O(1).
    pub fn free_count(&self) -> u64 {
        self.len() - self.assigned
    }

    fn increment_owner(&mut self, host: HostId) {
        match self.owners.iter_mut().find(|(h, _)| *h == host) {
            Some((_, count)) => *count += 1,
            None => self.owners.push((host, 1)),
        }
    }

    fn decrement_owner(&mut self, host: HostId) {
        let pos = self
            .owners
            .iter()
            .position(|(h, _)| *h == host)
            .expect("a slice's owner has an owner-count entry");
        self.owners[pos].1 -= 1;
        if self.owners[pos].1 == 0 {
            self.owners.swap_remove(pos);
        }
    }

    /// Slices owned by a given host (assigned or releasing).
    pub fn owned_by(&self, host: HostId) -> Vec<SliceId> {
        if self.owned_count(host) == 0 {
            return Vec::new();
        }
        self.iter().filter(|(_, s)| s.owner() == Some(host)).map(|(id, _)| id).collect()
    }

    /// Number of slices owned by a given host (assigned or releasing).
    /// O(concurrent owners), which the EMC's port count bounds — the replay
    /// asks this on every release completion (port auto-detach) so a full
    /// table scan here was O(slices) per departure.
    pub fn owned_count(&self, host: HostId) -> u64 {
        self.owners.iter().find(|(h, _)| *h == host).map_or(0, |(_, count)| *count)
    }

    /// First free slice, if any. The EMC hands out the lowest-index free
    /// slice which keeps assignments compact and offlining ranges contiguous.
    /// O(levels) in the free bitmap — effectively constant.
    pub fn first_free(&self) -> Option<SliceId> {
        self.free.first_set().map(|i| SliceId(i as u64))
    }

    /// Checks whether `requester` is allowed to access `slice`.
    ///
    /// Mirrors the EMC's per-access ownership check: the request succeeds only
    /// when the requester matches the slice owner.
    pub fn access_allowed(&self, slice: SliceId, requester: HostId) -> bool {
        matches!(self.get(slice), Some(state) if state.owner() == Some(requester))
    }

    /// The amount of SRAM state the EMC needs to hold this table, in bytes.
    ///
    /// Each slice needs `ceil(log2(max_hosts))` bits for the owner id; the
    /// total is rounded up to whole bytes. This reproduces the paper's
    /// "768 B for 1024 slices and 64 hosts" sizing.
    pub fn state_bytes(&self) -> u64 {
        let bits_per_slice = (self.max_hosts as f64).log2().ceil() as u64;
        (self.len() * bits_per_slice).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_state_size_example() {
        // 1024 slices (1TB) and 64 hosts (6 bits) require 768B of EMC state.
        let table = PermissionTable::new(1024, 64);
        assert_eq!(table.state_bytes(), 768);
    }

    #[test]
    fn state_size_scales_with_host_bits() {
        assert_eq!(PermissionTable::new(1024, 16).state_bytes(), 512); // 4 bits
        assert_eq!(PermissionTable::new(1024, 2).state_bytes(), 128); // 1 bit
    }

    #[test]
    fn new_table_is_fully_free() {
        let table = PermissionTable::new(16, 8);
        assert_eq!(table.len(), 16);
        assert_eq!(table.free_count(), 16);
        assert_eq!(table.assigned_count(), 0);
        assert_eq!(table.first_free(), Some(SliceId(0)));
        assert!(!table.is_empty());
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut table = PermissionTable::new(4, 8);
        let prev = table.set(SliceId(2), SliceState::Assigned(HostId(3)));
        assert_eq!(prev, Some(SliceState::Unassigned));
        assert_eq!(table.get(SliceId(2)), Some(SliceState::Assigned(HostId(3))));
        assert_eq!(table.assigned_count(), 1);
        assert_eq!(table.owned_by(HostId(3)), vec![SliceId(2)]);
    }

    #[test]
    fn out_of_range_returns_none() {
        let mut table = PermissionTable::new(4, 8);
        assert_eq!(table.get(SliceId(4)), None);
        assert_eq!(table.set(SliceId(9), SliceState::Unassigned), None);
    }

    #[test]
    fn access_check_matches_ownership() {
        let mut table = PermissionTable::new(4, 8);
        table.set(SliceId(1), SliceState::Assigned(HostId(0)));
        assert!(table.access_allowed(SliceId(1), HostId(0)));
        assert!(!table.access_allowed(SliceId(1), HostId(1)));
        assert!(!table.access_allowed(SliceId(0), HostId(0)));
        assert!(!table.access_allowed(SliceId(99), HostId(0)));
    }

    #[test]
    fn releasing_slice_still_owned() {
        let mut table = PermissionTable::new(4, 8);
        table.set(SliceId(0), SliceState::Releasing(HostId(5)));
        assert_eq!(table.get(SliceId(0)).unwrap().owner(), Some(HostId(5)));
        assert!(!table.get(SliceId(0)).unwrap().is_free());
        assert_eq!(table.first_free(), Some(SliceId(1)));
    }

    #[test]
    fn slice_byte_offset() {
        assert_eq!(SliceId(0).byte_offset(), Bytes::ZERO);
        assert_eq!(SliceId(3).byte_offset(), Bytes::from_gib(3));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        let _ = PermissionTable::new(4, 0);
    }

    proptest! {
        /// Invariant: assigned + free always equals the table size, whatever
        /// sequence of state updates is applied.
        #[test]
        fn counts_partition_table(ops in proptest::collection::vec((0u64..32, 0u16..8, 0u8..3), 0..64)) {
            let mut table = PermissionTable::new(32, 8);
            for (slice, host, kind) in ops {
                let state = match kind {
                    0 => SliceState::Unassigned,
                    1 => SliceState::Assigned(HostId(host)),
                    _ => SliceState::Releasing(HostId(host)),
                };
                table.set(SliceId(slice), state);
                prop_assert_eq!(table.assigned_count() + table.free_count(), 32);
            }
        }

        /// Invariant: a slice is owned by at most one host, so summing
        /// per-host ownership never exceeds the assigned count.
        #[test]
        fn ownership_is_exclusive(assignments in proptest::collection::vec((0u64..16, 0u16..4), 0..40)) {
            let mut table = PermissionTable::new(16, 4);
            for (slice, host) in assignments {
                table.set(SliceId(slice), SliceState::Assigned(HostId(host)));
            }
            let per_host: u64 = (0..4u16).map(|h| table.owned_by(HostId(h)).len() as u64).sum();
            prop_assert_eq!(per_host, table.assigned_count());
            let counted: u64 = (0..4u16).map(|h| table.owned_count(HostId(h))).sum();
            prop_assert_eq!(counted, table.assigned_count());
        }

        /// The free bitmap's `first_free` always equals a naive scan for the
        /// lowest free entry, across a multi-level table (130 slices spans
        /// three bitmap words) under arbitrary churn.
        #[test]
        fn first_free_matches_a_naive_scan(ops in proptest::collection::vec((0u64..130, 0u8..3), 0..200)) {
            let mut table = PermissionTable::new(130, 8);
            for (slice, kind) in ops {
                let state = match kind {
                    0 => SliceState::Unassigned,
                    1 => SliceState::Assigned(HostId(1)),
                    _ => SliceState::Releasing(HostId(1)),
                };
                table.set(SliceId(slice), state);
                let naive = table.iter().find(|(_, s)| s.is_free()).map(|(id, _)| id);
                prop_assert_eq!(table.first_free(), naive);
            }
        }
    }
}
