//! Strongly-typed units used throughout the hardware model.
//!
//! The paper's hardware layer is parameterized in 1 GiB slices (quoted as
//! "1 GB" in the paper; this reproduction uses binary GiB throughout), hosts,
//! sockets, and EMCs. Newtypes keep these from being mixed up
//! (C-NEWTYPE) and give each a small, focused API.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte quantity.
///
/// Pool capacity is always managed in whole gibibytes (1 GiB slices — the
/// paper's "1 GB"), but VM
/// requests and telemetry express memory in megabytes, so `Bytes` keeps full
/// resolution and offers lossless constructors for both.
///
/// ```
/// use cxl_hw::units::Bytes;
/// let cap = Bytes::from_gib(2);
/// assert_eq!(cap.as_mib(), 2048);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// One gibibyte, the slice granularity used by the Pond EMC.
    pub const GIB: Bytes = Bytes(1 << 30);

    /// Creates a quantity from raw bytes.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a quantity from mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib << 20)
    }

    /// Creates a quantity from gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib << 30)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Whole mebibytes (truncating).
    pub const fn as_mib(self) -> u64 {
        self.0 >> 20
    }

    /// Whole gibibytes (truncating).
    pub const fn as_gib(self) -> u64 {
        self.0 >> 30
    }

    /// Gibibytes as a floating-point value (no truncation).
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }

    /// Number of whole 1 GiB slices needed to hold this quantity (rounding up).
    ///
    /// ```
    /// use cxl_hw::units::Bytes;
    /// assert_eq!(Bytes::from_mib(1).slices_ceil(), 1);
    /// assert_eq!(Bytes::from_gib(3).slices_ceil(), 3);
    /// assert_eq!(Bytes::ZERO.slices_ceil(), 0);
    /// ```
    pub const fn slices_ceil(self) -> u64 {
        self.0.div_ceil(1 << 30)
    }

    /// Number of whole 1 GiB slices fully covered by this quantity (rounding down).
    pub const fn slices_floor(self) -> u64 {
        self.0 >> 30
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: Bytes) -> Option<Bytes> {
        self.0.checked_add(other.0).map(Bytes)
    }

    /// Returns true when the quantity is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the quantity by a non-negative ratio, rounding down.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or not finite.
    pub fn scaled(self, ratio: f64) -> Bytes {
        assert!(ratio.is_finite() && ratio >= 0.0, "ratio must be finite and non-negative");
        Bytes((self.0 as f64 * ratio) as u64)
    }
}

impl std::ops::Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl std::ops::SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= (1 << 30) && self.0 % (1 << 30) == 0 {
            write!(f, "{} GiB", self.as_gib())
        } else if self.0 >= (1 << 20) {
            write!(f, "{} MiB", self.as_mib())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// Identifier of a host (a hypervisor instance / CPU socket pair) attached to a pool.
///
/// The paper's EMC tracks up to 64 hosts with a 6-bit owner field per slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u16);

impl HostId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Identifier of a CPU socket within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(pub u16);

impl SocketId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "socket{}", self.0)
    }
}

/// Identifier of an External Memory Controller within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EmcId(pub u16);

impl EmcId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EmcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "emc{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_round_trip() {
        assert_eq!(Bytes::from_gib(4).as_gib(), 4);
        assert_eq!(Bytes::from_mib(512).as_mib(), 512);
        assert_eq!(Bytes::new(123).as_u64(), 123);
        assert_eq!(Bytes::GIB, Bytes::from_gib(1));
    }

    #[test]
    fn slices_ceil_rounds_up_partial_slices() {
        assert_eq!(Bytes::from_mib(1).slices_ceil(), 1);
        assert_eq!(Bytes::from_gib(1).slices_ceil(), 1);
        assert_eq!((Bytes::from_gib(1) + Bytes::from_mib(1)).slices_ceil(), 2);
        assert_eq!(Bytes::ZERO.slices_ceil(), 0);
    }

    #[test]
    fn slices_floor_truncates() {
        assert_eq!(Bytes::from_mib(1536).slices_floor(), 1);
        assert_eq!(Bytes::from_mib(512).slices_floor(), 0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Bytes::from_gib(2);
        let b = Bytes::from_gib(1);
        assert_eq!(a + b, Bytes::from_gib(3));
        assert_eq!(a - b, Bytes::from_gib(1));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        let total: Bytes = vec![a, b, b].into_iter().sum();
        assert_eq!(total, Bytes::from_gib(4));
    }

    #[test]
    fn scaled_applies_ratio() {
        assert_eq!(Bytes::from_gib(10).scaled(0.5), Bytes::from_gib(5));
        assert_eq!(Bytes::from_gib(10).scaled(0.0), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "ratio must be finite")]
    fn scaled_rejects_negative_ratio() {
        let _ = Bytes::from_gib(1).scaled(-1.0);
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(Bytes::from_gib(2).to_string(), "2 GiB");
        assert_eq!(Bytes::from_mib(3).to_string(), "3 MiB");
        assert_eq!(Bytes::new(100).to_string(), "100 B");
        // Non-integral GiB quantities fall back to MiB.
        assert_eq!((Bytes::from_gib(1) + Bytes::from_mib(1)).to_string(), "1025 MiB");
    }

    #[test]
    fn ids_display_and_index() {
        assert_eq!(HostId(3).to_string(), "host3");
        assert_eq!(SocketId(7).index(), 7);
        assert_eq!(EmcId(1).to_string(), "emc1");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Bytes::new(u64::MAX).checked_add(Bytes::new(1)).is_none());
        assert_eq!(Bytes::new(1).checked_add(Bytes::new(2)), Some(Bytes::new(3)));
    }
}
