//! The External Memory Controller (EMC) — Pond's multi-headed CXL device.
//!
//! An EMC exposes its whole DDR5 capacity on every CXL port (one port per
//! attached host) and enforces slice ownership on every access (§4.1). In
//! CXL 3.0 terms it is a multi-headed device (MHD).

use crate::error::CxlError;
use crate::slice::{PermissionTable, SliceId, SliceState};
use crate::units::{Bytes, EmcId, HostId};
use serde::{Deserialize, Serialize};

/// Static configuration of an EMC ASIC.
///
/// The defaults mirror the 16-socket Pond design point: 128 PCIe 5.0 lanes
/// (16 ×8 CXL ports) and 12 DDR5 channels, roughly the IO budget of AMD
/// Genoa's IO die (Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmcConfig {
    /// Number of ×8 CXL ports (one per directly-attached host).
    pub ports: u16,
    /// Number of DDR5 channels behind the controller.
    pub ddr5_channels: u16,
    /// Total DRAM capacity behind this EMC.
    pub capacity: Bytes,
    /// Maximum number of hosts the permission table can encode.
    pub max_hosts: u16,
}

impl EmcConfig {
    /// Configuration for a 16-socket Pond EMC (Figure 6, middle).
    pub fn pond_16_socket(capacity: Bytes) -> Self {
        EmcConfig { ports: 16, ddr5_channels: 12, capacity, max_hosts: 64 }
    }

    /// Configuration for an 8-socket Pond EMC (Figure 6, left): half the IO
    /// budget — 64 PCIe 5.0 lanes and 6 DDR5 channels.
    pub fn pond_8_socket(capacity: Bytes) -> Self {
        EmcConfig { ports: 8, ddr5_channels: 6, capacity, max_hosts: 64 }
    }

    /// Configuration for the EMCs used behind switches in 32/64-socket pools
    /// (Figure 6, right): 4 EMC-side ×8 links, 12 DDR5 channels.
    pub fn pond_switched(capacity: Bytes) -> Self {
        EmcConfig { ports: 4, ddr5_channels: 12, capacity, max_hosts: 64 }
    }

    /// Number of PCIe 5.0 lanes consumed by the CXL ports (8 lanes per port).
    pub fn pcie_lanes(&self) -> u16 {
        self.ports * 8
    }
}

impl Default for EmcConfig {
    fn default() -> Self {
        EmcConfig::pond_16_socket(Bytes::from_gib(1024))
    }
}

/// Result of an access-permission check performed by the EMC datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The requester owns the slice; the access proceeds.
    Granted,
    /// The requester does not own the slice; the access raises a fatal
    /// memory error on the requesting host (§4.1).
    FatalMemoryError,
}

/// A single External Memory Controller with its permission table.
///
/// # Example
///
/// ```
/// use cxl_hw::emc::{Emc, EmcConfig};
/// use cxl_hw::units::{Bytes, EmcId, HostId};
///
/// let mut emc = Emc::new(EmcId(0), EmcConfig::pond_8_socket(Bytes::from_gib(8)));
/// let slices = emc.assign_slices(HostId(1), 2)?;
/// assert_eq!(slices.len(), 2);
/// assert_eq!(emc.assigned_capacity(), Bytes::from_gib(2));
/// # Ok::<(), cxl_hw::CxlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Emc {
    id: EmcId,
    config: EmcConfig,
    table: PermissionTable,
    attached_hosts: Vec<HostId>,
    failed: bool,
}

impl Emc {
    /// Creates an EMC with all slices unassigned.
    pub fn new(id: EmcId, config: EmcConfig) -> Self {
        let slices = config.capacity.slices_floor();
        let max_hosts = config.max_hosts;
        Emc {
            id,
            config,
            table: PermissionTable::new(slices, max_hosts),
            attached_hosts: Vec::new(),
            failed: false,
        }
    }

    /// The EMC's identifier.
    pub fn id(&self) -> EmcId {
        self.id
    }

    /// The EMC's static configuration.
    pub fn config(&self) -> &EmcConfig {
        &self.config
    }

    /// Total capacity behind this EMC.
    pub fn capacity(&self) -> Bytes {
        Bytes::from_gib(self.table.len())
    }

    /// Capacity currently assigned to hosts.
    pub fn assigned_capacity(&self) -> Bytes {
        Bytes::from_gib(self.table.assigned_count())
    }

    /// Capacity not assigned to any host.
    pub fn free_capacity(&self) -> Bytes {
        Bytes::from_gib(self.table.free_count())
    }

    /// Read access to the permission table.
    pub fn permission_table(&self) -> &PermissionTable {
        &self.table
    }

    /// Hosts that have been attached (their CXL port trained) to this EMC.
    pub fn attached_hosts(&self) -> &[HostId] {
        &self.attached_hosts
    }

    /// Whether the EMC has been marked failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Marks the EMC as failed. All subsequent operations return
    /// [`CxlError::ComponentFailed`]; accesses from hosts surface as fatal
    /// memory errors on the VMs using this EMC (see [`crate::failure`]).
    pub fn mark_failed(&mut self) {
        self.failed = true;
    }

    /// Fails the EMC and tears down its state in one step: marks it failed,
    /// clears every live permission-table entry — assigned *and* mid-release
    /// (an in-flight offlining cannot complete on a dead device) — and
    /// releases every CXL port. Returns the `(host, slice)` ownerships that
    /// were lost, in host-attach then slice order, so the pool layer can map
    /// the blast radius back to VMs.
    ///
    /// Idempotent: failing an already-failed EMC loses nothing.
    pub fn fail(&mut self) -> Vec<(HostId, SliceId)> {
        self.failed = true;
        let mut lost = Vec::new();
        for host in std::mem::take(&mut self.attached_hosts) {
            for slice in self.table.owned_by(host) {
                self.table.set(slice, SliceState::Unassigned);
                lost.push((host, slice));
            }
        }
        lost
    }

    /// Repairs (replaces) a failed EMC: the failed flag clears and the
    /// device rejoins service empty — [`Emc::fail`] already tore every
    /// permission-table entry down to `Unassigned` and released every port,
    /// so a repaired EMC comes back with its full capacity free and no
    /// attached hosts, exactly like a replacement device racked into the
    /// same pool slot (§4.2).
    ///
    /// Returns whether the EMC was actually failed; repairing a healthy
    /// device is a no-op.
    pub fn repair(&mut self) -> bool {
        let was_failed = self.failed;
        self.failed = false;
        was_failed
    }

    /// Whether `host` could be attached right now: it already holds a port,
    /// or a port is free. Failed EMCs accept nobody.
    pub fn can_attach(&self, host: HostId) -> bool {
        !self.failed
            && (self.attached_hosts.contains(&host)
                || self.attached_hosts.len() < self.config.ports as usize)
    }

    /// Number of CXL ports not currently held by a host.
    pub fn free_ports(&self) -> u16 {
        self.config.ports.saturating_sub(self.attached_hosts.len() as u16)
    }

    /// Attaches a host to one of the EMC's CXL ports.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::ComponentFailed`] if the EMC has failed, or
    /// [`CxlError::UnknownHost`] if all ports are already taken (the host
    /// cannot be attached).
    pub fn attach_host(&mut self, host: HostId) -> Result<(), CxlError> {
        self.ensure_alive()?;
        if self.attached_hosts.contains(&host) {
            return Ok(());
        }
        if self.attached_hosts.len() >= self.config.ports as usize {
            return Err(CxlError::UnknownHost { host });
        }
        self.attached_hosts.push(host);
        Ok(())
    }

    /// Detaches a host from its CXL port, freeing the port for another host
    /// (the port-lifecycle half of §4.2: a pool is not limited to its first
    /// `ports` hosts forever, only to `ports` *concurrent* slice owners).
    ///
    /// Returns whether the host actually held a port.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::PortInUse`] when the host still owns slices on
    /// this EMC (assigned or mid-release) — the permission table must be
    /// clear of the host before its port can be released.
    pub fn detach_host(&mut self, host: HostId) -> Result<bool, CxlError> {
        let owned = self.table.owned_count(host);
        if owned > 0 {
            return Err(CxlError::PortInUse { host, slices: owned });
        }
        let before = self.attached_hosts.len();
        self.attached_hosts.retain(|&h| h != host);
        Ok(self.attached_hosts.len() < before)
    }

    fn ensure_alive(&self) -> Result<(), CxlError> {
        if self.failed {
            Err(CxlError::ComponentFailed { component: format!("{}", self.id) })
        } else {
            Ok(())
        }
    }

    fn ensure_attached(&self, host: HostId) -> Result<(), CxlError> {
        if self.attached_hosts.contains(&host) {
            Ok(())
        } else {
            Err(CxlError::UnknownHost { host })
        }
    }

    /// Assigns `count` free slices to `host`, returning the slice ids.
    ///
    /// Slices are handed out lowest-index-first to keep each host's range
    /// compact (which keeps later offlining contiguous).
    ///
    /// # Errors
    ///
    /// * [`CxlError::ComponentFailed`] if the EMC has failed.
    /// * [`CxlError::UnknownHost`] if the host is not attached to a port.
    /// * [`CxlError::InsufficientPoolCapacity`] if fewer than `count` slices are free.
    pub fn assign_slices(&mut self, host: HostId, count: u64) -> Result<Vec<SliceId>, CxlError> {
        self.ensure_alive()?;
        self.ensure_attached(host).or_else(|_| {
            // Auto-attach if a port is available: the pool manager attaches
            // hosts lazily on first assignment.
            self.attach_host(host)
        })?;
        if self.table.free_count() < count {
            return Err(CxlError::InsufficientPoolCapacity {
                requested: Bytes::from_gib(count),
                available: self.free_capacity(),
            });
        }
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let slice = self.table.first_free().expect("free_count was checked above");
            self.table.set(slice, SliceState::Assigned(host));
            out.push(slice);
        }
        Ok(out)
    }

    /// Assigns one specific slice to a host.
    ///
    /// # Errors
    ///
    /// * [`CxlError::SliceOutOfRange`] if the slice does not exist.
    /// * [`CxlError::SliceAlreadyAssigned`] if the slice is owned by another host.
    pub fn assign_slice(&mut self, host: HostId, slice: SliceId) -> Result<(), CxlError> {
        self.ensure_alive()?;
        self.ensure_attached(host).or_else(|_| self.attach_host(host))?;
        match self.table.get(slice) {
            None => Err(CxlError::SliceOutOfRange { slice, slices: self.table.len() }),
            Some(state) => match state.owner() {
                Some(owner) if owner != host => {
                    Err(CxlError::SliceAlreadyAssigned { slice, owner })
                }
                Some(_) => Ok(()), // idempotent re-assignment to the same host
                None => {
                    self.table.set(slice, SliceState::Assigned(host));
                    Ok(())
                }
            },
        }
    }

    /// Begins releasing a slice: the host offlines the range while the EMC
    /// still attributes the slice to it.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::SliceNotOwned`] when the host does not own the slice.
    pub fn begin_release(&mut self, host: HostId, slice: SliceId) -> Result<(), CxlError> {
        self.ensure_alive()?;
        match self.table.get(slice) {
            None => Err(CxlError::SliceOutOfRange { slice, slices: self.table.len() }),
            Some(state) if state.owner() == Some(host) => {
                self.table.set(slice, SliceState::Releasing(host));
                Ok(())
            }
            Some(_) => Err(CxlError::SliceNotOwned { slice, host }),
        }
    }

    /// Completes a release: clears the permission-table entry, making the
    /// slice available for reassignment.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::SliceNotOwned`] when the host does not own the slice.
    pub fn complete_release(&mut self, host: HostId, slice: SliceId) -> Result<(), CxlError> {
        self.ensure_alive()?;
        match self.table.get(slice) {
            None => Err(CxlError::SliceOutOfRange { slice, slices: self.table.len() }),
            Some(state) if state.owner() == Some(host) => {
                self.table.set(slice, SliceState::Unassigned);
                Ok(())
            }
            Some(_) => Err(CxlError::SliceNotOwned { slice, host }),
        }
    }

    /// Releases every slice owned by a host in one step (used on host failure,
    /// where the pool reclaims the dead host's capacity).
    pub fn release_all(&mut self, host: HostId) -> Vec<SliceId> {
        let owned = self.table.owned_by(host);
        for slice in &owned {
            self.table.set(*slice, SliceState::Unassigned);
        }
        owned
    }

    /// Performs the per-access permission check the EMC datapath applies to
    /// every request (§4.1). Disallowed accesses are fatal memory errors.
    pub fn check_access(&self, requester: HostId, slice: SliceId) -> AccessOutcome {
        if self.failed {
            return AccessOutcome::FatalMemoryError;
        }
        if self.table.access_allowed(slice, requester) {
            AccessOutcome::Granted
        } else {
            AccessOutcome::FatalMemoryError
        }
    }

    /// Capacity currently assigned to one host.
    pub fn capacity_of(&self, host: HostId) -> Bytes {
        Bytes::from_gib(self.table.owned_count(host))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_emc() -> Emc {
        Emc::new(EmcId(0), EmcConfig::pond_8_socket(Bytes::from_gib(8)))
    }

    #[test]
    fn config_lane_budgets_match_figure6() {
        let c16 = EmcConfig::pond_16_socket(Bytes::from_gib(1024));
        assert_eq!(c16.pcie_lanes(), 128);
        assert_eq!(c16.ddr5_channels, 12);
        let c8 = EmcConfig::pond_8_socket(Bytes::from_gib(512));
        assert_eq!(c8.pcie_lanes(), 64);
        assert_eq!(c8.ddr5_channels, 6);
    }

    #[test]
    fn assign_and_release_round_trip() {
        let mut emc = small_emc();
        let slices = emc.assign_slices(HostId(0), 3).unwrap();
        assert_eq!(slices, vec![SliceId(0), SliceId(1), SliceId(2)]);
        assert_eq!(emc.assigned_capacity(), Bytes::from_gib(3));
        assert_eq!(emc.capacity_of(HostId(0)), Bytes::from_gib(3));

        emc.begin_release(HostId(0), SliceId(1)).unwrap();
        // Still attributed to the host while releasing.
        assert_eq!(emc.capacity_of(HostId(0)), Bytes::from_gib(3));
        emc.complete_release(HostId(0), SliceId(1)).unwrap();
        assert_eq!(emc.capacity_of(HostId(0)), Bytes::from_gib(2));
        assert_eq!(emc.free_capacity(), Bytes::from_gib(6));
    }

    #[test]
    fn assignment_exhausts_capacity() {
        let mut emc = small_emc();
        emc.assign_slices(HostId(0), 8).unwrap();
        let err = emc.assign_slices(HostId(1), 1).unwrap_err();
        assert!(matches!(err, CxlError::InsufficientPoolCapacity { .. }));
    }

    #[test]
    fn cannot_steal_assigned_slice() {
        let mut emc = small_emc();
        emc.assign_slice(HostId(0), SliceId(4)).unwrap();
        let err = emc.assign_slice(HostId(1), SliceId(4)).unwrap_err();
        assert_eq!(err, CxlError::SliceAlreadyAssigned { slice: SliceId(4), owner: HostId(0) });
        // Re-assignment to the same host is idempotent.
        emc.assign_slice(HostId(0), SliceId(4)).unwrap();
    }

    #[test]
    fn access_check_enforces_ownership() {
        let mut emc = small_emc();
        emc.assign_slice(HostId(2), SliceId(0)).unwrap();
        assert_eq!(emc.check_access(HostId(2), SliceId(0)), AccessOutcome::Granted);
        assert_eq!(emc.check_access(HostId(3), SliceId(0)), AccessOutcome::FatalMemoryError);
        assert_eq!(emc.check_access(HostId(2), SliceId(1)), AccessOutcome::FatalMemoryError);
    }

    #[test]
    fn release_requires_ownership() {
        let mut emc = small_emc();
        emc.assign_slice(HostId(0), SliceId(0)).unwrap();
        assert!(matches!(
            emc.begin_release(HostId(1), SliceId(0)),
            Err(CxlError::SliceNotOwned { .. })
        ));
        assert!(matches!(
            emc.complete_release(HostId(1), SliceId(0)),
            Err(CxlError::SliceNotOwned { .. })
        ));
    }

    #[test]
    fn out_of_range_slice_is_reported() {
        let mut emc = small_emc();
        assert!(matches!(
            emc.assign_slice(HostId(0), SliceId(100)),
            Err(CxlError::SliceOutOfRange { .. })
        ));
    }

    #[test]
    fn failed_emc_rejects_everything() {
        let mut emc = small_emc();
        emc.assign_slice(HostId(0), SliceId(0)).unwrap();
        emc.mark_failed();
        assert!(emc.is_failed());
        assert!(matches!(emc.assign_slices(HostId(0), 1), Err(CxlError::ComponentFailed { .. })));
        assert_eq!(emc.check_access(HostId(0), SliceId(0)), AccessOutcome::FatalMemoryError);
    }

    #[test]
    fn fail_tears_down_ownership_and_ports() {
        let mut emc = small_emc();
        emc.assign_slices(HostId(0), 2).unwrap();
        let in_flight = emc.assign_slices(HostId(1), 1).unwrap();
        // Host 1's slice is mid-release when the EMC dies: the in-flight
        // offlining is lost too, not leaked in the Releasing state.
        emc.begin_release(HostId(1), in_flight[0]).unwrap();
        let lost = emc.fail();
        assert_eq!(lost.len(), 3);
        assert!(lost.contains(&(HostId(1), in_flight[0])));
        assert!(emc.is_failed());
        assert_eq!(emc.assigned_capacity(), Bytes::ZERO);
        assert!(emc.attached_hosts().is_empty(), "dead ports are released");
        assert!(!emc.can_attach(HostId(2)), "a failed EMC accepts nobody");
        // Idempotent: a second failure loses nothing.
        assert!(emc.fail().is_empty());
    }

    #[test]
    fn repair_returns_a_failed_emc_to_service_empty() {
        let mut emc = small_emc();
        emc.assign_slices(HostId(0), 3).unwrap();
        emc.fail();
        assert!(emc.is_failed());

        assert!(emc.repair(), "repairing a failed EMC reports the transition");
        assert!(!emc.is_failed());
        // The replacement device is empty: full capacity free, no ports held.
        assert_eq!(emc.free_capacity(), emc.capacity());
        assert_eq!(emc.assigned_capacity(), Bytes::ZERO);
        assert!(emc.attached_hosts().is_empty());
        // It accepts hosts and assignments again.
        assert!(emc.can_attach(HostId(5)));
        assert_eq!(emc.assign_slices(HostId(5), 2).unwrap().len(), 2);
        // Repairing a healthy device is a no-op.
        assert!(!emc.repair());
        assert_eq!(emc.capacity_of(HostId(5)), Bytes::from_gib(2));
    }

    #[test]
    fn release_all_reclaims_host_capacity() {
        let mut emc = small_emc();
        emc.assign_slices(HostId(0), 3).unwrap();
        emc.assign_slices(HostId(1), 2).unwrap();
        let reclaimed = emc.release_all(HostId(0));
        assert_eq!(reclaimed.len(), 3);
        assert_eq!(emc.capacity_of(HostId(0)), Bytes::ZERO);
        assert_eq!(emc.capacity_of(HostId(1)), Bytes::from_gib(2));
    }

    #[test]
    fn port_limit_bounds_attached_hosts() {
        let mut emc = Emc::new(
            EmcId(0),
            EmcConfig { ports: 2, ddr5_channels: 2, capacity: Bytes::from_gib(4), max_hosts: 64 },
        );
        emc.attach_host(HostId(0)).unwrap();
        emc.attach_host(HostId(1)).unwrap();
        assert!(emc.attach_host(HostId(2)).is_err());
        // Re-attaching an existing host is fine.
        emc.attach_host(HostId(1)).unwrap();
        assert_eq!(emc.attached_hosts().len(), 2);
    }

    #[test]
    fn detached_ports_can_be_reused_by_other_hosts() {
        let mut emc = Emc::new(
            EmcId(0),
            EmcConfig { ports: 2, ddr5_channels: 2, capacity: Bytes::from_gib(8), max_hosts: 64 },
        );
        emc.assign_slices(HostId(0), 1).unwrap();
        emc.assign_slices(HostId(1), 1).unwrap();
        assert!(!emc.can_attach(HostId(2)));
        assert_eq!(emc.free_ports(), 0);
        // Host 0 still owns its slice: the port cannot be detached yet.
        assert!(matches!(
            emc.detach_host(HostId(0)),
            Err(CxlError::PortInUse { host: HostId(0), slices: 1 })
        ));
        // After the full release cycle, the port detaches and host 2 fits.
        let owned = emc.permission_table().owned_by(HostId(0));
        emc.begin_release(HostId(0), owned[0]).unwrap();
        assert!(emc.detach_host(HostId(0)).is_err(), "releasing slices still pin the port");
        emc.complete_release(HostId(0), owned[0]).unwrap();
        assert!(emc.detach_host(HostId(0)).unwrap());
        assert_eq!(emc.free_ports(), 1);
        assert!(emc.can_attach(HostId(2)));
        emc.assign_slices(HostId(2), 1).unwrap();
        // Detaching a host that never attached reports false, not an error.
        assert!(!emc.detach_host(HostId(7)).unwrap());
    }

    proptest! {
        /// Invariant: assigned + free capacity always equals total capacity.
        #[test]
        fn capacity_conservation(ops in proptest::collection::vec((0u16..4, 1u64..3), 0..32)) {
            let mut emc = Emc::new(EmcId(0), EmcConfig::pond_8_socket(Bytes::from_gib(16)));
            for (host, count) in ops {
                let _ = emc.assign_slices(HostId(host), count);
                prop_assert_eq!(
                    emc.assigned_capacity() + emc.free_capacity(),
                    emc.capacity()
                );
            }
        }

        /// Invariant: per-host capacities sum to the assigned capacity.
        #[test]
        fn per_host_capacity_sums(ops in proptest::collection::vec((0u16..4, 1u64..3, proptest::bool::ANY), 0..32)) {
            let mut emc = Emc::new(EmcId(0), EmcConfig::pond_8_socket(Bytes::from_gib(16)));
            for (host, count, release) in ops {
                if release {
                    let owned = emc.permission_table().owned_by(HostId(host));
                    if let Some(slice) = owned.first() {
                        let _ = emc.begin_release(HostId(host), *slice);
                        let _ = emc.complete_release(HostId(host), *slice);
                    }
                } else {
                    let _ = emc.assign_slices(HostId(host), count);
                }
                let total: u64 = (0..4u16).map(|h| emc.capacity_of(HostId(h)).as_gib()).sum();
                prop_assert_eq!(Bytes::from_gib(total), emc.assigned_capacity());
            }
        }
    }
}
