//! Error type for the hardware layer.

use crate::units::{Bytes, EmcId, HostId, SocketId};
use std::error::Error;
use std::fmt;

use crate::slice::SliceId;

/// Errors raised by the CXL hardware model.
///
/// Every fallible public function in this crate returns `Result<_, CxlError>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CxlError {
    /// A pool was requested with a socket count the EMC design does not support.
    UnsupportedPoolSize {
        /// The socket count that was requested.
        sockets: u16,
    },
    /// A slice index was outside the EMC's capacity.
    SliceOutOfRange {
        /// The offending slice.
        slice: SliceId,
        /// Number of slices the EMC actually has.
        slices: u64,
    },
    /// A slice was assigned while already owned by another host.
    SliceAlreadyAssigned {
        /// The slice in question.
        slice: SliceId,
        /// Its current owner.
        owner: HostId,
    },
    /// A slice release or access referenced a slice the host does not own.
    SliceNotOwned {
        /// The slice in question.
        slice: SliceId,
        /// The host that attempted the operation.
        host: HostId,
    },
    /// A memory access hit a slice owned by a different host.
    ///
    /// The paper specifies that such accesses surface as fatal memory errors
    /// on the requesting host (§4.1).
    AccessDenied {
        /// The slice that was accessed.
        slice: SliceId,
        /// The host that issued the access.
        requester: HostId,
        /// The owner recorded in the permission table, if any.
        owner: Option<HostId>,
    },
    /// The pool has no free capacity to satisfy an assignment request.
    InsufficientPoolCapacity {
        /// Bytes requested.
        requested: Bytes,
        /// Bytes currently unassigned across the pool.
        available: Bytes,
    },
    /// A host id is not attached to this pool/EMC.
    UnknownHost {
        /// The host in question.
        host: HostId,
    },
    /// An EMC id does not exist in this pool.
    UnknownEmc {
        /// The EMC in question.
        emc: EmcId,
    },
    /// A socket id does not exist in this pool topology.
    UnknownSocket {
        /// The socket in question.
        socket: SocketId,
    },
    /// The component has failed and cannot serve requests.
    ComponentFailed {
        /// Human-readable description of the failed component.
        component: String,
    },
    /// A host's EMC port cannot be detached while the host still owns slices.
    PortInUse {
        /// The host whose port was to be detached.
        host: HostId,
        /// Slices the host still owns on the EMC.
        slices: u64,
    },
    /// A pool-group topology was requested with an invalid shape.
    InvalidGroupTopology {
        /// Human-readable description of the problem.
        detail: String,
    },
}

impl fmt::Display for CxlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CxlError::UnsupportedPoolSize { sockets } => {
                write!(f, "unsupported pool size of {sockets} sockets")
            }
            CxlError::SliceOutOfRange { slice, slices } => {
                write!(f, "slice {slice} out of range for EMC with {slices} slices")
            }
            CxlError::SliceAlreadyAssigned { slice, owner } => {
                write!(f, "slice {slice} already assigned to {owner}")
            }
            CxlError::SliceNotOwned { slice, host } => {
                write!(f, "slice {slice} not owned by {host}")
            }
            CxlError::AccessDenied { slice, requester, owner } => match owner {
                Some(owner) => {
                    write!(f, "access to slice {slice} by {requester} denied, owned by {owner}")
                }
                None => {
                    write!(f, "access to slice {slice} by {requester} denied, slice is unassigned")
                }
            },
            CxlError::InsufficientPoolCapacity { requested, available } => {
                write!(
                    f,
                    "insufficient pool capacity: requested {requested}, available {available}"
                )
            }
            CxlError::UnknownHost { host } => write!(f, "unknown host {host}"),
            CxlError::UnknownEmc { emc } => write!(f, "unknown EMC {emc}"),
            CxlError::UnknownSocket { socket } => write!(f, "unknown socket {socket}"),
            CxlError::ComponentFailed { component } => {
                write!(f, "component has failed: {component}")
            }
            CxlError::PortInUse { host, slices } => {
                write!(f, "cannot detach {host}: it still owns {slices} slices")
            }
            CxlError::InvalidGroupTopology { detail } => {
                write!(f, "invalid pool-group topology: {detail}")
            }
        }
    }
}

impl Error for CxlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = CxlError::UnsupportedPoolSize { sockets: 7 };
        assert_eq!(err.to_string(), "unsupported pool size of 7 sockets");

        let err = CxlError::AccessDenied {
            slice: SliceId(4),
            requester: HostId(1),
            owner: Some(HostId(2)),
        };
        assert!(err.to_string().contains("slice 4"));
        assert!(err.to_string().contains("host1"));
        assert!(err.to_string().contains("host2"));

        let err = CxlError::AccessDenied { slice: SliceId(4), requester: HostId(1), owner: None };
        assert!(err.to_string().contains("unassigned"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CxlError>();
    }
}
