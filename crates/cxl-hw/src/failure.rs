//! Failure / blast-radius model (§4.2, "Failure management").
//!
//! The paper bounds failure impact as follows: an EMC failure affects only
//! the VMs with memory on that EMC; a host failure is isolated and its pool
//! memory is reclaimed; a Pool Manager failure prevents reassignment but does
//! not affect the datapath. This module computes the blast radius of each
//! failure kind given a mapping from VMs to the slices they use.

use crate::error::CxlError;
use crate::pool::{EmcFailureReport, PoolSlice, PoolState};
use crate::units::{EmcId, HostId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a VM as seen by the hardware layer (opaque).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmHandle(pub u64);

/// The kind of component that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// An External Memory Controller failed.
    Emc(EmcId),
    /// A host (CPU socket / hypervisor) failed.
    Host(HostId),
    /// The Pool Manager failed.
    PoolManager,
}

/// Result of a blast-radius analysis for one failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlastRadius {
    /// The failure analysed.
    pub failure: FailureKind,
    /// VMs whose memory is directly affected (they see fatal memory errors
    /// or lose their host).
    pub affected_vms: Vec<VmHandle>,
    /// VMs that keep running unaffected.
    pub unaffected_vms: Vec<VmHandle>,
    /// Whether new pool assignments are possible while the failure persists.
    pub pool_assignment_available: bool,
}

impl BlastRadius {
    /// Fraction of VMs affected by the failure.
    pub fn affected_fraction(&self) -> f64 {
        let total = self.affected_vms.len() + self.unaffected_vms.len();
        if total == 0 {
            0.0
        } else {
            self.affected_vms.len() as f64 / total as f64
        }
    }
}

/// Tracks which VM runs on which host and which pool slices it uses, so
/// failures can be mapped to affected VMs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VmPlacementMap {
    host_of: BTreeMap<VmHandle, HostId>,
    slices_of: BTreeMap<VmHandle, Vec<PoolSlice>>,
}

impl VmPlacementMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a VM placement.
    pub fn place(&mut self, vm: VmHandle, host: HostId, slices: Vec<PoolSlice>) {
        self.host_of.insert(vm, host);
        self.slices_of.insert(vm, slices);
    }

    /// Removes a VM (departure).
    pub fn remove(&mut self, vm: VmHandle) {
        self.host_of.remove(&vm);
        self.slices_of.remove(&vm);
    }

    /// Number of VMs tracked.
    pub fn len(&self) -> usize {
        self.host_of.len()
    }

    /// True when no VMs are tracked.
    pub fn is_empty(&self) -> bool {
        self.host_of.is_empty()
    }

    /// The host a VM runs on.
    pub fn host_of(&self, vm: VmHandle) -> Option<HostId> {
        self.host_of.get(&vm).copied()
    }

    /// The pool slices used by a VM.
    pub fn slices_of(&self, vm: VmHandle) -> &[PoolSlice] {
        self.slices_of.get(&vm).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All tracked VMs.
    pub fn vms(&self) -> impl Iterator<Item = VmHandle> + '_ {
        self.host_of.keys().copied()
    }

    /// Computes the blast radius of a failure.
    ///
    /// * EMC failure: VMs with at least one slice on that EMC are affected.
    /// * Host failure: VMs on that host are affected.
    /// * Pool Manager failure: no VM is affected, but new assignments stop.
    pub fn blast_radius(&self, failure: FailureKind) -> BlastRadius {
        let mut affected = Vec::new();
        let mut unaffected = Vec::new();
        for vm in self.vms() {
            let hit = match failure {
                FailureKind::Emc(emc) => self.slices_of(vm).iter().any(|s| s.emc == emc),
                FailureKind::Host(host) => self.host_of(vm) == Some(host),
                FailureKind::PoolManager => false,
            };
            if hit {
                affected.push(vm);
            } else {
                unaffected.push(vm);
            }
        }
        BlastRadius {
            failure,
            affected_vms: affected,
            unaffected_vms: unaffected,
            pool_assignment_available: !matches!(failure, FailureKind::PoolManager),
        }
    }

    /// Applies a host failure to the pool: reclaims the dead host's slices
    /// and removes its VMs from the map. Returns the removed VMs.
    pub fn fail_host(&mut self, pool: &mut PoolState, host: HostId) -> Vec<VmHandle> {
        pool.release_host(host);
        let dead: Vec<VmHandle> =
            self.host_of.iter().filter(|(_, h)| **h == host).map(|(vm, _)| *vm).collect();
        for vm in &dead {
            self.remove(*vm);
        }
        dead
    }

    /// Applies an EMC failure to the map alone: computes the blast radius
    /// *as of the failure instant* and strips the dead slices from every
    /// affected VM's placement record. The affected VMs stay in the map —
    /// they lost memory, not their host — so the control plane above decides
    /// whether each one is migrated or killed. Callers that own the pool
    /// state directly should use [`VmPlacementMap::fail_emc`]; callers whose
    /// pool sits behind a manager (which must also prune its own in-flight
    /// releases) tear the device down there and then strike the map.
    pub fn strike_emc(&mut self, emc: EmcId) -> BlastRadius {
        let radius = self.blast_radius(FailureKind::Emc(emc));
        for vm in &radius.affected_vms {
            if let Some(slices) = self.slices_of.get_mut(vm) {
                slices.retain(|s| s.emc != emc);
            }
        }
        radius
    }

    /// Applies an EMC failure to the pool and the map in one step: fails the
    /// device ([`PoolState::fail_emc`] tears down its slices and ports) and
    /// strikes the map ([`VmPlacementMap::strike_emc`]).
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnknownEmc`] when the EMC does not exist (the map
    /// is left untouched then).
    pub fn fail_emc(
        &mut self,
        pool: &mut PoolState,
        emc: EmcId,
    ) -> Result<(BlastRadius, EmcFailureReport), CxlError> {
        let report = pool.fail_emc(emc)?;
        Ok((self.strike_emc(emc), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::SliceId;
    use crate::topology::PoolTopology;
    use crate::units::Bytes;

    fn slice(emc: u16, idx: u64) -> PoolSlice {
        PoolSlice { emc: EmcId(emc), slice: SliceId(idx) }
    }

    fn sample_map() -> VmPlacementMap {
        let mut map = VmPlacementMap::new();
        // VM 0: host 0, memory on EMC 0.
        map.place(VmHandle(0), HostId(0), vec![slice(0, 0), slice(0, 1)]);
        // VM 1: host 0, no pool memory.
        map.place(VmHandle(1), HostId(0), vec![]);
        // VM 2: host 1, memory on EMC 1.
        map.place(VmHandle(2), HostId(1), vec![slice(1, 0)]);
        map
    }

    #[test]
    fn emc_failure_hits_only_vms_on_that_emc() {
        let map = sample_map();
        let radius = map.blast_radius(FailureKind::Emc(EmcId(0)));
        assert_eq!(radius.affected_vms, vec![VmHandle(0)]);
        assert_eq!(radius.unaffected_vms.len(), 2);
        assert!(radius.pool_assignment_available);
        assert!((radius.affected_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn host_failure_hits_all_vms_on_that_host() {
        let map = sample_map();
        let radius = map.blast_radius(FailureKind::Host(HostId(0)));
        assert_eq!(radius.affected_vms, vec![VmHandle(0), VmHandle(1)]);
        assert_eq!(radius.unaffected_vms, vec![VmHandle(2)]);
    }

    #[test]
    fn pool_manager_failure_affects_no_vm_but_blocks_assignment() {
        let map = sample_map();
        let radius = map.blast_radius(FailureKind::PoolManager);
        assert!(radius.affected_vms.is_empty());
        assert_eq!(radius.unaffected_vms.len(), 3);
        assert!(!radius.pool_assignment_available);
        assert_eq!(radius.affected_fraction(), 0.0);
    }

    #[test]
    fn fail_host_reclaims_pool_capacity_and_removes_vms() {
        let topo = PoolTopology::pond_with_capacity(8, Bytes::from_gib(8)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        let slices = pool.add_capacity(HostId(0), Bytes::from_gib(2)).unwrap();
        let mut map = VmPlacementMap::new();
        map.place(VmHandle(0), HostId(0), slices);
        map.place(VmHandle(1), HostId(1), vec![]);

        let dead = map.fail_host(&mut pool, HostId(0));
        assert_eq!(dead, vec![VmHandle(0)]);
        assert_eq!(map.len(), 1);
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::ZERO);
        assert_eq!(pool.free_capacity(), pool.total_capacity());
    }

    #[test]
    fn fail_emc_strips_dead_slices_but_keeps_the_vms() {
        // A 32-socket pool has 4 EMCs, so one can die while others live.
        let topo = PoolTopology::pond_with_capacity(32, Bytes::from_gib(16)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        let on_dead = pool.add_capacity(HostId(0), Bytes::from_gib(2)).unwrap();
        let dead_emc = on_dead[0].emc;
        let mut map = VmPlacementMap::new();
        map.place(VmHandle(0), HostId(0), on_dead.clone());
        map.place(VmHandle(1), HostId(1), vec![]);

        let (radius, report) = map.fail_emc(&mut pool, dead_emc).unwrap();
        assert_eq!(radius.affected_vms, vec![VmHandle(0)]);
        assert_eq!(radius.unaffected_vms, vec![VmHandle(1)]);
        assert_eq!(report.lost.len(), 2);
        assert_eq!(report.ports_lost, vec![HostId(0)]);
        // The affected VM stays placed but its dead slices are gone.
        assert_eq!(map.len(), 2);
        assert!(map.slices_of(VmHandle(0)).is_empty());
        // The dead capacity left the pool's live view.
        assert_eq!(pool.live_capacity(), Bytes::from_gib(12));
        assert_eq!(pool.capacity_of(HostId(0)), Bytes::ZERO);
        assert!(matches!(
            map.fail_emc(&mut pool, crate::units::EmcId(99)),
            Err(CxlError::UnknownEmc { .. })
        ));
    }

    #[test]
    fn fail_emc_tears_down_in_flight_releases() {
        // The port-lifecycle race: a slice is mid-offlining when its EMC
        // dies. The failure must clear the Releasing entry (no leaked port,
        // no slice stuck releasing forever) and report it as lost.
        let topo = PoolTopology::pond_with_capacity(8, Bytes::from_gib(8)).unwrap();
        let mut pool = PoolState::from_topology(&topo);
        let slices = pool.add_capacity(HostId(3), Bytes::from_gib(2)).unwrap();
        pool.begin_release(HostId(3), &slices[..1]).unwrap();
        let mut map = VmPlacementMap::new();
        map.place(VmHandle(7), HostId(3), slices.clone());

        let (radius, report) = map.fail_emc(&mut pool, slices[0].emc).unwrap();
        assert_eq!(radius.affected_vms, vec![VmHandle(7)]);
        assert_eq!(report.lost.len(), 2, "assigned and mid-release slices are both lost");
        assert_eq!(pool.assigned_capacity(), Bytes::ZERO);
        assert_eq!(pool.live_capacity(), Bytes::ZERO, "the only EMC is dead");
    }

    #[test]
    fn empty_map_has_zero_blast_radius() {
        let map = VmPlacementMap::new();
        assert!(map.is_empty());
        let radius = map.blast_radius(FailureKind::Emc(EmcId(0)));
        assert_eq!(radius.affected_fraction(), 0.0);
    }

    #[test]
    fn remove_forgets_a_vm() {
        let mut map = sample_map();
        map.remove(VmHandle(0));
        assert_eq!(map.len(), 2);
        assert!(map.host_of(VmHandle(0)).is_none());
        assert!(map.slices_of(VmHandle(0)).is_empty());
    }
}
