//! Host-managed Device Memory (HDM) decoder model.
//!
//! Each host programs an HDM decoder with the address range of every EMC it
//! can reach. Cache misses to addresses inside those ranges are routed onto
//! the CXL port instead of the local memory controller (Figure 1). The pool
//! range is initially mapped but "not enabled"; slices are onlined as the
//! Pool Manager assigns them (§4.2).

use crate::slice::SliceId;
use crate::units::{Bytes, EmcId};
use serde::{Deserialize, Serialize};

/// A single HDM decoder entry mapping an EMC's capacity into a host's
/// physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdmRange {
    /// The EMC backing this range.
    pub emc: EmcId,
    /// Base host physical address of the range.
    pub base: u64,
    /// Size of the range.
    pub size: Bytes,
}

impl HdmRange {
    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.size.as_u64()
    }

    /// Whether a host physical address falls inside this range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Translates a host physical address to `(EMC, slice, offset-in-slice)`.
    ///
    /// Returns `None` if the address is outside the range.
    pub fn translate(&self, addr: u64) -> Option<(EmcId, SliceId, u64)> {
        if !self.contains(addr) {
            return None;
        }
        let offset = addr - self.base;
        let slice = SliceId(offset >> 30);
        Some((self.emc, slice, offset & ((1 << 30) - 1)))
    }
}

/// The full HDM decoder of one host: local DRAM below, pool ranges above.
///
/// # Example
///
/// ```
/// use cxl_hw::hdm::HdmDecoder;
/// use cxl_hw::units::{Bytes, EmcId};
///
/// let mut decoder = HdmDecoder::new(Bytes::from_gib(4));
/// decoder.map_emc(EmcId(0), Bytes::from_gib(8));
/// // Addresses below 4 GiB are local, above are pool.
/// assert!(decoder.is_local(1 << 30));
/// assert!(!decoder.is_local(5 << 30));
/// let (emc, slice, _) = decoder.translate(5 << 30).unwrap();
/// assert_eq!(emc, EmcId(0));
/// assert_eq!(slice.0, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HdmDecoder {
    local_dram: Bytes,
    ranges: Vec<HdmRange>,
    next_base: u64,
}

impl HdmDecoder {
    /// Creates a decoder for a host with the given amount of local DRAM.
    /// Local DRAM occupies `[0, local_dram)` in the host address space.
    pub fn new(local_dram: Bytes) -> Self {
        HdmDecoder { local_dram, ranges: Vec::new(), next_base: local_dram.as_u64() }
    }

    /// Amount of local (NUMA-local) DRAM.
    pub fn local_dram(&self) -> Bytes {
        self.local_dram
    }

    /// Maps an EMC's full capacity after the ranges already present and
    /// returns the new range. The range starts offline; onlining individual
    /// slices is the Pool Manager's job.
    pub fn map_emc(&mut self, emc: EmcId, capacity: Bytes) -> HdmRange {
        let range = HdmRange { emc, base: self.next_base, size: capacity };
        self.next_base += capacity.as_u64();
        self.ranges.push(range);
        range
    }

    /// All mapped pool ranges.
    pub fn ranges(&self) -> &[HdmRange] {
        &self.ranges
    }

    /// Total pool capacity visible to the host (mapped, whether online or not).
    pub fn pool_capacity(&self) -> Bytes {
        self.ranges.iter().map(|r| r.size).sum()
    }

    /// Whether an address is served by local DRAM.
    pub fn is_local(&self, addr: u64) -> bool {
        addr < self.local_dram.as_u64()
    }

    /// Translates a pool address to `(EMC, slice, offset)`.
    ///
    /// Returns `None` for local addresses and addresses outside every range.
    pub fn translate(&self, addr: u64) -> Option<(EmcId, SliceId, u64)> {
        if self.is_local(addr) {
            return None;
        }
        self.ranges.iter().find_map(|r| r.translate(addr))
    }

    /// Host physical address of the first byte of a slice on a given EMC.
    pub fn slice_base(&self, emc: EmcId, slice: SliceId) -> Option<u64> {
        self.ranges
            .iter()
            .find(|r| r.emc == emc)
            .filter(|r| slice.byte_offset().as_u64() < r.size.as_u64())
            .map(|r| r.base + slice.byte_offset().as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn local_and_pool_addresses_split_cleanly() {
        let mut d = HdmDecoder::new(Bytes::from_gib(2));
        d.map_emc(EmcId(0), Bytes::from_gib(4));
        assert!(d.is_local(0));
        assert!(d.is_local((2 << 30) - 1));
        assert!(!d.is_local(2 << 30));
        assert_eq!(d.pool_capacity(), Bytes::from_gib(4));
        assert_eq!(d.local_dram(), Bytes::from_gib(2));
    }

    #[test]
    fn translate_maps_to_correct_slice() {
        let mut d = HdmDecoder::new(Bytes::from_gib(2));
        d.map_emc(EmcId(0), Bytes::from_gib(4));
        // First pool byte -> slice 0 offset 0.
        assert_eq!(d.translate(2 << 30), Some((EmcId(0), SliceId(0), 0)));
        // 1 GiB + 5 bytes into the pool -> slice 1 offset 5.
        assert_eq!(d.translate((3 << 30) + 5), Some((EmcId(0), SliceId(1), 5)));
        // Local address translates to None.
        assert_eq!(d.translate(0), None);
        // Past the end of every range.
        assert_eq!(d.translate(100 << 30), None);
    }

    #[test]
    fn multiple_emcs_stack_contiguously() {
        let mut d = HdmDecoder::new(Bytes::from_gib(1));
        let r0 = d.map_emc(EmcId(0), Bytes::from_gib(2));
        let r1 = d.map_emc(EmcId(1), Bytes::from_gib(2));
        assert_eq!(r0.end(), r1.base);
        assert_eq!(d.translate(r1.base), Some((EmcId(1), SliceId(0), 0)));
        assert_eq!(d.ranges().len(), 2);
    }

    #[test]
    fn slice_base_round_trips_translate() {
        let mut d = HdmDecoder::new(Bytes::from_gib(1));
        d.map_emc(EmcId(0), Bytes::from_gib(4));
        d.map_emc(EmcId(1), Bytes::from_gib(4));
        let base = d.slice_base(EmcId(1), SliceId(2)).unwrap();
        assert_eq!(d.translate(base), Some((EmcId(1), SliceId(2), 0)));
        // Slice outside the EMC's capacity.
        assert_eq!(d.slice_base(EmcId(1), SliceId(10)), None);
        // Unknown EMC.
        assert_eq!(d.slice_base(EmcId(9), SliceId(0)), None);
    }

    proptest! {
        /// Invariant: every address inside a mapped range translates to a
        /// slice whose base address round-trips back to a containing range.
        #[test]
        fn translate_is_consistent(local in 1u64..8, cap in 1u64..8, offset in 0u64..(8u64 << 30)) {
            let mut d = HdmDecoder::new(Bytes::from_gib(local));
            d.map_emc(EmcId(0), Bytes::from_gib(cap));
            let addr = (local << 30) + (offset % (cap << 30));
            let (emc, slice, off) = d.translate(addr).expect("in-range address");
            prop_assert_eq!(emc, EmcId(0));
            let base = d.slice_base(emc, slice).unwrap();
            prop_assert_eq!(base + off, addr);
        }
    }
}
