//! # cxl-hw
//!
//! Hardware-layer model of the Pond CXL memory pool (ASPLOS '23, §4.1).
//!
//! This crate models the pieces of Pond that live below the hypervisor:
//!
//! * [`emc`] — the External Memory Controller (EMC), a multi-headed CXL
//!   device that exposes DDR5 capacity to up to 16 directly-attached CPU
//!   sockets and enforces per-slice ownership via a permission table.
//! * [`mod@slice`] — 1 GiB memory slices (the paper's "1 GB"), the granularity at which pool capacity
//!   is moved between hosts.
//! * [`hdm`] — the Host-managed Device Memory (HDM) decoder that maps EMC
//!   address ranges into each host's physical address space.
//! * [`topology`] — pool topology construction for 8/16/32/64-socket pools,
//!   including CXL switches and retimers for the larger configurations, plus
//!   the switch-only strawman the paper compares against (Figure 8).
//! * [`latency`] — the nanosecond-level latency composition model used to
//!   produce Figures 7 and 8.
//! * [`bandwidth`] — ×8 CXL link and DDR5 channel bandwidth model.
//! * [`pool`] — pool-level slice ownership state machine with
//!   `add_capacity`/`release_capacity` flows and online/offline timing.
//! * [`failure`] — blast-radius model for EMC, host, and Pool-Manager
//!   failures (§4.2, "Failure management").
//!
//! # Example
//!
//! Compute the pool access latency of a 16-socket Pond pool and compare it
//! with the NUMA-local baseline:
//!
//! ```
//! use cxl_hw::topology::PoolTopology;
//! use cxl_hw::latency::LatencyModel;
//!
//! let topo = PoolTopology::pond(16).expect("16 sockets is a supported Pond size");
//! let model = LatencyModel::default();
//! let pool_ns = model.pool_access_latency(&topo).as_nanos();
//! let local_ns = model.local_dram_latency().as_nanos();
//! assert!(pool_ns > local_ns);
//! assert!(pool_ns < 200.0, "16-socket Pond stays below 200ns, got {pool_ns}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandwidth;
pub mod emc;
pub mod error;
pub mod failure;
pub mod hdm;
pub mod latency;
pub mod pool;
pub mod slice;
pub mod topology;
pub mod units;

pub use error::CxlError;
pub use latency::{Latency, LatencyModel};
pub use pool::{PoolEvent, PoolState};
pub use slice::{SliceId, SliceState};
pub use topology::{PodStyle, PoolGroupTopology, PoolTopology};
pub use units::{Bytes, HostId, SocketId};
