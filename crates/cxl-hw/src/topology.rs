//! Pool topology construction (Figures 6 and 7).
//!
//! A Pond pool is defined by the number of CPU sockets that can reach the
//! same memory, the EMCs that provide the capacity, and the interconnect
//! path between a socket and an EMC (direct CXL link, link with retimers, or
//! one or more switch hops). The paper's key design choice is the
//! multi-headed EMC, which keeps 8- and 16-socket pools switch-free.

use crate::emc::EmcConfig;
use crate::error::CxlError;
use crate::units::Bytes;
use serde::{Deserialize, Serialize};

/// The interconnect path between a CPU socket and the EMC that owns a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interconnect {
    /// Direct CXL attach. `retimers` is the number of retimers on the path
    /// (each adds latency in both directions); paths longer than ~500 mm
    /// need one (§4.1).
    Direct {
        /// Retimers on the path.
        retimers: u8,
    },
    /// The path crosses one or more CXL switches. Each switch hop adds port,
    /// arbitration, and NoC latency; `retimers_per_hop` retimers sit on each
    /// electrical segment.
    Switched {
        /// Number of switch hops.
        switches: u8,
        /// Retimers per electrical segment (there are `switches + 1` segments).
        retimers_per_hop: u8,
    },
}

impl Interconnect {
    /// Total number of retimers traversed one way.
    pub fn retimer_count(&self) -> u8 {
        match *self {
            Interconnect::Direct { retimers } => retimers,
            Interconnect::Switched { switches, retimers_per_hop } => {
                (switches + 1) * retimers_per_hop
            }
        }
    }

    /// Number of switch hops traversed.
    pub fn switch_count(&self) -> u8 {
        match *self {
            Interconnect::Direct { .. } => 0,
            Interconnect::Switched { switches, .. } => switches,
        }
    }
}

/// Design style of the pool: Pond's multi-headed EMC vs. the switch-only
/// strawman compared against in Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolDesign {
    /// Pond: multi-headed EMCs, switches only for 32+ sockets.
    MultiHeadedEmc,
    /// Strawman: every pooled access goes through at least one switch
    /// (single-headed memory devices behind a switch fabric).
    SwitchOnly,
}

/// A complete pool topology.
///
/// # Example
///
/// ```
/// use cxl_hw::topology::{PoolTopology, PoolDesign};
///
/// let pond16 = PoolTopology::pond(16)?;
/// assert_eq!(pond16.sockets(), 16);
/// assert_eq!(pond16.interconnect().switch_count(), 0);
///
/// let switch64 = PoolTopology::switch_only(64)?;
/// assert!(switch64.interconnect().switch_count() >= 2);
/// # Ok::<(), cxl_hw::CxlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolTopology {
    sockets: u16,
    design: PoolDesign,
    interconnect: Interconnect,
    emc_configs: Vec<EmcConfig>,
}

impl PoolTopology {
    /// Pool sizes the Pond EMC design supports (§4.1).
    pub const SUPPORTED_SOCKETS: [u16; 6] = [2, 4, 8, 16, 32, 64];

    /// Builds a Pond pool (multi-headed EMC design) for the given socket count.
    ///
    /// * ≤ 8 sockets: one half-size EMC, direct attach, no retimers.
    /// * ≤ 16 sockets: one full-size EMC, direct attach, one retimer
    ///   (datacenter distances above ~500 mm).
    /// * 32/64 sockets: switched design combining CXL switches with
    ///   multi-headed EMCs; retimers on both segments.
    ///
    /// The default capacity provisions 1 TB per EMC, the sizing used in the
    /// paper's state-table example; use [`PoolTopology::with_emc_capacity`]
    /// to change it.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnsupportedPoolSize`] for socket counts outside
    /// [`PoolTopology::SUPPORTED_SOCKETS`].
    pub fn pond(sockets: u16) -> Result<Self, CxlError> {
        Self::pond_with_capacity(sockets, Bytes::from_gib(1024))
    }

    /// Builds a Pond pool with a specific total pool capacity.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnsupportedPoolSize`] for unsupported socket counts.
    pub fn pond_with_capacity(sockets: u16, total_capacity: Bytes) -> Result<Self, CxlError> {
        if !Self::SUPPORTED_SOCKETS.contains(&sockets) {
            return Err(CxlError::UnsupportedPoolSize { sockets });
        }
        let (interconnect, emc_configs) = match sockets {
            2..=8 => (
                Interconnect::Direct { retimers: 0 },
                vec![EmcConfig::pond_8_socket(total_capacity)],
            ),
            16 => (
                Interconnect::Direct { retimers: 1 },
                vec![EmcConfig::pond_16_socket(total_capacity)],
            ),
            _ => {
                // 32/64 sockets: 8 switches, 4 multi-headed EMCs behind them
                // (Figure 6, right). Capacity is spread across the EMCs.
                let emcs = 4;
                let per_emc = Bytes::from_gib((total_capacity.as_gib() / emcs).max(1));
                (
                    Interconnect::Switched { switches: 1, retimers_per_hop: 1 },
                    (0..emcs).map(|_| EmcConfig::pond_switched(per_emc)).collect(),
                )
            }
        };
        Ok(PoolTopology { sockets, design: PoolDesign::MultiHeadedEmc, interconnect, emc_configs })
    }

    /// Builds the switch-only strawman for the given socket count (Figure 8).
    ///
    /// Every pooled access traverses at least one switch; pools above 16
    /// sockets need a second switch level.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnsupportedPoolSize`] for socket counts of zero.
    pub fn switch_only(sockets: u16) -> Result<Self, CxlError> {
        if sockets == 0 {
            return Err(CxlError::UnsupportedPoolSize { sockets });
        }
        let interconnect = if sockets <= 1 {
            // A "pool" of one socket is just a directly attached device.
            Interconnect::Direct { retimers: 0 }
        } else if sockets <= 16 {
            Interconnect::Switched { switches: 1, retimers_per_hop: 1 }
        } else {
            Interconnect::Switched { switches: 2, retimers_per_hop: 1 }
        };
        let per_emc = Bytes::from_gib(256);
        let emc_count = (sockets as u64).div_ceil(8).max(1);
        Ok(PoolTopology {
            sockets,
            design: PoolDesign::SwitchOnly,
            interconnect,
            emc_configs: (0..emc_count).map(|_| EmcConfig::pond_switched(per_emc)).collect(),
        })
    }

    /// Replaces the per-EMC capacity, keeping the topology shape.
    pub fn with_emc_capacity(mut self, capacity: Bytes) -> Self {
        for cfg in &mut self.emc_configs {
            cfg.capacity = capacity;
        }
        self
    }

    /// Number of CPU sockets sharing the pool.
    pub fn sockets(&self) -> u16 {
        self.sockets
    }

    /// The design style (multi-headed EMC vs. switch-only).
    pub fn design(&self) -> PoolDesign {
        self.design
    }

    /// The socket-to-EMC interconnect description.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// EMC configurations in the pool.
    pub fn emc_configs(&self) -> &[EmcConfig] {
        &self.emc_configs
    }

    /// Total pool capacity across all EMCs.
    pub fn total_capacity(&self) -> Bytes {
        self.emc_configs.iter().map(|c| c.capacity).sum()
    }

    /// Total PCIe 5.0 lane budget across all EMCs (Figure 6 comparison with
    /// the AMD Genoa IO die).
    pub fn total_pcie_lanes(&self) -> u32 {
        self.emc_configs.iter().map(|c| c.pcie_lanes() as u32).sum()
    }

    /// Total DDR5 channels across all EMCs.
    pub fn total_ddr5_channels(&self) -> u32 {
        self.emc_configs.iter().map(|c| c.ddr5_channels as u32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pond_8_socket_is_switchless_and_retimer_free() {
        let t = PoolTopology::pond(8).unwrap();
        assert_eq!(t.sockets(), 8);
        assert_eq!(t.interconnect().switch_count(), 0);
        assert_eq!(t.interconnect().retimer_count(), 0);
        assert_eq!(t.design(), PoolDesign::MultiHeadedEmc);
        // Figure 6: 8-socket EMC uses 64 PCIe lanes and 6 DDR5 channels.
        assert_eq!(t.total_pcie_lanes(), 64);
        assert_eq!(t.total_ddr5_channels(), 6);
    }

    #[test]
    fn pond_16_socket_needs_a_retimer_but_no_switch() {
        let t = PoolTopology::pond(16).unwrap();
        assert_eq!(t.interconnect().switch_count(), 0);
        assert_eq!(t.interconnect().retimer_count(), 1);
        // Figure 6: 16-socket EMC parallels the Genoa IOD: 128 lanes, 12 channels.
        assert_eq!(t.total_pcie_lanes(), 128);
        assert_eq!(t.total_ddr5_channels(), 12);
    }

    #[test]
    fn pond_large_pools_use_switches_and_multiple_emcs() {
        for sockets in [32, 64] {
            let t = PoolTopology::pond(sockets).unwrap();
            assert_eq!(t.interconnect().switch_count(), 1, "{sockets} sockets");
            assert!(t.interconnect().retimer_count() >= 2);
            assert_eq!(t.emc_configs().len(), 4);
        }
    }

    #[test]
    fn unsupported_sizes_are_rejected() {
        for sockets in [0, 1, 3, 7, 12, 17, 128] {
            assert!(
                matches!(PoolTopology::pond(sockets), Err(CxlError::UnsupportedPoolSize { .. })),
                "sockets={sockets} should be rejected"
            );
        }
    }

    #[test]
    fn switch_only_always_crosses_a_switch_when_pooled() {
        assert_eq!(PoolTopology::switch_only(1).unwrap().interconnect().switch_count(), 0);
        assert_eq!(PoolTopology::switch_only(8).unwrap().interconnect().switch_count(), 1);
        assert_eq!(PoolTopology::switch_only(16).unwrap().interconnect().switch_count(), 1);
        assert_eq!(PoolTopology::switch_only(32).unwrap().interconnect().switch_count(), 2);
        assert_eq!(PoolTopology::switch_only(64).unwrap().interconnect().switch_count(), 2);
        assert!(PoolTopology::switch_only(0).is_err());
    }

    #[test]
    fn capacity_override_applies_to_all_emcs() {
        let t = PoolTopology::pond(32).unwrap().with_emc_capacity(Bytes::from_gib(512));
        assert_eq!(t.total_capacity(), Bytes::from_gib(4 * 512));
    }

    #[test]
    fn pond_capacity_is_split_across_switched_emcs() {
        let t = PoolTopology::pond_with_capacity(64, Bytes::from_gib(2048)).unwrap();
        assert_eq!(t.total_capacity(), Bytes::from_gib(2048));
        for cfg in t.emc_configs() {
            assert_eq!(cfg.capacity, Bytes::from_gib(512));
        }
    }

    #[test]
    fn interconnect_counts() {
        let d = Interconnect::Direct { retimers: 1 };
        assert_eq!(d.retimer_count(), 1);
        assert_eq!(d.switch_count(), 0);
        let s = Interconnect::Switched { switches: 2, retimers_per_hop: 1 };
        assert_eq!(s.retimer_count(), 3);
        assert_eq!(s.switch_count(), 2);
    }
}
