//! Pool topology construction (Figures 6 and 7).
//!
//! A Pond pool is defined by the number of CPU sockets that can reach the
//! same memory, the EMCs that provide the capacity, and the interconnect
//! path between a socket and an EMC (direct CXL link, link with retimers, or
//! one or more switch hops). The paper's key design choice is the
//! multi-headed EMC, which keeps 8- and 16-socket pools switch-free.

use crate::emc::EmcConfig;
use crate::error::CxlError;
use crate::latency::{Latency, LatencyModel};
use crate::units::{Bytes, HostId};
use serde::{Deserialize, Serialize};

/// The interconnect path between a CPU socket and the EMC that owns a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interconnect {
    /// Direct CXL attach. `retimers` is the number of retimers on the path
    /// (each adds latency in both directions); paths longer than ~500 mm
    /// need one (§4.1).
    Direct {
        /// Retimers on the path.
        retimers: u8,
    },
    /// The path crosses one or more CXL switches. Each switch hop adds port,
    /// arbitration, and NoC latency; `retimers_per_hop` retimers sit on each
    /// electrical segment.
    Switched {
        /// Number of switch hops.
        switches: u8,
        /// Retimers per electrical segment (there are `switches + 1` segments).
        retimers_per_hop: u8,
    },
}

impl Interconnect {
    /// Total number of retimers traversed one way.
    pub fn retimer_count(&self) -> u8 {
        match *self {
            Interconnect::Direct { retimers } => retimers,
            Interconnect::Switched { switches, retimers_per_hop } => {
                (switches + 1) * retimers_per_hop
            }
        }
    }

    /// Number of switch hops traversed.
    pub fn switch_count(&self) -> u8 {
        match *self {
            Interconnect::Direct { .. } => 0,
            Interconnect::Switched { switches, .. } => switches,
        }
    }
}

/// Design style of the pool: Pond's multi-headed EMC vs. the switch-only
/// strawman compared against in Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolDesign {
    /// Pond: multi-headed EMCs, switches only for 32+ sockets.
    MultiHeadedEmc,
    /// Strawman: every pooled access goes through at least one switch
    /// (single-headed memory devices behind a switch fabric).
    SwitchOnly,
}

/// A complete pool topology.
///
/// # Example
///
/// ```
/// use cxl_hw::topology::{PoolTopology, PoolDesign};
///
/// let pond16 = PoolTopology::pond(16)?;
/// assert_eq!(pond16.sockets(), 16);
/// assert_eq!(pond16.interconnect().switch_count(), 0);
///
/// let switch64 = PoolTopology::switch_only(64)?;
/// assert!(switch64.interconnect().switch_count() >= 2);
/// # Ok::<(), cxl_hw::CxlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolTopology {
    sockets: u16,
    design: PoolDesign,
    interconnect: Interconnect,
    emc_configs: Vec<EmcConfig>,
}

impl PoolTopology {
    /// Pool sizes the Pond EMC design supports (§4.1).
    pub const SUPPORTED_SOCKETS: [u16; 6] = [2, 4, 8, 16, 32, 64];

    /// Builds a Pond pool (multi-headed EMC design) for the given socket count.
    ///
    /// * ≤ 8 sockets: one half-size EMC, direct attach, no retimers.
    /// * ≤ 16 sockets: one full-size EMC, direct attach, one retimer
    ///   (datacenter distances above ~500 mm).
    /// * 32/64 sockets: switched design combining CXL switches with
    ///   multi-headed EMCs; retimers on both segments.
    ///
    /// The default capacity provisions 1 TB per EMC, the sizing used in the
    /// paper's state-table example; use [`PoolTopology::with_emc_capacity`]
    /// to change it.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnsupportedPoolSize`] for socket counts outside
    /// [`PoolTopology::SUPPORTED_SOCKETS`].
    pub fn pond(sockets: u16) -> Result<Self, CxlError> {
        Self::pond_with_capacity(sockets, Bytes::from_gib(1024))
    }

    /// Builds a Pond pool with a specific total pool capacity.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnsupportedPoolSize`] for unsupported socket counts.
    pub fn pond_with_capacity(sockets: u16, total_capacity: Bytes) -> Result<Self, CxlError> {
        if !Self::SUPPORTED_SOCKETS.contains(&sockets) {
            return Err(CxlError::UnsupportedPoolSize { sockets });
        }
        let (interconnect, emc_configs) = match sockets {
            2..=8 => (
                Interconnect::Direct { retimers: 0 },
                vec![EmcConfig::pond_8_socket(total_capacity)],
            ),
            16 => (
                Interconnect::Direct { retimers: 1 },
                vec![EmcConfig::pond_16_socket(total_capacity)],
            ),
            _ => {
                // 32/64 sockets: 8 switches, 4 multi-headed EMCs behind them
                // (Figure 6, right). Capacity is spread across the EMCs.
                let emcs = 4;
                let per_emc = Bytes::from_gib((total_capacity.as_gib() / emcs).max(1));
                (
                    Interconnect::Switched { switches: 1, retimers_per_hop: 1 },
                    (0..emcs).map(|_| EmcConfig::pond_switched(per_emc)).collect(),
                )
            }
        };
        Ok(PoolTopology { sockets, design: PoolDesign::MultiHeadedEmc, interconnect, emc_configs })
    }

    /// Builds the switch-only strawman for the given socket count (Figure 8).
    ///
    /// Every pooled access traverses at least one switch; pools above 16
    /// sockets need a second switch level.
    ///
    /// # Errors
    ///
    /// Returns [`CxlError::UnsupportedPoolSize`] for socket counts of zero.
    pub fn switch_only(sockets: u16) -> Result<Self, CxlError> {
        if sockets == 0 {
            return Err(CxlError::UnsupportedPoolSize { sockets });
        }
        let interconnect = if sockets <= 1 {
            // A "pool" of one socket is just a directly attached device.
            Interconnect::Direct { retimers: 0 }
        } else if sockets <= 16 {
            Interconnect::Switched { switches: 1, retimers_per_hop: 1 }
        } else {
            Interconnect::Switched { switches: 2, retimers_per_hop: 1 }
        };
        let per_emc = Bytes::from_gib(256);
        let emc_count = (sockets as u64).div_ceil(8).max(1);
        Ok(PoolTopology {
            sockets,
            design: PoolDesign::SwitchOnly,
            interconnect,
            emc_configs: (0..emc_count).map(|_| EmcConfig::pond_switched(per_emc)).collect(),
        })
    }

    /// Replaces the per-EMC capacity, keeping the topology shape.
    pub fn with_emc_capacity(mut self, capacity: Bytes) -> Self {
        for cfg in &mut self.emc_configs {
            cfg.capacity = capacity;
        }
        self
    }

    /// Number of CPU sockets sharing the pool.
    pub fn sockets(&self) -> u16 {
        self.sockets
    }

    /// The design style (multi-headed EMC vs. switch-only).
    pub fn design(&self) -> PoolDesign {
        self.design
    }

    /// The socket-to-EMC interconnect description.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// EMC configurations in the pool.
    pub fn emc_configs(&self) -> &[EmcConfig] {
        &self.emc_configs
    }

    /// Total pool capacity across all EMCs.
    pub fn total_capacity(&self) -> Bytes {
        self.emc_configs.iter().map(|c| c.capacity).sum()
    }

    /// Total PCIe 5.0 lane budget across all EMCs (Figure 6 comparison with
    /// the AMD Genoa IO die).
    pub fn total_pcie_lanes(&self) -> u32 {
        self.emc_configs.iter().map(|c| c.pcie_lanes() as u32).sum()
    }

    /// Total DDR5 channels across all EMCs.
    pub fn total_ddr5_channels(&self) -> u32 {
        self.emc_configs.iter().map(|c| c.ddr5_channels as u32).sum()
    }
}

/// How a fleet's hosts are grouped around pools: the pod shape that, next to
/// the pool *size*, drives how much stranding a pooled fleet recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PodStyle {
    /// Symmetric pods: every host reaches exactly its home pod's pool — the
    /// shape Pond evaluates (one pool per 8–64 sockets, Figures 6/7).
    Symmetric,
    /// Octopus-style sparse ring: each pod's hosts additionally reach the
    /// next pod's pool, so neighbouring pods can absorb each other's bursts
    /// without a full crossbar of CXL links.
    Octopus,
    /// k-regular ring: each pod's hosts reach their own pool and the next
    /// `k` pods' pools in ring order. `k = 1` is exactly [`PodStyle::Octopus`];
    /// `k = groups − 1` is a full crossbar.
    KRegular {
        /// Ring neighbours each pod reaches beyond its own pool.
        k: u16,
    },
    /// Two-level pod-of-pods: pods are grouped into contiguous clusters of
    /// `cluster` pods, and within a cluster every pod reaches every pool
    /// (ring order starting from itself). Clusters are isolated from each
    /// other — the blast-radius boundary moves up one level.
    PodOfPods {
        /// Pods per cluster (the last cluster may be smaller).
        cluster: u16,
    },
}

impl PodStyle {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PodStyle::Symmetric => "symmetric",
            PodStyle::Octopus => "octopus",
            PodStyle::KRegular { .. } => "k-regular",
            PodStyle::PodOfPods { .. } => "pod-of-pods",
        }
    }
}

/// A sharded fleet topology: `groups` pods, each with its own
/// [`PoolTopology`], plus the host→pool reachability the pod style induces.
///
/// Hosts are numbered fleet-wide (`0..host_count`) and assigned to pods in
/// contiguous blocks (sizes differ by at most one host, earlier pods get
/// the remainder); the fleet-wide pool capacity is split the same way in
/// whole 1 GiB slices, so the *total* modeled capacity is identical across
/// group counts — sharding comparisons stay apples-to-apples. Reachability
/// is per pod: a pod's hosts reach their own pool, and under
/// [`PodStyle::Octopus`] also the next pod's pool (ring order).
///
/// # Example
///
/// ```
/// use cxl_hw::topology::{PodStyle, PoolGroupTopology};
/// use cxl_hw::units::Bytes;
///
/// let topo = PoolGroupTopology::new(PodStyle::Octopus, 4, 34, 16, Bytes::from_gib(1026))?;
/// assert_eq!(topo.group_count(), 4);
/// assert_eq!(topo.hosts_in(0), 9); // 34 hosts: 9+9+8+8
/// assert_eq!(topo.reachable(3), &[3, 0]); // ring wrap-around
/// assert_eq!(topo.pool(0).total_capacity(), Bytes::from_gib(257)); // 1026: 257+257+256+256
/// assert_eq!(topo.total_capacity(), Bytes::from_gib(1026));
/// # Ok::<(), cxl_hw::CxlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolGroupTopology {
    style: PodStyle,
    pools: Vec<PoolTopology>,
    hosts_per_group: Vec<u16>,
    reach: Vec<Vec<usize>>,
}

impl PoolGroupTopology {
    /// Builds a pool-group topology: `groups` pods sharing `hosts` hosts
    /// and `total_capacity` of pool DRAM, each pod owning a Pond pool of
    /// `pool_sockets` sockets. Capacity is split into whole 1 GiB slices,
    /// sizes differing by at most one slice (earlier pods get the
    /// remainder), so the summed capacity always equals the floored total.
    ///
    /// # Errors
    ///
    /// * [`CxlError::InvalidGroupTopology`] when `groups` is zero, exceeds
    ///   the host count (every pod needs at least one host), or exceeds the
    ///   total capacity in slices (every pod needs at least one slice).
    /// * [`CxlError::UnsupportedPoolSize`] when `pool_sockets` is not a
    ///   supported Pond pool size.
    pub fn new(
        style: PodStyle,
        groups: u16,
        hosts: u16,
        pool_sockets: u16,
        total_capacity: Bytes,
    ) -> Result<Self, CxlError> {
        if groups == 0 {
            return Err(CxlError::InvalidGroupTopology {
                detail: "a fleet needs at least one pool group".to_string(),
            });
        }
        if let PodStyle::PodOfPods { cluster: 0 } = style {
            return Err(CxlError::InvalidGroupTopology {
                detail: "pod-of-pods clusters need at least one pod".to_string(),
            });
        }
        if hosts < groups {
            return Err(CxlError::InvalidGroupTopology {
                detail: format!("{groups} groups need at least {groups} hosts, got {hosts}"),
            });
        }
        let total_slices = total_capacity.slices_floor();
        if total_slices < u64::from(groups) {
            return Err(CxlError::InvalidGroupTopology {
                detail: format!(
                    "{groups} groups need at least {groups} pool slices, got {total_slices}"
                ),
            });
        }
        let groups = groups as usize;
        let slice_base = total_slices / groups as u64;
        let slice_rem = (total_slices % groups as u64) as usize;
        let pools = (0..groups)
            .map(|g| {
                let capacity = Bytes::from_gib(slice_base + u64::from(g < slice_rem));
                PoolTopology::pond_with_capacity(pool_sockets, capacity)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let base = hosts / groups as u16;
        let remainder = (hosts % groups as u16) as usize;
        let hosts_per_group =
            (0..groups).map(|g| base + u16::from(g < remainder)).collect::<Vec<_>>();
        let reach = (0..groups)
            .map(|g| match style {
                PodStyle::Symmetric => vec![g],
                // A single pod's "next pod" is itself; skip the duplicate.
                PodStyle::Octopus if groups == 1 => vec![g],
                PodStyle::Octopus => vec![g, (g + 1) % groups],
                // Ring order, clamped so a pod never reaches itself twice.
                PodStyle::KRegular { k } => {
                    let degree = (k as usize).min(groups - 1);
                    (0..=degree).map(|step| (g + step) % groups).collect()
                }
                // Full reach within the pod's contiguous cluster, ring order
                // from itself (the last cluster may be smaller).
                PodStyle::PodOfPods { cluster } => {
                    let cluster = cluster as usize;
                    let start = (g / cluster) * cluster;
                    let size = cluster.min(groups - start);
                    (0..size).map(|step| start + (g - start + step) % size).collect()
                }
            })
            .collect();
        Ok(PoolGroupTopology { style, pools, hosts_per_group, reach })
    }

    /// [`PoolGroupTopology::new`] with a [`PodStyle::KRegular`] ring of
    /// overlap degree `k`.
    ///
    /// # Errors
    ///
    /// Same shape validation as [`PoolGroupTopology::new`].
    pub fn k_regular(
        k: u16,
        groups: u16,
        hosts: u16,
        pool_sockets: u16,
        total_capacity: Bytes,
    ) -> Result<Self, CxlError> {
        Self::new(PodStyle::KRegular { k }, groups, hosts, pool_sockets, total_capacity)
    }

    /// [`PoolGroupTopology::new`] with a two-level [`PodStyle::PodOfPods`]
    /// layout of `cluster` pods per cluster.
    ///
    /// # Errors
    ///
    /// Same shape validation as [`PoolGroupTopology::new`], plus
    /// [`CxlError::InvalidGroupTopology`] when `cluster` is zero.
    pub fn pod_of_pods(
        cluster: u16,
        groups: u16,
        hosts: u16,
        pool_sockets: u16,
        total_capacity: Bytes,
    ) -> Result<Self, CxlError> {
        Self::new(PodStyle::PodOfPods { cluster }, groups, hosts, pool_sockets, total_capacity)
    }

    /// The pod style.
    pub fn style(&self) -> PodStyle {
        self.style
    }

    /// Number of pool groups (pods).
    pub fn group_count(&self) -> usize {
        self.pools.len()
    }

    /// Total number of hosts across all pods.
    pub fn host_count(&self) -> u16 {
        self.hosts_per_group.iter().sum()
    }

    /// Number of hosts in pod `group`.
    ///
    /// # Panics
    ///
    /// Panics when `group` is out of range.
    pub fn hosts_in(&self, group: usize) -> u16 {
        self.hosts_per_group[group]
    }

    /// The pool topology of pod `group`.
    ///
    /// # Panics
    ///
    /// Panics when `group` is out of range.
    pub fn pool(&self, group: usize) -> &PoolTopology {
        &self.pools[group]
    }

    /// All per-pod pool topologies.
    pub fn pools(&self) -> &[PoolTopology] {
        &self.pools
    }

    /// The home pod of a fleet-wide host index, or `None` when out of range.
    pub fn home_group(&self, host: u16) -> Option<usize> {
        let mut first = 0;
        for (g, &count) in self.hosts_per_group.iter().enumerate() {
            if host < first + count {
                return Some(g);
            }
            first += count;
        }
        None
    }

    /// Pool groups reachable from pod `group`'s hosts, home pod first.
    ///
    /// # Panics
    ///
    /// Panics when `group` is out of range.
    pub fn reachable(&self, group: usize) -> &[usize] {
        &self.reach[group]
    }

    /// Pool groups reachable from a fleet-wide host index, home pod first.
    pub fn host_reach(&self, host: u16) -> &[usize] {
        self.home_group(host).map_or(&[], |g| self.reachable(g))
    }

    /// Total pool capacity across all pods.
    pub fn total_capacity(&self) -> Bytes {
        self.pools.iter().map(PoolTopology::total_capacity).sum()
    }

    /// Maximum number of *neighbour* pools any pod reaches beyond its own —
    /// 0 for symmetric pods, 1 for Octopus, `k` for a k-regular ring.
    pub fn overlap_degree(&self) -> usize {
        self.reach.iter().map(|r| r.len() - 1).max().unwrap_or(0)
    }

    /// CXL link hops a borrow from pod `borrower` against pod `lender`'s
    /// pool traverses: 0 for the home pool, the position in the (ring-
    /// ordered) reach set otherwise, `None` when the lender is unreachable.
    pub fn borrow_hops(&self, borrower: usize, lender: usize) -> Option<u32> {
        self.reach[borrower].iter().position(|&g| g == lender).map(|p| p as u32)
    }

    /// Added access latency of borrowed slices over home-pool slices: each
    /// ring hop crosses one extra switch stage (two CXL port traversals,
    /// arbitration, a NoC hop) on a retimed electrical segment, composed
    /// from the paper's Figure 7 per-component numbers. `Latency::ZERO` for
    /// the home pool, `None` when the lender is unreachable.
    pub fn borrow_added_latency(&self, borrower: usize, lender: usize) -> Option<Latency> {
        let hops = self.borrow_hops(borrower, lender)?;
        let model = LatencyModel::default();
        let per_hop = model.cxl_port * 2.0
            + model.switch_arbitration
            + model.switch_noc
            + model.retimer
            + model.flight_time * 2.0;
        Some(per_hop * hops as f64)
    }

    /// The port-consuming host identity a borrow from pod `borrower`'s host
    /// `host` (pod-local index) occupies on the lender's pool: a true
    /// cross-pod attachment holds a real CXL port on the lender EMC, so the
    /// identity must be unique fleet-wide and can never collide with the
    /// lender's own pod-local host indices. Offsetting the borrower's
    /// fleet-wide host index by the fleet host count guarantees both.
    ///
    /// # Panics
    ///
    /// Panics when the offset identity overflows `u16` (a fleet of more
    /// than ~32k hosts cannot express borrowed ports; the control plane
    /// clamps host counts to `u16::MAX` already).
    pub fn borrow_port_host(&self, borrower: usize, host: u16) -> HostId {
        let start: u32 = self.hosts_per_group[..borrower].iter().map(|&h| u32::from(h)).sum();
        let id = u32::from(self.host_count()) + start + u32::from(host);
        assert!(id <= u32::from(u16::MAX), "borrowed-port host id {id} overflows u16");
        HostId(id as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pond_8_socket_is_switchless_and_retimer_free() {
        let t = PoolTopology::pond(8).unwrap();
        assert_eq!(t.sockets(), 8);
        assert_eq!(t.interconnect().switch_count(), 0);
        assert_eq!(t.interconnect().retimer_count(), 0);
        assert_eq!(t.design(), PoolDesign::MultiHeadedEmc);
        // Figure 6: 8-socket EMC uses 64 PCIe lanes and 6 DDR5 channels.
        assert_eq!(t.total_pcie_lanes(), 64);
        assert_eq!(t.total_ddr5_channels(), 6);
    }

    #[test]
    fn pond_16_socket_needs_a_retimer_but_no_switch() {
        let t = PoolTopology::pond(16).unwrap();
        assert_eq!(t.interconnect().switch_count(), 0);
        assert_eq!(t.interconnect().retimer_count(), 1);
        // Figure 6: 16-socket EMC parallels the Genoa IOD: 128 lanes, 12 channels.
        assert_eq!(t.total_pcie_lanes(), 128);
        assert_eq!(t.total_ddr5_channels(), 12);
    }

    #[test]
    fn pond_large_pools_use_switches_and_multiple_emcs() {
        for sockets in [32, 64] {
            let t = PoolTopology::pond(sockets).unwrap();
            assert_eq!(t.interconnect().switch_count(), 1, "{sockets} sockets");
            assert!(t.interconnect().retimer_count() >= 2);
            assert_eq!(t.emc_configs().len(), 4);
        }
    }

    #[test]
    fn unsupported_sizes_are_rejected() {
        for sockets in [0, 1, 3, 7, 12, 17, 128] {
            assert!(
                matches!(PoolTopology::pond(sockets), Err(CxlError::UnsupportedPoolSize { .. })),
                "sockets={sockets} should be rejected"
            );
        }
    }

    #[test]
    fn switch_only_always_crosses_a_switch_when_pooled() {
        assert_eq!(PoolTopology::switch_only(1).unwrap().interconnect().switch_count(), 0);
        assert_eq!(PoolTopology::switch_only(8).unwrap().interconnect().switch_count(), 1);
        assert_eq!(PoolTopology::switch_only(16).unwrap().interconnect().switch_count(), 1);
        assert_eq!(PoolTopology::switch_only(32).unwrap().interconnect().switch_count(), 2);
        assert_eq!(PoolTopology::switch_only(64).unwrap().interconnect().switch_count(), 2);
        assert!(PoolTopology::switch_only(0).is_err());
    }

    #[test]
    fn capacity_override_applies_to_all_emcs() {
        let t = PoolTopology::pond(32).unwrap().with_emc_capacity(Bytes::from_gib(512));
        assert_eq!(t.total_capacity(), Bytes::from_gib(4 * 512));
    }

    #[test]
    fn pond_capacity_is_split_across_switched_emcs() {
        let t = PoolTopology::pond_with_capacity(64, Bytes::from_gib(2048)).unwrap();
        assert_eq!(t.total_capacity(), Bytes::from_gib(2048));
        for cfg in t.emc_configs() {
            assert_eq!(cfg.capacity, Bytes::from_gib(512));
        }
    }

    #[test]
    fn symmetric_groups_reach_only_their_own_pool() {
        let topo =
            PoolGroupTopology::new(PodStyle::Symmetric, 4, 10, 16, Bytes::from_gib(130)).unwrap();
        assert_eq!(topo.group_count(), 4);
        assert_eq!(topo.host_count(), 10);
        // 10 hosts over 4 pods: 3, 3, 2, 2.
        assert_eq!((0..4).map(|g| topo.hosts_in(g)).collect::<Vec<_>>(), vec![3, 3, 2, 2]);
        for g in 0..4 {
            assert_eq!(topo.reachable(g), &[g]);
            assert_eq!(topo.pool(g).sockets(), 16);
        }
        // 130 GiB over 4 pods: 33, 33, 32, 32 — the configured total is
        // preserved exactly, so sharding comparisons stay fair.
        assert_eq!(
            (0..4).map(|g| topo.pool(g).total_capacity().as_gib()).collect::<Vec<_>>(),
            vec![33, 33, 32, 32]
        );
        assert_eq!(topo.total_capacity(), Bytes::from_gib(130));
        assert_eq!(topo.style().name(), "symmetric");
    }

    #[test]
    fn octopus_groups_overlap_in_a_ring() {
        let topo = PoolGroupTopology::new(PodStyle::Octopus, 3, 9, 8, Bytes::from_gib(64)).unwrap();
        assert_eq!(topo.reachable(0), &[0, 1]);
        assert_eq!(topo.reachable(1), &[1, 2]);
        assert_eq!(topo.reachable(2), &[2, 0]);
        // Host 4 lives in pod 1 (hosts 3..6) and reaches pools 1 and 2.
        assert_eq!(topo.home_group(4), Some(1));
        assert_eq!(topo.host_reach(4), &[1, 2]);
        assert_eq!(topo.home_group(9), None);
        assert!(topo.host_reach(9).is_empty());
    }

    #[test]
    fn single_octopus_group_does_not_duplicate_itself() {
        let topo =
            PoolGroupTopology::new(PodStyle::Octopus, 1, 4, 16, Bytes::from_gib(64)).unwrap();
        assert_eq!(topo.reachable(0), &[0]);
    }

    #[test]
    fn k_regular_reach_is_a_ring_of_degree_k() {
        let topo = PoolGroupTopology::k_regular(2, 4, 8, 16, Bytes::from_gib(64)).unwrap();
        assert_eq!(topo.style().name(), "k-regular");
        assert_eq!(topo.overlap_degree(), 2);
        assert_eq!(topo.reachable(0), &[0, 1, 2]);
        assert_eq!(topo.reachable(3), &[3, 0, 1]);
        // k = 1 is exactly the Octopus ring.
        let octo =
            PoolGroupTopology::new(PodStyle::Octopus, 4, 8, 16, Bytes::from_gib(64)).unwrap();
        let k1 = PoolGroupTopology::k_regular(1, 4, 8, 16, Bytes::from_gib(64)).unwrap();
        for g in 0..4 {
            assert_eq!(k1.reachable(g), octo.reachable(g));
        }
        // k >= groups clamps to the full crossbar without duplicates.
        let k9 = PoolGroupTopology::k_regular(9, 3, 6, 16, Bytes::from_gib(64)).unwrap();
        assert_eq!(k9.reachable(1), &[1, 2, 0]);
        assert_eq!(k9.overlap_degree(), 2);
        // k = 0 degenerates to symmetric pods.
        let k0 = PoolGroupTopology::k_regular(0, 3, 6, 16, Bytes::from_gib(64)).unwrap();
        assert_eq!(k0.reachable(2), &[2]);
        assert_eq!(k0.overlap_degree(), 0);
    }

    #[test]
    fn pod_of_pods_reaches_the_whole_cluster_and_nothing_beyond() {
        let topo = PoolGroupTopology::pod_of_pods(2, 4, 8, 16, Bytes::from_gib(64)).unwrap();
        assert_eq!(topo.style().name(), "pod-of-pods");
        assert_eq!(topo.reachable(0), &[0, 1]);
        assert_eq!(topo.reachable(1), &[1, 0]);
        assert_eq!(topo.reachable(2), &[2, 3]);
        assert_eq!(topo.reachable(3), &[3, 2]);
        // A ragged last cluster stays self-contained.
        let ragged = PoolGroupTopology::pod_of_pods(3, 5, 10, 16, Bytes::from_gib(64)).unwrap();
        assert_eq!(ragged.reachable(1), &[1, 2, 0]);
        assert_eq!(ragged.reachable(3), &[3, 4]);
        assert_eq!(ragged.reachable(4), &[4, 3]);
        assert!(matches!(
            PoolGroupTopology::pod_of_pods(0, 4, 8, 16, Bytes::from_gib(64)),
            Err(CxlError::InvalidGroupTopology { .. })
        ));
    }

    #[test]
    fn borrow_costs_grow_with_ring_distance() {
        let topo = PoolGroupTopology::k_regular(2, 4, 8, 16, Bytes::from_gib(64)).unwrap();
        assert_eq!(topo.borrow_hops(0, 0), Some(0));
        assert_eq!(topo.borrow_hops(0, 1), Some(1));
        assert_eq!(topo.borrow_hops(0, 2), Some(2));
        assert_eq!(topo.borrow_hops(0, 3), None, "unreachable pods cannot lend");
        assert_eq!(topo.borrow_added_latency(0, 0), Some(Latency::ZERO));
        let one = topo.borrow_added_latency(0, 1).unwrap();
        let two = topo.borrow_added_latency(0, 2).unwrap();
        assert!(one > Latency::ZERO);
        assert!(two > one, "each ring hop adds a switch stage");
        assert!(topo.borrow_added_latency(0, 3).is_none());
    }

    #[test]
    fn borrow_port_hosts_are_unique_and_disjoint_from_pod_local_indices() {
        let topo = PoolGroupTopology::new(PodStyle::Octopus, 3, 9, 8, Bytes::from_gib(64)).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for borrower in 0..3 {
            for host in 0..topo.hosts_in(borrower) {
                let port = topo.borrow_port_host(borrower, host);
                // Never collides with any pod-local host index (0..hosts_in).
                assert!(port.0 >= topo.host_count());
                assert!(seen.insert(port), "duplicate borrowed-port id {port:?}");
            }
        }
        assert_eq!(seen.len(), 9, "one distinct port identity per borrower host");
    }

    #[test]
    fn invalid_group_shapes_are_rejected() {
        assert!(matches!(
            PoolGroupTopology::new(PodStyle::Symmetric, 0, 8, 16, Bytes::from_gib(64)),
            Err(CxlError::InvalidGroupTopology { .. })
        ));
        assert!(matches!(
            PoolGroupTopology::new(PodStyle::Symmetric, 5, 4, 16, Bytes::from_gib(64)),
            Err(CxlError::InvalidGroupTopology { .. })
        ));
        assert!(matches!(
            PoolGroupTopology::new(PodStyle::Symmetric, 2, 8, 5, Bytes::from_gib(64)),
            Err(CxlError::UnsupportedPoolSize { .. })
        ));
        // Fewer total slices than groups: some pod would own no capacity.
        assert!(matches!(
            PoolGroupTopology::new(PodStyle::Symmetric, 4, 8, 16, Bytes::from_gib(3)),
            Err(CxlError::InvalidGroupTopology { .. })
        ));
    }

    #[test]
    fn interconnect_counts() {
        let d = Interconnect::Direct { retimers: 1 };
        assert_eq!(d.retimer_count(), 1);
        assert_eq!(d.switch_count(), 0);
        let s = Interconnect::Switched { switches: 2, retimers_per_hop: 1 };
        assert_eq!(s.retimer_count(), 3);
        assert_eq!(s.switch_count(), 2);
    }
}
