//! Nanosecond-level access-latency composition (Figures 7 and 8).
//!
//! The paper breaks an end-to-end pool access into published per-component
//! latencies: CXL port traversal (25 ns, Intel's Sapphire Rapids
//! measurement), flight time, retimers, switch arbitration and NoC, the
//! EMC-side address/permission check, and the memory controller + DRAM.
//! Composing those per topology gives the pool-size-vs-latency tradeoff that
//! drives Pond's "small pool" design decision.

use crate::topology::PoolTopology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A latency value in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Latency(f64);

impl Latency {
    /// Zero latency.
    pub const ZERO: Latency = Latency(0.0);

    /// Creates a latency from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_nanos(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "latency must be finite and non-negative");
        Latency(ns)
    }

    /// The value in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0
    }

    /// Ratio of this latency to a baseline, expressed as a percentage
    /// (e.g. 182 means "182% of the baseline", the paper's notation).
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is zero.
    pub fn percent_of(self, baseline: Latency) -> f64 {
        assert!(baseline.0 > 0.0, "baseline latency must be positive");
        self.0 / baseline.0 * 100.0
    }
}

impl std::ops::Add for Latency {
    type Output = Latency;
    fn add(self, rhs: Latency) -> Latency {
        Latency(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Latency {
    fn add_assign(&mut self, rhs: Latency) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Latency {
    type Output = Latency;
    fn sub(self, rhs: Latency) -> Latency {
        Latency((self.0 - rhs.0).max(0.0))
    }
}

impl std::ops::Mul<f64> for Latency {
    type Output = Latency;
    fn mul(self, rhs: f64) -> Latency {
        Latency(self.0 * rhs)
    }
}

impl std::iter::Sum for Latency {
    fn sum<I: Iterator<Item = Latency>>(iter: I) -> Latency {
        iter.fold(Latency::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}ns", self.0)
    }
}

/// Named latency component on the access path (Figure 7's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Core, last-level cache, and on-die fabric on the requesting CPU.
    CoreLlcFabric,
    /// One CXL port traversal (request + response through transaction/link
    /// layers and PHY).
    CxlPort,
    /// Wire flight time for a board-scale segment.
    FlightTime,
    /// A retimer on the electrical path (both directions combined).
    Retimer,
    /// Address mapping and slice-permission check on the EMC.
    AddressCheck,
    /// EMC-internal network-on-chip hop.
    EmcNoc,
    /// Switch arbitration.
    SwitchArbitration,
    /// Switch-internal network-on-chip hop.
    SwitchNoc,
    /// Memory controller plus DRAM access.
    McDram,
}

/// One entry in a latency breakdown: which component, how many times it is
/// traversed, and the latency it contributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakdownEntry {
    /// The component.
    pub component: Component,
    /// How many times the component appears on the path.
    pub count: u32,
    /// Total contribution (per-traversal latency × count).
    pub total: Latency,
}

/// Per-component latency parameters. The defaults are the paper's published
/// numbers (Figure 7 "Latency assumptions").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Core/LLC/fabric latency on the CPU (40 ns).
    pub core_llc_fabric: Latency,
    /// One CXL port round trip (25 ns, Intel measurement).
    pub cxl_port: Latency,
    /// Wire flight time per electrical segment (5 ns).
    pub flight_time: Latency,
    /// Retimer latency, both directions combined (20 ns — 10 ns each way).
    pub retimer: Latency,
    /// EMC address-mapping / permission-check latency (5 ns).
    pub address_check: Latency,
    /// EMC network-on-chip latency (10 ns).
    pub emc_noc: Latency,
    /// Switch arbitration latency (10 ns).
    pub switch_arbitration: Latency,
    /// Switch NoC latency (10 ns).
    pub switch_noc: Latency,
    /// Memory controller + DRAM access latency (45 ns).
    pub mc_dram: Latency,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            core_llc_fabric: Latency::from_nanos(40.0),
            cxl_port: Latency::from_nanos(25.0),
            flight_time: Latency::from_nanos(5.0),
            retimer: Latency::from_nanos(20.0),
            address_check: Latency::from_nanos(5.0),
            emc_noc: Latency::from_nanos(10.0),
            switch_arbitration: Latency::from_nanos(10.0),
            switch_noc: Latency::from_nanos(10.0),
            mc_dram: Latency::from_nanos(45.0),
        }
    }
}

impl LatencyModel {
    /// NUMA-local DRAM latency: core/LLC/fabric + MC/DRAM (85 ns with the
    /// default parameters, matching Figure 7's baseline).
    pub fn local_dram_latency(&self) -> Latency {
        self.core_llc_fabric + self.mc_dram
    }

    /// Cross-socket (remote NUMA) latency used by the paper's emulation:
    /// the local path plus a socket-interconnect hop. With default
    /// parameters this is not used for figures but provided for the
    /// emulation-based experiments (78→142 ns on Intel corresponds to
    /// roughly a 57 ns interconnect penalty).
    pub fn remote_numa_latency(&self, interconnect_penalty: Latency) -> Latency {
        self.local_dram_latency() + interconnect_penalty
    }

    /// Full latency breakdown for a pool access in the given topology.
    ///
    /// The path is: CPU core/LLC/fabric → CPU CXL port → (flight / retimers /
    /// switches) → EMC CXL port → EMC address check + NoC → MC + DRAM.
    pub fn pool_access_breakdown(&self, topology: &PoolTopology) -> Vec<BreakdownEntry> {
        let mut entries = vec![
            BreakdownEntry {
                component: Component::CoreLlcFabric,
                count: 1,
                total: self.core_llc_fabric,
            },
            // CPU-side port and EMC-side port.
            BreakdownEntry { component: Component::CxlPort, count: 2, total: self.cxl_port * 2.0 },
        ];

        let ic = topology.interconnect();
        // Every retimer and every switch splits the electrical path into an
        // additional segment with its own flight time (Figure 7 shows the
        // retimer path as 5 + 20 + 5 ns).
        let retimers = ic.retimer_count() as u32;
        let segments = 1 + retimers + 2 * ic.switch_count() as u32;
        entries.push(BreakdownEntry {
            component: Component::FlightTime,
            count: segments,
            total: self.flight_time * segments as f64,
        });

        if retimers > 0 {
            entries.push(BreakdownEntry {
                component: Component::Retimer,
                count: retimers,
                total: self.retimer * retimers as f64,
            });
        }

        let switches = ic.switch_count() as u32;
        if switches > 0 {
            // Each switch adds two port traversals, arbitration, and a NoC hop.
            entries.push(BreakdownEntry {
                component: Component::CxlPort,
                count: 2 * switches,
                total: self.cxl_port * (2 * switches) as f64,
            });
            entries.push(BreakdownEntry {
                component: Component::SwitchArbitration,
                count: switches,
                total: self.switch_arbitration * switches as f64,
            });
            entries.push(BreakdownEntry {
                component: Component::SwitchNoc,
                count: switches,
                total: self.switch_noc * switches as f64,
            });
        }

        entries.push(BreakdownEntry {
            component: Component::AddressCheck,
            count: 1,
            total: self.address_check,
        });
        entries.push(BreakdownEntry {
            component: Component::EmcNoc,
            count: 1,
            total: self.emc_noc,
        });
        entries.push(BreakdownEntry {
            component: Component::McDram,
            count: 1,
            total: self.mc_dram,
        });
        entries
    }

    /// End-to-end pool access latency for a topology (sum of the breakdown).
    pub fn pool_access_latency(&self, topology: &PoolTopology) -> Latency {
        self.pool_access_breakdown(topology).iter().map(|e| e.total).sum()
    }

    /// Pool access latency as a percentage of the NUMA-local baseline
    /// (the paper's "182%" / "222%" notation).
    pub fn pool_latency_percent(&self, topology: &PoolTopology) -> f64 {
        self.pool_access_latency(topology).percent_of(self.local_dram_latency())
    }

    /// Added latency of a pool access over NUMA-local DRAM.
    pub fn pool_added_latency(&self, topology: &PoolTopology) -> Latency {
        self.pool_access_latency(topology) - self.local_dram_latency()
    }
}

/// Convenience: the latency scenarios the paper evaluates workloads under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyScenario {
    /// 182% of local latency (Intel testbed: 78 ns → 142 ns).
    Increase182,
    /// 222% of local latency (AMD testbed: 115 ns → 255 ns).
    Increase222,
}

impl LatencyScenario {
    /// The latency multiplier relative to NUMA-local DRAM (1.82 or 2.22).
    pub fn multiplier(self) -> f64 {
        match self {
            LatencyScenario::Increase182 => 1.82,
            LatencyScenario::Increase222 => 2.22,
        }
    }

    /// The local latency of the corresponding testbed in nanoseconds.
    pub fn local_latency(self) -> Latency {
        match self {
            LatencyScenario::Increase182 => Latency::from_nanos(78.0),
            LatencyScenario::Increase222 => Latency::from_nanos(115.0),
        }
    }

    /// The emulated pool latency of the corresponding testbed.
    pub fn pool_latency(self) -> Latency {
        match self {
            LatencyScenario::Increase182 => Latency::from_nanos(142.0),
            LatencyScenario::Increase222 => Latency::from_nanos(255.0),
        }
    }

    /// Both scenarios, in the order the paper reports them.
    pub fn all() -> [LatencyScenario; 2] {
        [LatencyScenario::Increase182, LatencyScenario::Increase222]
    }
}

impl fmt::Display for LatencyScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyScenario::Increase182 => write!(f, "182% (142ns)"),
            LatencyScenario::Increase222 => write!(f, "222% (255ns)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PoolTopology;

    #[test]
    fn local_dram_baseline_is_85ns() {
        let m = LatencyModel::default();
        assert_eq!(m.local_dram_latency().as_nanos(), 85.0);
    }

    #[test]
    fn pond_8_socket_matches_figure7() {
        // Figure 7: 8-socket Pond = 155ns, 182% of local.
        let m = LatencyModel::default();
        let t = PoolTopology::pond(8).unwrap();
        let lat = m.pool_access_latency(&t);
        assert_eq!(lat.as_nanos(), 155.0);
        let pct = m.pool_latency_percent(&t);
        assert!((pct - 182.0).abs() < 1.0, "expected ~182%, got {pct}");
    }

    #[test]
    fn pond_16_socket_matches_figure7() {
        // Figure 7: 16-socket Pond = 180ns, ~212% of local.
        let m = LatencyModel::default();
        let t = PoolTopology::pond(16).unwrap();
        let lat = m.pool_access_latency(&t);
        assert_eq!(lat.as_nanos(), 180.0);
        let pct = m.pool_latency_percent(&t);
        assert!((pct - 212.0).abs() < 2.0, "expected ~212%, got {pct}");
    }

    #[test]
    fn pond_large_pools_exceed_270ns() {
        // Figure 7: 32/64-socket Pond > 270ns (318% of local).
        let m = LatencyModel::default();
        for sockets in [32, 64] {
            let t = PoolTopology::pond(sockets).unwrap();
            let lat = m.pool_access_latency(&t);
            assert!(lat.as_nanos() > 270.0, "{sockets} sockets: {lat}");
        }
    }

    #[test]
    fn added_latency_for_small_pools_is_70_to_90ns() {
        // §1 / §4.1: 8-16 socket pools add 70-90ns over NUMA-local DRAM.
        let m = LatencyModel::default();
        for sockets in [8, 16] {
            let added = m.pool_added_latency(&PoolTopology::pond(sockets).unwrap());
            assert!((70.0..=95.0).contains(&added.as_nanos()), "{sockets} sockets adds {added}");
        }
    }

    #[test]
    fn multi_headed_beats_switch_only_by_about_a_third() {
        // Figure 8: Pond reduces latency by ~1/3 (-36% at 16 sockets).
        let m = LatencyModel::default();
        let pond = m.pool_access_latency(&PoolTopology::pond(16).unwrap());
        let switch = m.pool_access_latency(&PoolTopology::switch_only(16).unwrap());
        let reduction = 1.0 - pond.as_nanos() / switch.as_nanos();
        assert!(
            (0.25..=0.45).contains(&reduction),
            "expected ~1/3 reduction, got {reduction:.2} (pond={pond}, switch={switch})"
        );
    }

    #[test]
    fn switch_only_latency_is_monotone_in_pool_size() {
        let m = LatencyModel::default();
        let sizes = [1u16, 8, 16, 32, 64];
        let lats: Vec<f64> = sizes
            .iter()
            .map(|&s| m.pool_access_latency(&PoolTopology::switch_only(s).unwrap()).as_nanos())
            .collect();
        for w in lats.windows(2) {
            assert!(w[1] >= w[0], "latency should not decrease with pool size: {lats:?}");
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = LatencyModel::default();
        for sockets in [8, 16, 32, 64] {
            let t = PoolTopology::pond(sockets).unwrap();
            let breakdown = m.pool_access_breakdown(&t);
            let sum: Latency = breakdown.iter().map(|e| e.total).sum();
            assert_eq!(sum, m.pool_access_latency(&t));
        }
    }

    #[test]
    fn breakdown_includes_switch_components_only_when_switched() {
        let m = LatencyModel::default();
        let small = m.pool_access_breakdown(&PoolTopology::pond(8).unwrap());
        assert!(!small.iter().any(|e| e.component == Component::SwitchArbitration));
        let large = m.pool_access_breakdown(&PoolTopology::pond(64).unwrap());
        assert!(large.iter().any(|e| e.component == Component::SwitchArbitration));
        assert!(large.iter().any(|e| e.component == Component::Retimer));
    }

    #[test]
    fn scenario_parameters_match_testbeds() {
        assert_eq!(LatencyScenario::Increase182.local_latency().as_nanos(), 78.0);
        assert_eq!(LatencyScenario::Increase182.pool_latency().as_nanos(), 142.0);
        assert_eq!(LatencyScenario::Increase222.local_latency().as_nanos(), 115.0);
        assert_eq!(LatencyScenario::Increase222.pool_latency().as_nanos(), 255.0);
        assert!((LatencyScenario::Increase182.multiplier() - 1.82).abs() < 1e-9);
        assert_eq!(LatencyScenario::all().len(), 2);
    }

    #[test]
    fn latency_arithmetic() {
        let a = Latency::from_nanos(100.0);
        let b = Latency::from_nanos(40.0);
        assert_eq!((a + b).as_nanos(), 140.0);
        assert_eq!((a - b).as_nanos(), 60.0);
        // Subtraction saturates at zero rather than going negative.
        assert_eq!((b - a).as_nanos(), 0.0);
        assert_eq!((a * 2.0).as_nanos(), 200.0);
        assert_eq!(a.percent_of(b), 250.0);
        assert_eq!(format!("{a}"), "100ns");
    }

    #[test]
    #[should_panic(expected = "latency must be finite")]
    fn negative_latency_rejected() {
        let _ = Latency::from_nanos(-1.0);
    }

    #[test]
    #[should_panic(expected = "baseline latency must be positive")]
    fn percent_of_zero_baseline_panics() {
        let _ = Latency::from_nanos(1.0).percent_of(Latency::ZERO);
    }
}
