//! VM request traces: the events the cluster simulator replays.

use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a customer (tenant). Customers exhibit correlated behaviour
/// across their VMs, which is what makes Pond's metadata-based predictions
/// work (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CustomerId(pub u32);

impl fmt::Display for CustomerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "customer{}", self.0)
    }
}

/// Guest operating system, one of the metadata features of the
/// untouched-memory model (Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GuestOs {
    /// A Linux distribution.
    Linux,
    /// Windows Server.
    Windows,
}

/// VM series/type, loosely mirroring cloud VM families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmType {
    /// General-purpose (balanced DRAM:core ratio).
    GeneralPurpose,
    /// Memory-optimized (high DRAM:core ratio).
    MemoryOptimized,
    /// Compute-optimized (low DRAM:core ratio).
    ComputeOptimized,
    /// Burstable / small VMs.
    Burstable,
}

impl VmType {
    /// All VM types.
    pub const ALL: [VmType; 4] = [
        VmType::GeneralPurpose,
        VmType::MemoryOptimized,
        VmType::ComputeOptimized,
        VmType::Burstable,
    ];

    /// Nominal GiB of memory per core for the type.
    pub fn gib_per_core(self) -> u64 {
        match self {
            VmType::GeneralPurpose => 4,
            VmType::MemoryOptimized => 8,
            VmType::ComputeOptimized => 2,
            VmType::Burstable => 2,
        }
    }

    /// Encodes the type as a small integer feature for the ML models.
    pub fn as_feature(self) -> f64 {
        match self {
            VmType::GeneralPurpose => 0.0,
            VmType::MemoryOptimized => 1.0,
            VmType::ComputeOptimized => 2.0,
            VmType::Burstable => 3.0,
        }
    }
}

/// One VM request in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmRequest {
    /// Unique id within the trace.
    pub id: u64,
    /// Arrival time in seconds from the start of the trace.
    pub arrival: u64,
    /// Lifetime in seconds.
    pub lifetime: u64,
    /// Number of cores requested.
    pub cores: u32,
    /// Memory requested.
    pub memory: Bytes,
    /// The requesting customer.
    pub customer: CustomerId,
    /// The VM type/series.
    pub vm_type: VmType,
    /// Guest operating system.
    pub guest_os: GuestOs,
    /// Region index (coarse location feature).
    pub region: u8,
    /// Index into the 158-workload suite describing what runs inside.
    pub workload_index: usize,
    /// Ground truth: fraction of the rented memory the VM never touches.
    pub untouched_fraction: f64,
}

impl VmRequest {
    /// Departure time in seconds.
    ///
    /// Saturates at `u64::MAX` instead of wrapping so a malformed trace that
    /// slipped past validation degrades to "never departs" rather than
    /// scheduling a departure in the past and corrupting the event order.
    pub fn departure(&self) -> u64 {
        self.arrival.saturating_add(self.lifetime)
    }

    /// Memory the VM actually touches.
    pub fn touched_memory(&self) -> Bytes {
        self.memory.scaled(1.0 - self.untouched_fraction)
    }

    /// Memory the VM never touches.
    pub fn untouched_memory(&self) -> Bytes {
        self.memory.saturating_sub(self.touched_memory())
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err(format!("vm {} has zero cores", self.id));
        }
        if self.memory.is_zero() {
            return Err(format!("vm {} has zero memory", self.id));
        }
        if self.lifetime == 0 {
            return Err(format!("vm {} has zero lifetime", self.id));
        }
        // `departure()` is `arrival + lifetime`; a wrapping sum would land in
        // the past and corrupt the event order of any replay of this trace.
        if self.arrival.checked_add(self.lifetime).is_none() {
            return Err(format!(
                "vm {} departure overflows: arrival {} + lifetime {}",
                self.id, self.arrival, self.lifetime
            ));
        }
        if !(0.0..=1.0).contains(&self.untouched_fraction) {
            return Err(format!(
                "vm {} has untouched fraction {}",
                self.id, self.untouched_fraction
            ));
        }
        Ok(())
    }
}

/// A whole cluster's trace: the server shape plus every VM request, sorted by
/// arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTrace {
    /// Cluster identifier.
    pub cluster_id: u32,
    /// Number of servers in the cluster.
    pub servers: u32,
    /// Cores per server (across both sockets).
    pub cores_per_server: u32,
    /// DRAM per server (across both sockets).
    pub dram_per_server: Bytes,
    /// Trace duration in seconds.
    pub duration: u64,
    /// VM requests sorted by arrival time.
    pub requests: Vec<VmRequest>,
}

impl ClusterTrace {
    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u64 {
        self.servers as u64 * self.cores_per_server as u64
    }

    /// Total DRAM in the cluster.
    pub fn total_dram(&self) -> Bytes {
        Bytes::new(self.dram_per_server.as_u64() * self.servers as u64)
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The average number of concurrently allocated cores over the trace
    /// duration, as a fraction of the cluster's cores. Shares the clipping
    /// rule with the streaming summary via
    /// [`clipped_core_seconds`](crate::source::clipped_core_seconds).
    pub fn mean_core_utilization(&self) -> f64 {
        let core_seconds: u64 = self
            .requests
            .iter()
            .map(|r| crate::source::clipped_core_seconds(r, self.duration))
            .sum();
        crate::source::mean_core_utilization(core_seconds, self.total_cores(), self.duration)
    }

    /// Validates the trace: request ordering, id uniqueness, and per-request
    /// consistency.
    pub fn validate(&self) -> Result<(), String> {
        for pair in self.requests.windows(2) {
            if pair[1].arrival < pair[0].arrival {
                return Err(format!("requests out of order: {} before {}", pair[1].id, pair[0].id));
            }
        }
        // Replays key per-VM state (departure times, running records) by VM
        // id; an aliased trace would silently overwrite one VM's bookkeeping
        // with another's.
        let mut ids: Vec<u64> = self.requests.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(format!("duplicate vm id {} in trace", pair[0]));
            }
        }
        for request in &self.requests {
            request.validate()?;
            // Arrivals strictly beyond the horizon would never be replayed
            // (the queue drains at `duration`), silently shrinking the trace.
            // `arrival == duration` is legal: the VM arrives on the final
            // tick, exactly like the tail snapshot.
            if request.arrival > self.duration {
                return Err(format!(
                    "vm {} arrives at {} past the trace duration {}",
                    request.id, request.arrival, self.duration
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, arrival: u64) -> VmRequest {
        VmRequest {
            id,
            arrival,
            lifetime: 3600,
            cores: 4,
            memory: Bytes::from_gib(16),
            customer: CustomerId(1),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 0.5,
        }
    }

    #[test]
    fn request_memory_accounting() {
        let r = request(1, 0);
        assert_eq!(r.departure(), 3600);
        assert_eq!(r.touched_memory(), Bytes::from_gib(8));
        assert_eq!(r.untouched_memory(), Bytes::from_gib(8));
        assert_eq!(r.validate(), Ok(()));
    }

    #[test]
    fn request_validation_catches_errors() {
        let mut r = request(1, 0);
        r.cores = 0;
        assert!(r.validate().is_err());
        let mut r = request(1, 0);
        r.untouched_fraction = 1.5;
        assert!(r.validate().is_err());
        let mut r = request(1, 0);
        r.lifetime = 0;
        assert!(r.validate().is_err());
        let mut r = request(1, 0);
        r.memory = Bytes::ZERO;
        assert!(r.validate().is_err());
    }

    #[test]
    fn vm_type_features_are_distinct() {
        let features: std::collections::BTreeSet<u64> =
            VmType::ALL.iter().map(|t| t.as_feature() as u64).collect();
        assert_eq!(features.len(), VmType::ALL.len());
        assert!(VmType::MemoryOptimized.gib_per_core() > VmType::ComputeOptimized.gib_per_core());
    }

    #[test]
    fn trace_utilization_and_validation() {
        let trace = ClusterTrace {
            cluster_id: 0,
            servers: 2,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration: 7200,
            requests: vec![request(1, 0), request(2, 100)],
        };
        assert_eq!(trace.total_cores(), 16);
        assert_eq!(trace.total_dram(), Bytes::from_gib(128));
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        // 2 VMs × 4 cores × 3600 s over 16 cores × 7200 s = 0.25.
        let util = trace.mean_core_utilization();
        assert!((util - 0.25).abs() < 0.01, "{util}");
        assert_eq!(trace.validate(), Ok(()));
    }

    #[test]
    fn overflowing_departure_is_rejected() {
        let mut r = request(1, u64::MAX - 100);
        r.lifetime = 101;
        assert!(r.validate().unwrap_err().contains("overflow"));
        // The exact boundary still validates.
        r.lifetime = 100;
        assert_eq!(r.validate(), Ok(()));
        assert_eq!(r.departure(), u64::MAX);
    }

    #[test]
    fn malformed_departure_saturates_instead_of_wrapping() {
        // A request that validation would reject (overflowing sum) must not
        // wrap into the past if a caller computes its departure anyway.
        let mut r = request(1, u64::MAX - 100);
        r.lifetime = 500;
        assert!(r.validate().is_err());
        assert_eq!(r.departure(), u64::MAX);
    }

    #[test]
    fn arrivals_past_the_duration_are_rejected() {
        let mut trace = ClusterTrace {
            cluster_id: 0,
            servers: 2,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration: 7200,
            requests: vec![request(1, 0), request(2, 7201)],
        };
        assert!(trace.validate().unwrap_err().contains("past the trace duration"));
        // The boundary stays legal: arriving on the final tick is fine.
        trace.requests[1].arrival = 7200;
        assert_eq!(trace.validate(), Ok(()));
    }

    #[test]
    fn aliased_vm_ids_are_rejected() {
        // Two requests sharing id 7: a replay keyed by VM id would overwrite
        // the first VM's departure bookkeeping with the second's.
        let trace = ClusterTrace {
            cluster_id: 0,
            servers: 2,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration: 7200,
            requests: vec![request(7, 0), request(3, 50), request(7, 100)],
        };
        assert!(trace.validate().unwrap_err().contains("duplicate vm id 7"));
    }

    #[test]
    fn out_of_order_traces_are_rejected() {
        let trace = ClusterTrace {
            cluster_id: 0,
            servers: 1,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration: 7200,
            requests: vec![request(1, 500), request(2, 100)],
        };
        assert!(trace.validate().is_err());
    }
}
