//! The time-ordered event core of the cluster simulator.
//!
//! The simulator processes six classes of events: memory-device (EMC)
//! failures (scheduled by failure-drill drivers), VM arrivals (streamed
//! from an [`ArrivalSource`]), VM departures (scheduled when a VM is
//! placed), asynchronous pool-slice release completions (scheduled by
//! pool-aware drivers such as `pond-core`'s fleet simulator), copy
//! completions — reconfiguration copies (scheduled when a QoS mitigation
//! starts its pool→local copy) and migration copies (scheduled when an
//! evacuated VM starts copying to its new home) — and periodic snapshot
//! ticks. [`EventQueue`] merges the sources into a single stream ordered by
//! time, with a fixed tie order at equal times:
//!
//! 1. **Failures and lifecycle operations** — a failure at time `t` applies
//!    before anything else at `t`: the departures, snapshots, and arrivals
//!    sharing its timestamp all observe the degraded (post-failure) pool.
//!    The pool-lifecycle events share this rung — repairs
//!    ([`Event::EmcRepair`]), graceful decommissions
//!    ([`Event::GroupDecommission`]), and live expansions
//!    ([`Event::GroupExpansion`]) are infrastructure state changes that,
//!    like failures, must be visible to every same-instant observer.
//!    Within the rung the order is fixed: failure, then repair, then
//!    decommission, then expansion — a pool that dies and is replaced at
//!    the same instant ends up healthy, and a decommission races an
//!    expansion by draining first.
//! 2. **Departures** — a snapshot or arrival at time `t` observes every
//!    departure with time `<= t`.
//! 3. **Releases** — offlining that finishes at `t` refills the pool buffer
//!    before a snapshot samples it and before an arrival at `t` tries to
//!    allocate from it.
//! 4. **Copy completions** — a mitigation or migration copy that finishes
//!    at `t` ends the VM's degraded-mode window before the snapshot at `t`
//!    observes it. The two copy kinds share one rung; when both collide at
//!    the same instant, reconfiguration completions pop first.
//! 5. **Snapshots** — a snapshot at time `t` runs before an arrival at `t`,
//!    so it never reflects VMs that arrive at the very instant it samples.
//! 6. **Arrivals** — in stream order.
//!
//! Simultaneous departures pop in ascending scheduling sequence (drivers
//! pass the VM's arrival ordinal, preserving trace order even when
//! departure tokens are recycled arena slots), and simultaneous failures in
//! ascending drill-plan order, making the whole stream deterministic.
//! Processing events strictly in this order is what guarantees (by
//! construction) that snapshots never observe the future and that
//! departures after the final arrival are still drained: the queue is only
//! exhausted when *all* sources are.
//!
//! # Data structures
//!
//! [`EventQueue`] is built for replay throughput in O(live VMs) memory.
//! Arrivals are a one-request lookahead over the source cursor — the queue
//! never materializes the trace. Departures — by far the busiest scheduled
//! source (one per placed VM) — live in an **incremental per-second
//! calendar**: a [`BTreeMap`] keyed by departure second whose buckets hold
//! `(seq, token)` entries sorted ascending behind a pop cursor. Arming a
//! departure at placement time is O(log live-seconds + bucket); popping
//! takes the head of the first bucket and frees the bucket when it drains,
//! so the calendar holds only departures of currently-live VMs. The rare
//! sources — failures, lifecycle operations, releases, copy completions —
//! stay on tiny binary heaps, and snapshots are a counter. The retained
//! [`ReferenceEventQueue`] is the original heap-per-source implementation
//! over a materialized trace, kept test-only to prove the streamed queue
//! emits bit-identical merged streams.
//!
//! Snapshot ticks fire every `snapshot_interval` seconds; when the interval
//! does not divide the source's duration, a final tick fires *at* the
//! duration so end-of-trace stranding statistics never miss the tail
//! window.

use crate::source::{ArrivalSource, SourceError, TraceHeader};
use crate::trace::{ClusterTrace, VmRequest};
use std::collections::{BTreeMap, BinaryHeap};

/// One simulation event, tagged with its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A pooled memory device (EMC) fails. `failure_index` indexes the
    /// driver's failure-drill plan (which EMC of which pool group dies); the
    /// queue itself only orders the event. Only delivered when the driver
    /// schedules failures via [`EventQueue::schedule_emc_failure`]. Failures
    /// order *before* departures at equal times, so every observer at `t` —
    /// including the snapshot sharing the timestamp — sees the degraded
    /// window, never a pool that quietly healed between events.
    EmcFailure {
        /// Failure time in seconds since trace start.
        time: u64,
        /// Index of the failure in the driver's drill plan.
        failure_index: usize,
    },
    /// A failed pooled memory device (EMC) is repaired (replaced in its
    /// pool slot). `repair_index` indexes the driver's repair plan (which
    /// EMC of which pool group returns to service). Shares the failure rung
    /// at equal times, popping after failures: a device that dies and is
    /// swapped at the same instant comes back healthy. Only delivered when
    /// the driver schedules repairs via [`EventQueue::schedule_emc_repair`].
    EmcRepair {
        /// Repair time in seconds since trace start.
        time: u64,
        /// Index of the repair in the driver's lifecycle plan.
        repair_index: usize,
    },
    /// A pool group begins a graceful decommission: the group stops
    /// accepting placements and drains its VMs through migration — it never
    /// kills. Shares the failure rung at equal times (after failures and
    /// repairs), so same-instant snapshots and arrivals observe the
    /// draining group. Only delivered when the driver schedules
    /// decommissions via [`EventQueue::schedule_group_decommission`].
    GroupDecommission {
        /// Decommission time in seconds since trace start.
        time: u64,
        /// The pool group being decommissioned.
        group: usize,
    },
    /// A pool group gains capacity live: a new EMC attaches (or a
    /// replacement pod re-onlines a decommissioned slot).
    /// `expansion_index` indexes the driver's expansion plan. Shares the
    /// failure rung at equal times, popping last within it, so a
    /// same-instant decommission drains before the replacement joins. Only
    /// delivered when the driver schedules expansions via
    /// [`EventQueue::schedule_group_expansion`].
    GroupExpansion {
        /// Expansion time in seconds since trace start.
        time: u64,
        /// Index of the expansion in the driver's lifecycle plan.
        expansion_index: usize,
    },
    /// A previously placed VM departs. `token` echoes whatever handle the
    /// driver passed to [`EventQueue::schedule_departure`] — a live-VM arena
    /// slot in the streamed fleet replays, a trace index in the materialized
    /// ones.
    Departure {
        /// Departure time in seconds since trace start.
        time: u64,
        /// The driver's handle for the departing VM.
        token: usize,
    },
    /// An asynchronous pool-slice release completes: capacity that was
    /// offlining becomes reusable. Only delivered when the driver schedules
    /// releases via [`EventQueue::schedule_release`]; the plain cluster
    /// simulator models releases as instantaneous and never does.
    Release {
        /// Completion time in seconds since trace start.
        time: u64,
    },
    /// A QoS-mitigation reconfiguration copy completes: the VM that was
    /// running degraded while its pool memory copied to local DRAM is back
    /// at full speed. Only delivered when the driver schedules completions
    /// via [`EventQueue::schedule_reconfig_done`].
    ReconfigDone {
        /// Copy-completion time in seconds since trace start.
        time: u64,
    },
    /// An evacuation-migration copy completes: a VM that was re-homed after
    /// a failure is done copying its memory to the destination and leaves
    /// its degraded in-migration window. Shares the copy-completion rung
    /// with [`Event::ReconfigDone`] (reconfigurations pop first at identical
    /// instants). Only delivered when the driver schedules completions via
    /// [`EventQueue::schedule_migration_done`].
    MigrationDone {
        /// Copy-completion time in seconds since trace start.
        time: u64,
    },
    /// A periodic stranding snapshot tick.
    Snapshot {
        /// Snapshot time in seconds since trace start.
        time: u64,
    },
    /// The next VM request in the stream arrives. The request itself is
    /// claimed with [`EventQueue::take_arrival`].
    Arrival {
        /// Arrival time in seconds since trace start.
        time: u64,
        /// Ordinal of the arrival in the stream (for in-memory sources,
        /// equal to the request's index in the trace).
        request_index: usize,
    },
}

impl Event {
    /// The event's time in seconds since trace start.
    pub fn time(&self) -> u64 {
        match *self {
            Event::EmcFailure { time, .. }
            | Event::EmcRepair { time, .. }
            | Event::GroupDecommission { time, .. }
            | Event::GroupExpansion { time, .. }
            | Event::Departure { time, .. }
            | Event::Release { time }
            | Event::ReconfigDone { time }
            | Event::MigrationDone { time }
            | Event::Snapshot { time }
            | Event::Arrival { time, .. } => time,
        }
    }

    /// Tie order at equal times — the six-class contract: failures and
    /// lifecycle operations (failure, repair, decommission, expansion — in
    /// that fixed peek order within the shared rung), then departures, then
    /// releases, then copy completions (reconfiguration and migration share
    /// the rung; reconfigurations peek first), then snapshots, then
    /// arrivals.
    fn class(&self) -> u8 {
        match self {
            Event::EmcFailure { .. }
            | Event::EmcRepair { .. }
            | Event::GroupDecommission { .. }
            | Event::GroupExpansion { .. } => 0,
            Event::Departure { .. } => 1,
            Event::Release { .. } => 2,
            Event::ReconfigDone { .. } | Event::MigrationDone { .. } => 3,
            Event::Snapshot { .. } => 4,
            Event::Arrival { .. } => 5,
        }
    }
}

/// A scheduled departure, ordered for a max-heap so the earliest (and, at
/// equal times, lowest `(seq, token)`) pops first. Used by the reference
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Departure {
    time: u64,
    seq: u64,
    token: usize,
}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest departure pops first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq)).then(other.token.cmp(&self.token))
    }
}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The incremental departure calendar: a map from departure second to the
/// bucket of `(seq, token)` entries due that second, each bucket sorted
/// ascending behind a pop cursor. Holds only departures of currently-live
/// VMs — entries are inserted when a VM is placed and freed when its bucket
/// drains.
#[derive(Debug, Default)]
struct DepartureCalendar {
    buckets: BTreeMap<u64, CalendarBucket>,
}

/// One second's departures. `entries[head..]` is sorted ascending and still
/// pending; everything before `head` has popped.
#[derive(Debug, Default)]
struct CalendarBucket {
    entries: Vec<(u64, usize)>,
    head: usize,
}

impl DepartureCalendar {
    /// Arms a departure at `time`. Simultaneous departures pop in ascending
    /// `(seq, token)` order regardless of arming order; an entry armed
    /// "behind" already-popped peers of the same second simply becomes the
    /// bucket's new head, exactly as a heap would deliver it next.
    fn schedule(&mut self, time: u64, seq: u64, token: usize) {
        let bucket = self.buckets.entry(time).or_default();
        let pending = &bucket.entries[bucket.head..];
        let at = bucket.head + pending.partition_point(|&entry| entry <= (seq, token));
        bucket.entries.insert(at, (seq, token));
    }

    /// The earliest pending departure.
    fn peek(&self) -> Option<(u64, u64, usize)> {
        self.buckets.iter().next().map(|(&time, bucket)| {
            let (seq, token) = bucket.entries[bucket.head];
            (time, seq, token)
        })
    }

    /// Pops the earliest pending departure, freeing its bucket when drained.
    fn pop(&mut self) -> Option<(u64, u64, usize)> {
        let mut entry = self.buckets.first_entry()?;
        let time = *entry.key();
        let bucket = entry.get_mut();
        let (seq, token) = bucket.entries[bucket.head];
        bucket.head += 1;
        if bucket.head == bucket.entries.len() {
            entry.remove();
        }
        Some((time, seq, token))
    }
}

/// The next snapshot tick at construction: the first interval multiple,
/// clamped to the horizon so a tail tick fires at the trace duration even
/// when the interval overshoots it. `u64::MAX` means "no more snapshots".
fn initial_snapshot(interval: u64, horizon: u64) -> u64 {
    if interval == 0 || horizon == 0 {
        u64::MAX
    } else {
        interval.min(horizon)
    }
}

/// The tick after a snapshot at `time`: the next interval step, clamped to
/// the horizon (the tail tick); `u64::MAX` once the horizon has fired.
fn advance_snapshot(time: u64, interval: u64, horizon: u64) -> u64 {
    if time >= horizon {
        u64::MAX
    } else {
        time.saturating_add(interval).min(horizon)
    }
}

/// Merges arrivals, scheduled departures, EMC failures, release
/// completions, copy completions, and snapshot ticks into one time-ordered
/// event stream.
///
/// Arrivals stream from an [`ArrivalSource`] (already sorted by arrival
/// time) through a one-request lookahead; departures, release completions,
/// and copy completions are pushed by the caller as VMs are placed, as pool
/// slices start offlining, and as copies start; snapshot ticks fire every
/// `snapshot_interval` seconds up to and including the source's duration,
/// with a final tail tick at the duration when the interval does not divide
/// it (an interval of `0` disables snapshots). Scheduled events past the
/// duration are still delivered — the queue only ends when every source is
/// exhausted.
///
/// When the source errors mid-stream, the queue latches the error, stops
/// immediately (returns `None`), and exposes the cause via
/// [`EventQueue::source_error`] — drivers check it after the drain.
///
/// Internally departures live in an incremental per-second calendar (armed
/// at placement time, holding only live VMs); see the module docs for the
/// layout. [`ReferenceEventQueue`] is the retained original implementation
/// the test suite compares against.
#[derive(Debug)]
pub struct EventQueue<S> {
    source: S,
    /// The next not-yet-delivered arrival, pulled ahead from the source.
    lookahead: Option<VmRequest>,
    /// The most recently delivered arrival, waiting for
    /// [`EventQueue::take_arrival`].
    last_arrival: Option<VmRequest>,
    next_ordinal: usize,
    error: Option<SourceError>,
    failures: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    repairs: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    decommissions: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    expansions: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    departures: DepartureCalendar,
    releases: BinaryHeap<std::cmp::Reverse<u64>>,
    reconfigs: BinaryHeap<std::cmp::Reverse<u64>>,
    migrations: BinaryHeap<std::cmp::Reverse<u64>>,
    next_snapshot: u64,
    snapshot_interval: u64,
    snapshot_horizon: u64,
}

impl<S: ArrivalSource> EventQueue<S> {
    /// Creates the queue over an arrival source with the given snapshot
    /// cadence. The snapshot horizon is the source's
    /// [`TraceHeader::duration`].
    pub fn new(mut source: S, snapshot_interval: u64) -> Self {
        let horizon = source.header().duration;
        let mut error = None;
        let lookahead = match source.next_request() {
            Ok(request) => request,
            Err(e) => {
                error = Some(e);
                None
            }
        };
        EventQueue {
            source,
            lookahead,
            last_arrival: None,
            next_ordinal: 0,
            error,
            failures: BinaryHeap::new(),
            repairs: BinaryHeap::new(),
            decommissions: BinaryHeap::new(),
            expansions: BinaryHeap::new(),
            departures: DepartureCalendar::default(),
            releases: BinaryHeap::new(),
            reconfigs: BinaryHeap::new(),
            migrations: BinaryHeap::new(),
            next_snapshot: initial_snapshot(snapshot_interval, horizon),
            snapshot_interval,
            snapshot_horizon: horizon,
        }
    }

    /// The source's cluster shape and horizon.
    pub fn header(&self) -> &TraceHeader {
        self.source.header()
    }

    /// The latched source error, if the stream died. Drivers check this
    /// after [`EventQueue::next_event`] returns `None` to distinguish a
    /// clean drain from a truncated one.
    pub fn source_error(&self) -> Option<&SourceError> {
        self.error.as_ref()
    }

    /// Claims the request behind the most recent [`Event::Arrival`]. Must be
    /// called at most once per arrival event, before the next call to
    /// [`EventQueue::next_event`].
    ///
    /// # Panics
    ///
    /// Panics when no unclaimed arrival is pending (no arrival delivered
    /// yet, or the request was already taken).
    pub fn take_arrival(&mut self) -> VmRequest {
        self.last_arrival.take().expect("an unclaimed arrival must be pending")
    }

    /// Schedules a departure event (called when a VM is placed). `seq`
    /// breaks ties among simultaneous departures — drivers pass the VM's
    /// arrival ordinal so equal-time departures pop in trace order even when
    /// `token` is a recycled arena slot; `token` is echoed back verbatim in
    /// [`Event::Departure`].
    pub fn schedule_departure(&mut self, time: u64, seq: u64, token: usize) {
        self.departures.schedule(time, seq, token);
    }

    /// Schedules an EMC-failure event (called up front by failure-drill
    /// drivers; `failure_index` identifies the entry in the driver's plan).
    /// Simultaneous failures pop in ascending `failure_index` order.
    pub fn schedule_emc_failure(&mut self, time: u64, failure_index: usize) {
        self.failures.push(std::cmp::Reverse((time, failure_index)));
    }

    /// Schedules an EMC-repair event (called up front by lifecycle drivers;
    /// `repair_index` identifies the entry in the driver's repair plan).
    /// Simultaneous repairs pop in ascending `repair_index` order.
    pub fn schedule_emc_repair(&mut self, time: u64, repair_index: usize) {
        self.repairs.push(std::cmp::Reverse((time, repair_index)));
    }

    /// Schedules a graceful group-decommission event (called up front by
    /// lifecycle drivers; `group` is the pool group to drain). Simultaneous
    /// decommissions pop in ascending `group` order.
    pub fn schedule_group_decommission(&mut self, time: u64, group: usize) {
        self.decommissions.push(std::cmp::Reverse((time, group)));
    }

    /// Schedules a live group-expansion event (called up front by lifecycle
    /// drivers; `expansion_index` identifies the entry in the driver's
    /// expansion plan). Simultaneous expansions pop in ascending
    /// `expansion_index` order.
    pub fn schedule_group_expansion(&mut self, time: u64, expansion_index: usize) {
        self.expansions.push(std::cmp::Reverse((time, expansion_index)));
    }

    /// Schedules a migration-copy completion event (called when an evacuated
    /// VM starts copying to its new home; `time` is when the copy finishes
    /// and the VM leaves its in-migration degraded window).
    pub fn schedule_migration_done(&mut self, time: u64) {
        self.migrations.push(std::cmp::Reverse(time));
    }

    /// Schedules a release-completion event (called when pool slices start
    /// their asynchronous offlining; `time` is when the offlining finishes).
    pub fn schedule_release(&mut self, time: u64) {
        self.releases.push(std::cmp::Reverse(time));
    }

    /// Schedules a reconfiguration-copy completion event (called when a QoS
    /// mitigation starts its pool→local copy; `time` is when the copy
    /// finishes and the VM leaves degraded mode).
    pub fn schedule_reconfig_done(&mut self, time: u64) {
        self.reconfigs.push(std::cmp::Reverse(time));
    }

    /// Pops the next event in time order (ties: failure, departure, release,
    /// copy completion — reconfiguration before migration — snapshot,
    /// arrival). Returns `None` once every source is exhausted, or
    /// immediately after the arrival source errors (see
    /// [`EventQueue::source_error`]).
    pub fn next_event(&mut self) -> Option<Event> {
        #[derive(Clone, Copy)]
        enum Source {
            Failure,
            Repair,
            Decommission,
            Expansion,
            Departure,
            Release,
            Reconfig,
            Migration,
            Snapshot,
            Arrival,
        }

        if self.error.is_some() {
            return None;
        }

        // Sources are inspected in tie order with a strict-less comparison
        // on (time, class) keys, so the earliest-peeked candidate wins every
        // exact tie — including the failure < repair < decommission <
        // expansion order within the shared lifecycle rung and
        // reconfiguration-before-migration within the shared copy-completion
        // class.
        let mut best_key = (u64::MAX, u8::MAX);
        let mut source = None;
        if let Some(&std::cmp::Reverse((time, _))) = self.failures.peek() {
            best_key = (time, 0);
            source = Some(Source::Failure);
        }
        if let Some(&std::cmp::Reverse((time, _))) = self.repairs.peek() {
            if (time, 0) < best_key {
                best_key = (time, 0);
                source = Some(Source::Repair);
            }
        }
        if let Some(&std::cmp::Reverse((time, _))) = self.decommissions.peek() {
            if (time, 0) < best_key {
                best_key = (time, 0);
                source = Some(Source::Decommission);
            }
        }
        if let Some(&std::cmp::Reverse((time, _))) = self.expansions.peek() {
            if (time, 0) < best_key {
                best_key = (time, 0);
                source = Some(Source::Expansion);
            }
        }
        if let Some((time, _, _)) = self.departures.peek() {
            if (time, 1) < best_key {
                best_key = (time, 1);
                source = Some(Source::Departure);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.releases.peek() {
            if (time, 2) < best_key {
                best_key = (time, 2);
                source = Some(Source::Release);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.reconfigs.peek() {
            if (time, 3) < best_key {
                best_key = (time, 3);
                source = Some(Source::Reconfig);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.migrations.peek() {
            if (time, 3) < best_key {
                best_key = (time, 3);
                source = Some(Source::Migration);
            }
        }
        if self.next_snapshot != u64::MAX && (self.next_snapshot, 4) < best_key {
            best_key = (self.next_snapshot, 4);
            source = Some(Source::Snapshot);
        }
        if let Some(request) = &self.lookahead {
            if (request.arrival, 5) < best_key {
                source = Some(Source::Arrival);
            }
        }
        match source? {
            Source::Failure => {
                let std::cmp::Reverse((time, failure_index)) =
                    self.failures.pop().expect("peeked failure");
                Some(Event::EmcFailure { time, failure_index })
            }
            Source::Repair => {
                let std::cmp::Reverse((time, repair_index)) =
                    self.repairs.pop().expect("peeked repair");
                Some(Event::EmcRepair { time, repair_index })
            }
            Source::Decommission => {
                let std::cmp::Reverse((time, group)) =
                    self.decommissions.pop().expect("peeked decommission");
                Some(Event::GroupDecommission { time, group })
            }
            Source::Expansion => {
                let std::cmp::Reverse((time, expansion_index)) =
                    self.expansions.pop().expect("peeked expansion");
                Some(Event::GroupExpansion { time, expansion_index })
            }
            Source::Departure => {
                let (time, _, token) = self.departures.pop().expect("peeked departure");
                Some(Event::Departure { time, token })
            }
            Source::Release => {
                let std::cmp::Reverse(time) = self.releases.pop().expect("peeked release");
                Some(Event::Release { time })
            }
            Source::Reconfig => {
                let std::cmp::Reverse(time) = self.reconfigs.pop().expect("peeked reconfig");
                Some(Event::ReconfigDone { time })
            }
            Source::Migration => {
                let std::cmp::Reverse(time) = self.migrations.pop().expect("peeked migration");
                Some(Event::MigrationDone { time })
            }
            Source::Snapshot => {
                let time = self.next_snapshot;
                self.next_snapshot =
                    advance_snapshot(time, self.snapshot_interval, self.snapshot_horizon);
                Some(Event::Snapshot { time })
            }
            Source::Arrival => {
                let request = self.lookahead.take().expect("peeked arrival");
                let event =
                    Event::Arrival { time: request.arrival, request_index: self.next_ordinal };
                self.next_ordinal += 1;
                self.last_arrival = Some(request);
                match self.source.next_request() {
                    Ok(next) => self.lookahead = next,
                    Err(e) => self.error = Some(e),
                }
                Some(event)
            }
        }
    }
}

/// Total order key: time first, then the event class (see [`Event::class`]).
fn keyed(event: Event) -> (u64, u8) {
    (event.time(), event.class())
}

/// The original heap-per-source event queue over a materialized trace,
/// retained as the test-only reference implementation: every scheduled
/// source is a [`BinaryHeap`] and [`ReferenceEventQueue::next_event`] peeks
/// every source in tie order. The equivalence proptest drives random schedules
/// through this queue and the streamed [`EventQueue`] and asserts
/// bit-identical event streams; `pond-core`'s reference replay uses it the
/// same way to pin the optimized fleet replay. Carries the same
/// tail-snapshot semantics as the streamed queue (a final tick at the trace
/// duration when the interval does not divide it).
#[derive(Debug)]
pub struct ReferenceEventQueue<'a> {
    requests: &'a ClusterTrace,
    next_arrival: usize,
    failures: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    repairs: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    decommissions: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    expansions: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    departures: BinaryHeap<Departure>,
    releases: BinaryHeap<std::cmp::Reverse<u64>>,
    reconfigs: BinaryHeap<std::cmp::Reverse<u64>>,
    migrations: BinaryHeap<std::cmp::Reverse<u64>>,
    next_snapshot: u64,
    snapshot_interval: u64,
    snapshot_horizon: u64,
}

impl<'a> ReferenceEventQueue<'a> {
    /// Creates the reference queue over a trace with the given snapshot
    /// cadence; same contract as [`EventQueue::new`].
    pub fn new(trace: &'a ClusterTrace, snapshot_interval: u64) -> Self {
        debug_assert!(
            trace.requests.windows(2).all(|pair| pair[0].arrival <= pair[1].arrival),
            "trace arrivals must be sorted by time"
        );
        ReferenceEventQueue {
            requests: trace,
            next_arrival: 0,
            failures: BinaryHeap::new(),
            repairs: BinaryHeap::new(),
            decommissions: BinaryHeap::new(),
            expansions: BinaryHeap::new(),
            departures: BinaryHeap::new(),
            releases: BinaryHeap::new(),
            reconfigs: BinaryHeap::new(),
            migrations: BinaryHeap::new(),
            next_snapshot: initial_snapshot(snapshot_interval, trace.duration),
            snapshot_interval,
            snapshot_horizon: trace.duration,
        }
    }

    /// Schedules a departure event; same contract as
    /// [`EventQueue::schedule_departure`].
    pub fn schedule_departure(&mut self, time: u64, seq: u64, token: usize) {
        self.departures.push(Departure { time, seq, token });
    }

    /// Schedules an EMC-failure event; same contract as
    /// [`EventQueue::schedule_emc_failure`].
    pub fn schedule_emc_failure(&mut self, time: u64, failure_index: usize) {
        self.failures.push(std::cmp::Reverse((time, failure_index)));
    }

    /// Schedules an EMC-repair event; same contract as
    /// [`EventQueue::schedule_emc_repair`].
    pub fn schedule_emc_repair(&mut self, time: u64, repair_index: usize) {
        self.repairs.push(std::cmp::Reverse((time, repair_index)));
    }

    /// Schedules a graceful group-decommission event; same contract as
    /// [`EventQueue::schedule_group_decommission`].
    pub fn schedule_group_decommission(&mut self, time: u64, group: usize) {
        self.decommissions.push(std::cmp::Reverse((time, group)));
    }

    /// Schedules a live group-expansion event; same contract as
    /// [`EventQueue::schedule_group_expansion`].
    pub fn schedule_group_expansion(&mut self, time: u64, expansion_index: usize) {
        self.expansions.push(std::cmp::Reverse((time, expansion_index)));
    }

    /// Schedules a migration-copy completion event; same contract as
    /// [`EventQueue::schedule_migration_done`].
    pub fn schedule_migration_done(&mut self, time: u64) {
        self.migrations.push(std::cmp::Reverse(time));
    }

    /// Schedules a release-completion event; same contract as
    /// [`EventQueue::schedule_release`].
    pub fn schedule_release(&mut self, time: u64) {
        self.releases.push(std::cmp::Reverse(time));
    }

    /// Schedules a reconfiguration-copy completion event; same contract as
    /// [`EventQueue::schedule_reconfig_done`].
    pub fn schedule_reconfig_done(&mut self, time: u64) {
        self.reconfigs.push(std::cmp::Reverse(time));
    }

    fn peek_snapshot(&self) -> Option<u64> {
        (self.next_snapshot != u64::MAX).then_some(self.next_snapshot)
    }

    /// Pops the next event in time order; same contract as
    /// [`EventQueue::next_event`].
    pub fn next_event(&mut self) -> Option<Event> {
        // Sources are peeked in tie order with a strict-less comparison, so
        // the earliest-peeked candidate wins every exact tie — including the
        // reconfiguration-before-migration order within the shared
        // copy-completion class.
        let mut best: Option<Event> = None;
        if let Some(&std::cmp::Reverse((time, failure_index))) = self.failures.peek() {
            best = Some(Event::EmcFailure { time, failure_index });
        }
        if let Some(&std::cmp::Reverse((time, repair_index))) = self.repairs.peek() {
            let candidate = Event::EmcRepair { time, repair_index };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse((time, group))) = self.decommissions.peek() {
            let candidate = Event::GroupDecommission { time, group };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse((time, expansion_index))) = self.expansions.peek() {
            let candidate = Event::GroupExpansion { time, expansion_index };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(dep) = self.departures.peek() {
            let candidate = Event::Departure { time: dep.time, token: dep.token };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.releases.peek() {
            let candidate = Event::Release { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.reconfigs.peek() {
            let candidate = Event::ReconfigDone { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.migrations.peek() {
            let candidate = Event::MigrationDone { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(time) = self.peek_snapshot() {
            let candidate = Event::Snapshot { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(request) = self.requests.requests.get(self.next_arrival) {
            let candidate =
                Event::Arrival { time: request.arrival, request_index: self.next_arrival };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        match best? {
            event @ Event::EmcFailure { .. } => {
                self.failures.pop();
                Some(event)
            }
            event @ Event::EmcRepair { .. } => {
                self.repairs.pop();
                Some(event)
            }
            event @ Event::GroupDecommission { .. } => {
                self.decommissions.pop();
                Some(event)
            }
            event @ Event::GroupExpansion { .. } => {
                self.expansions.pop();
                Some(event)
            }
            event @ Event::Departure { .. } => {
                self.departures.pop();
                Some(event)
            }
            event @ Event::Release { .. } => {
                self.releases.pop();
                Some(event)
            }
            event @ Event::ReconfigDone { .. } => {
                self.reconfigs.pop();
                Some(event)
            }
            event @ Event::MigrationDone { .. } => {
                self.migrations.pop();
                Some(event)
            }
            event @ Event::Snapshot { .. } => {
                self.next_snapshot = advance_snapshot(
                    self.next_snapshot,
                    self.snapshot_interval,
                    self.snapshot_horizon,
                );
                Some(event)
            }
            event @ Event::Arrival { .. } => {
                self.next_arrival += 1;
                Some(event)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceCursor;
    use crate::trace::{CustomerId, GuestOs, VmRequest, VmType};
    use cxl_hw::units::Bytes;
    use proptest::prelude::*;

    fn request(id: u64, arrival: u64, lifetime: u64) -> VmRequest {
        VmRequest {
            id,
            arrival,
            lifetime,
            cores: 2,
            memory: Bytes::from_gib(8),
            customer: CustomerId(0),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 0.5,
        }
    }

    fn trace(requests: Vec<VmRequest>, duration: u64) -> ClusterTrace {
        ClusterTrace {
            cluster_id: 0,
            servers: 1,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration,
            requests,
        }
    }

    /// Drains the queue, scheduling each arrival's departure as the simulator
    /// would (claiming the request via the arrival cursor), and returns the
    /// event stream.
    fn drain(trace: &ClusterTrace, snapshot_interval: u64) -> Vec<Event> {
        let mut queue = EventQueue::new(TraceCursor::new(trace), snapshot_interval);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = queue.take_arrival();
                queue.schedule_departure(request.departure(), request_index as u64, request_index);
            }
            events.push(event);
        }
        assert_eq!(queue.source_error(), None);
        events
    }

    #[test]
    fn events_come_out_in_time_order() {
        let t = trace(vec![request(1, 0, 150), request(2, 250, 100)], 400);
        let events = drain(&t, 100);
        let times: Vec<u64> = events.iter().map(Event::time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "stream must be time-ordered: {events:?}");
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Snapshot { time: 100 },
                Event::Departure { time: 150, token: 0 },
                Event::Snapshot { time: 200 },
                Event::Arrival { time: 250, request_index: 1 },
                Event::Snapshot { time: 300 },
                Event::Departure { time: 350, token: 1 },
                Event::Snapshot { time: 400 },
            ]
        );
    }

    #[test]
    fn departures_after_the_last_arrival_are_drained() {
        let t = trace(vec![request(1, 0, 10_000)], 400);
        let events = drain(&t, 0);
        // The departure at 10 000 s lies past both the last arrival and the
        // trace duration, and is still delivered.
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 10_000, token: 0 },
            ]
        );
    }

    #[test]
    fn equal_times_order_departure_snapshot_arrival() {
        // VM 1 departs at exactly t=100; a snapshot ticks at 100; VM 2
        // arrives at 100.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let events = drain(&t, 100);
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 100, token: 0 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, token: 1 },
            ]
        );
    }

    #[test]
    fn equal_times_order_releases_after_departures_and_before_snapshots() {
        // VM 1 departs at exactly t=100; a release completes at 100; a
        // snapshot ticks at 100; VM 2 arrives at 100.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 100);
        queue.schedule_release(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = queue.take_arrival();
                queue.schedule_departure(request.departure(), request_index as u64, request_index);
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 100, token: 0 },
                Event::Release { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, token: 1 },
            ]
        );
    }

    #[test]
    fn reconfig_completions_order_after_releases_and_before_snapshots() {
        // At t=100: a release, a reconfiguration completion, a snapshot, and
        // an arrival all collide; the degraded-mode window must end after the
        // buffer refill and before the snapshot observes the fleet.
        let t = trace(vec![request(1, 100, 50)], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 100);
        queue.schedule_release(100);
        queue.schedule_reconfig_done(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Release { time: 100 },
                Event::ReconfigDone { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 0 },
            ]
        );
    }

    #[test]
    fn reconfig_completions_pop_earliest_first_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        queue.schedule_reconfig_done(10_000);
        queue.schedule_reconfig_done(5_000);
        assert_eq!(queue.next_event(), Some(Event::ReconfigDone { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::ReconfigDone { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn releases_past_the_trace_duration_are_drained() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        queue.schedule_release(10_000);
        queue.schedule_release(5_000);
        assert_eq!(queue.next_event(), Some(Event::Release { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::Release { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn simultaneous_departures_pop_in_request_order() {
        let t = trace(vec![request(1, 0, 100), request(2, 50, 50), request(3, 60, 40)], 100);
        let events = drain(&t, 0);
        let departures: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                Event::Departure { token, .. } => Some(*token),
                _ => None,
            })
            .collect();
        assert_eq!(departures, vec![0, 1, 2], "all depart at t=100, in request order");
    }

    #[test]
    fn simultaneous_departures_order_by_seq_before_token() {
        // Recycled arena slots can invert token order relative to arrival
        // order; the seq key must win the tie so the pop order stays the
        // trace order.
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        // Arrival ordinal 5 landed on recycled slot 0; ordinal 2 on slot 9.
        queue.schedule_departure(50, 5, 0);
        queue.schedule_departure(50, 2, 9);
        assert_eq!(queue.next_event(), Some(Event::Departure { time: 50, token: 9 }));
        assert_eq!(queue.next_event(), Some(Event::Departure { time: 50, token: 0 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn zero_interval_disables_snapshots() {
        let t = trace(vec![request(1, 0, 50)], 1_000_000);
        let events = drain(&t, 0);
        assert!(events.iter().all(|e| !matches!(e, Event::Snapshot { .. })));
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn snapshots_include_a_tail_tick_at_the_trace_duration() {
        // 100 does not divide 250: the final stranding window still gets a
        // snapshot, at the duration itself (regression for the tail window
        // the old queue silently dropped).
        let t = trace(vec![], 250);
        let events = drain(&t, 100);
        assert_eq!(
            events,
            vec![
                Event::Snapshot { time: 100 },
                Event::Snapshot { time: 200 },
                Event::Snapshot { time: 250 },
            ],
        );
        // A divisible horizon is unchanged: no double tick at the end.
        let t = trace(vec![], 200);
        assert_eq!(
            drain(&t, 100),
            vec![Event::Snapshot { time: 100 }, Event::Snapshot { time: 200 }],
        );
    }

    #[test]
    fn an_interval_past_the_duration_still_snapshots_the_whole_trace() {
        // One tick at the duration: the single stranding window is observed
        // exactly once, even though the cadence never fires within it.
        let t = trace(vec![], 250);
        assert_eq!(drain(&t, 400), vec![Event::Snapshot { time: 250 }]);
        // A zero-length trace has no window to observe.
        let t = trace(vec![], 0);
        assert_eq!(drain(&t, 400), vec![]);
    }

    #[test]
    fn failures_order_before_everything_else_at_equal_times() {
        // At t=100: a failure, a departure, a release, both copy-completion
        // kinds, a snapshot, and an arrival all collide. The failure must
        // apply first so every observer at t=100 sees the degraded pool, and
        // the reconfiguration completion must pop before the migration
        // completion within the shared copy rung.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 100);
        queue.schedule_group_expansion(100, 0);
        queue.schedule_group_decommission(100, 2);
        queue.schedule_emc_repair(100, 0);
        queue.schedule_emc_failure(100, 0);
        queue.schedule_release(100);
        queue.schedule_migration_done(100);
        queue.schedule_reconfig_done(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = queue.take_arrival();
                queue.schedule_departure(request.departure(), request_index as u64, request_index);
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::EmcFailure { time: 100, failure_index: 0 },
                Event::EmcRepair { time: 100, repair_index: 0 },
                Event::GroupDecommission { time: 100, group: 2 },
                Event::GroupExpansion { time: 100, expansion_index: 0 },
                Event::Departure { time: 100, token: 0 },
                Event::Release { time: 100 },
                Event::ReconfigDone { time: 100 },
                Event::MigrationDone { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, token: 1 },
            ]
        );
    }

    #[test]
    fn lifecycle_events_pop_in_plan_order_and_drain_past_duration() {
        // Within the shared rung the fixed order is failure < repair <
        // decommission < expansion; within each kind, simultaneous events
        // pop in ascending plan-index (or group) order, and all of them
        // drain even past the trace duration.
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        queue.schedule_emc_repair(5_000, 1);
        queue.schedule_emc_repair(5_000, 0);
        queue.schedule_group_expansion(5_000, 0);
        queue.schedule_group_decommission(5_000, 3);
        queue.schedule_group_decommission(5_000, 1);
        queue.schedule_emc_repair(200, 2);
        assert_eq!(queue.next_event(), Some(Event::EmcRepair { time: 200, repair_index: 2 }));
        assert_eq!(queue.next_event(), Some(Event::EmcRepair { time: 5_000, repair_index: 0 }));
        assert_eq!(queue.next_event(), Some(Event::EmcRepair { time: 5_000, repair_index: 1 }));
        assert_eq!(queue.next_event(), Some(Event::GroupDecommission { time: 5_000, group: 1 }));
        assert_eq!(queue.next_event(), Some(Event::GroupDecommission { time: 5_000, group: 3 }));
        assert_eq!(
            queue.next_event(),
            Some(Event::GroupExpansion { time: 5_000, expansion_index: 0 })
        );
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn simultaneous_failures_pop_in_plan_order_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        queue.schedule_emc_failure(5_000, 1);
        queue.schedule_emc_failure(5_000, 0);
        queue.schedule_emc_failure(200, 3);
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 200, failure_index: 3 }));
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 5_000, failure_index: 0 }));
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 5_000, failure_index: 1 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn migration_completions_pop_earliest_first_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        queue.schedule_migration_done(10_000);
        queue.schedule_migration_done(5_000);
        assert_eq!(queue.next_event(), Some(Event::MigrationDone { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::MigrationDone { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn scheduled_departures_pop_earliest_first() {
        let t = trace(vec![], 0);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        queue.schedule_departure(10, 0, 0);
        queue.schedule_departure(5, 1, 1);
        assert_eq!(queue.next_event(), Some(Event::Departure { time: 5, token: 1 }));
        assert_eq!(queue.next_event(), Some(Event::Departure { time: 10, token: 0 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn rejected_vms_never_fire_departures() {
        // Request 0 is "rejected" (its departure is never armed); requests 1
        // and 2 are placed. The calendar holds only armed departures, so
        // nothing from request 0 ever pops.
        let t = trace(vec![request(1, 0, 500), request(2, 10, 100), request(3, 20, 980)], 1_000);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = queue.take_arrival();
                if request_index != 0 {
                    queue.schedule_departure(
                        request.departure(),
                        request_index as u64,
                        request_index,
                    );
                }
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Arrival { time: 10, request_index: 1 },
                Event::Arrival { time: 20, request_index: 2 },
                Event::Departure { time: 110, token: 1 },
                Event::Departure { time: 1_000, token: 2 },
            ]
        );
    }

    #[test]
    fn zero_lifetime_vm_departs_between_its_own_arrival_and_the_next() {
        // Request 0 lives 0 seconds and departs at t=10 — the same instant
        // requests 1 and 2 arrive. The departure must pop between arrival 0's
        // processing and arrival 1 (departures order before arrivals at equal
        // times).
        let t = trace(vec![request(1, 10, 0), request(2, 10, 0), request(3, 10, 50)], 100);
        let mut queue = EventQueue::new(TraceCursor::new(&t), 0);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = queue.take_arrival();
                queue.schedule_departure(request.departure(), request_index as u64, request_index);
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 10, request_index: 0 },
                Event::Departure { time: 10, token: 0 },
                Event::Arrival { time: 10, request_index: 1 },
                Event::Departure { time: 10, token: 1 },
                Event::Arrival { time: 10, request_index: 2 },
                Event::Departure { time: 60, token: 2 },
            ]
        );
    }

    #[test]
    fn a_source_error_latches_and_stops_the_stream() {
        struct Failing {
            header: TraceHeader,
            yielded: bool,
        }
        impl ArrivalSource for Failing {
            fn header(&self) -> &TraceHeader {
                &self.header
            }
            fn next_request(&mut self) -> Result<Option<VmRequest>, SourceError> {
                if self.yielded {
                    Err(SourceError::Malformed("stream truncated".into()))
                } else {
                    self.yielded = true;
                    Ok(Some(request(1, 0, 50)))
                }
            }
        }
        let source = Failing {
            header: TraceHeader {
                cluster_id: 0,
                servers: 1,
                cores_per_server: 8,
                dram_per_server: Bytes::from_gib(64),
                duration: 100,
            },
            yielded: false,
        };
        let mut queue = EventQueue::new(source, 0);
        // The first arrival pops; pulling its successor hits the error, so
        // the queue stops immediately — before any scheduled departure.
        assert_eq!(queue.next_event(), Some(Event::Arrival { time: 0, request_index: 0 }));
        let r = queue.take_arrival();
        queue.schedule_departure(r.departure(), 0, 0);
        assert_eq!(queue.next_event(), None);
        assert!(matches!(queue.source_error(), Some(SourceError::Malformed(_))));
    }

    /// Drives one random schedule through a queue: `arm[i]` decides whether
    /// arrival `i` schedules its departure (a rejected VM does not), and
    /// `extras` injects failures, releases, copy completions, lifecycle
    /// operations (repairs, decommissions, expansions), and out-of-band
    /// departures (foreign tokens, arbitrary times) before the drain.
    macro_rules! drive_schedule {
        ($queue:expr, $trace:expr, $arm:expr, $extras:expr) => {{
            let mut queue = $queue;
            for (i, &(class, time, index)) in $extras.iter().enumerate() {
                match class {
                    0 => queue.schedule_emc_failure(time, i),
                    1 => queue.schedule_release(time),
                    2 => queue.schedule_reconfig_done(time),
                    3 => queue.schedule_migration_done(time),
                    6 => queue.schedule_emc_repair(time, i),
                    7 => queue.schedule_group_decommission(time, index % 4),
                    8 => queue.schedule_group_expansion(time, i),
                    // Foreign tokens at arbitrary times.
                    4 => {
                        let token = $trace.requests.len() + i;
                        queue.schedule_departure(time, token as u64, token);
                    }
                    // In-range tokens with arbitrary times, including
                    // collisions with armed departures.
                    _ => {
                        let token = index % ($trace.requests.len() + 1);
                        queue.schedule_departure(time, token as u64, token);
                    }
                }
            }
            let mut events = Vec::new();
            while let Some(event) = queue.next_event() {
                if let Event::Arrival { request_index, .. } = event {
                    if $arm[request_index] {
                        let request = &$trace.requests[request_index];
                        queue.schedule_departure(
                            request.departure(),
                            request_index as u64,
                            request_index,
                        );
                    }
                }
                events.push(event);
                assert!(events.len() < 10_000, "runaway drain");
            }
            events
        }};
    }

    proptest! {
        /// The streamed queue and the materialized reference queue emit
        /// bit-identical event streams for arbitrary schedules: colliding
        /// timestamps, zero-lifetime VMs, rejected VMs, and every event
        /// kind, lifecycle operations included.
        #[test]
        fn streamed_queue_matches_the_materialized_reference_queue(
            shape in proptest::collection::vec((0u64..8, 0u64..120, proptest::bool::ANY), 0..24),
            extras in proptest::collection::vec((0u8..9, 0u64..400, 0usize..32), 0..16),
            duration in 0u64..350,
        ) {
            let mut arrival = 0;
            let mut requests = Vec::new();
            let mut arm = Vec::new();
            for (i, &(delta, lifetime, place)) in shape.iter().enumerate() {
                arrival += delta;
                requests.push(request(i as u64, arrival, lifetime));
                arm.push(place);
            }
            let t = trace(requests, duration);
            let streamed =
                drive_schedule!(EventQueue::new(TraceCursor::new(&t), 30), &t, arm, extras);
            let reference = drive_schedule!(ReferenceEventQueue::new(&t, 30), &t, arm, extras);
            prop_assert_eq!(streamed, reference);
        }
    }
}
