//! The time-ordered event core of the cluster simulator.
//!
//! The simulator processes six classes of events: memory-device (EMC)
//! failures (scheduled by failure-drill drivers), VM arrivals (read
//! from the trace), VM departures (scheduled when a VM is placed),
//! asynchronous pool-slice release completions (scheduled by pool-aware
//! drivers such as `pond-core`'s fleet simulator), copy completions —
//! reconfiguration copies (scheduled when a QoS mitigation starts its
//! pool→local copy) and migration copies (scheduled when an evacuated VM
//! starts copying to its new home) — and periodic snapshot ticks.
//! [`EventQueue`] merges the sources into a single stream ordered by time,
//! with a fixed tie order at equal times:
//!
//! 1. **Failures** — a failure at time `t` applies before anything else at
//!    `t`: the departures, snapshots, and arrivals sharing its timestamp all
//!    observe the degraded (post-failure) pool.
//! 2. **Departures** — a snapshot or arrival at time `t` observes every
//!    departure with time `<= t`.
//! 3. **Releases** — offlining that finishes at `t` refills the pool buffer
//!    before a snapshot samples it and before an arrival at `t` tries to
//!    allocate from it.
//! 4. **Copy completions** — a mitigation or migration copy that finishes
//!    at `t` ends the VM's degraded-mode window before the snapshot at `t`
//!    observes it. The two copy kinds share one rung; when both collide at
//!    the same instant, reconfiguration completions pop first.
//! 5. **Snapshots** — a snapshot at time `t` runs before an arrival at `t`,
//!    so it never reflects VMs that arrive at the very instant it samples.
//! 6. **Arrivals** — in trace order.
//!
//! Simultaneous departures pop in ascending request order, and simultaneous
//! failures in ascending drill-plan order, making the whole stream
//! deterministic. Processing events strictly in this order is what
//! guarantees (by construction) that snapshots never observe the future and
//! that departures after the final arrival are still drained: the queue is
//! only exhausted when *all* sources are.
//!
//! # Data structures
//!
//! [`EventQueue`] is built for replay throughput. Departures — by far the
//! busiest scheduled source (one per placed VM) — live in a **pre-sorted
//! arena**: every request's departure time is known from the trace up front,
//! so the queue sorts `(departure_time, request_index)` once at construction
//! and [`EventQueue::schedule_departure`] merely *arms* the request's slot
//! (O(1), no heap rebalancing). Popping scans forward from a cursor that
//! only ever advances, skipping slots whose VM was never placed. Departures
//! that do not match the precomputed time (or index requests outside the
//! trace) fall back to a small overflow heap, preserving the scheduling
//! API exactly. The rare sources — failures, releases, copy completions —
//! stay on tiny binary heaps, and snapshots are a counter. The retained
//! [`ReferenceEventQueue`] is the original five-heap implementation, kept
//! test-only to prove the indexed queue emits bit-identical streams.
//!
//! Snapshot ticks fire every `snapshot_interval` seconds; when the interval
//! does not divide the trace duration, a final tick fires *at* the duration
//! so end-of-trace stranding statistics never miss the tail window.

use crate::trace::ClusterTrace;
use std::collections::BinaryHeap;

/// One simulation event, tagged with its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A pooled memory device (EMC) fails. `failure_index` indexes the
    /// driver's failure-drill plan (which EMC of which pool group dies); the
    /// queue itself only orders the event. Only delivered when the driver
    /// schedules failures via [`EventQueue::schedule_emc_failure`]. Failures
    /// order *before* departures at equal times, so every observer at `t` —
    /// including the snapshot sharing the timestamp — sees the degraded
    /// window, never a pool that quietly healed between events.
    EmcFailure {
        /// Failure time in seconds since trace start.
        time: u64,
        /// Index of the failure in the driver's drill plan.
        failure_index: usize,
    },
    /// A previously placed VM departs. `request_index` indexes the trace's
    /// request list.
    Departure {
        /// Departure time in seconds since trace start.
        time: u64,
        /// Index of the departing VM's request in the trace.
        request_index: usize,
    },
    /// An asynchronous pool-slice release completes: capacity that was
    /// offlining becomes reusable. Only delivered when the driver schedules
    /// releases via [`EventQueue::schedule_release`]; the plain cluster
    /// simulator models releases as instantaneous and never does.
    Release {
        /// Completion time in seconds since trace start.
        time: u64,
    },
    /// A QoS-mitigation reconfiguration copy completes: the VM that was
    /// running degraded while its pool memory copied to local DRAM is back
    /// at full speed. Only delivered when the driver schedules completions
    /// via [`EventQueue::schedule_reconfig_done`].
    ReconfigDone {
        /// Copy-completion time in seconds since trace start.
        time: u64,
    },
    /// An evacuation-migration copy completes: a VM that was re-homed after
    /// a failure is done copying its memory to the destination and leaves
    /// its degraded in-migration window. Shares the copy-completion rung
    /// with [`Event::ReconfigDone`] (reconfigurations pop first at identical
    /// instants). Only delivered when the driver schedules completions via
    /// [`EventQueue::schedule_migration_done`].
    MigrationDone {
        /// Copy-completion time in seconds since trace start.
        time: u64,
    },
    /// A periodic stranding snapshot tick.
    Snapshot {
        /// Snapshot time in seconds since trace start.
        time: u64,
    },
    /// The next VM request in the trace arrives.
    Arrival {
        /// Arrival time in seconds since trace start.
        time: u64,
        /// Index of the arriving VM's request in the trace.
        request_index: usize,
    },
}

impl Event {
    /// The event's time in seconds since trace start.
    pub fn time(&self) -> u64 {
        match *self {
            Event::EmcFailure { time, .. }
            | Event::Departure { time, .. }
            | Event::Release { time }
            | Event::ReconfigDone { time }
            | Event::MigrationDone { time }
            | Event::Snapshot { time }
            | Event::Arrival { time, .. } => time,
        }
    }

    /// Tie order at equal times — the six-class contract: failures, then
    /// departures, then releases, then copy completions (reconfiguration and
    /// migration share the rung; reconfigurations peek first), then
    /// snapshots, then arrivals.
    fn class(&self) -> u8 {
        match self {
            Event::EmcFailure { .. } => 0,
            Event::Departure { .. } => 1,
            Event::Release { .. } => 2,
            Event::ReconfigDone { .. } | Event::MigrationDone { .. } => 3,
            Event::Snapshot { .. } => 4,
            Event::Arrival { .. } => 5,
        }
    }
}

/// A scheduled departure, ordered for a max-heap so the earliest (and, at
/// equal times, lowest request index) pops first. Used by the indexed
/// queue's overflow heap and by the reference queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Departure {
    time: u64,
    request_index: usize,
}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest departure pops first.
        other.time.cmp(&self.time).then(other.request_index.cmp(&self.request_index))
    }
}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The next snapshot tick at construction: the first interval multiple,
/// clamped to the horizon so a tail tick fires at the trace duration even
/// when the interval overshoots it. `u64::MAX` means "no more snapshots".
fn initial_snapshot(interval: u64, horizon: u64) -> u64 {
    if interval == 0 || horizon == 0 {
        u64::MAX
    } else {
        interval.min(horizon)
    }
}

/// The tick after a snapshot at `time`: the next interval step, clamped to
/// the horizon (the tail tick); `u64::MAX` once the horizon has fired.
fn advance_snapshot(time: u64, interval: u64, horizon: u64) -> u64 {
    if time >= horizon {
        u64::MAX
    } else {
        time.saturating_add(interval).min(horizon)
    }
}

/// Merges arrivals, scheduled departures, EMC failures, release
/// completions, copy completions, and snapshot ticks into one time-ordered
/// event stream.
///
/// Arrivals come from the trace (already sorted by arrival time);
/// departures, release completions, and copy completions are pushed by the
/// caller as VMs are placed, as pool slices start offlining, and as copies
/// start; snapshot ticks fire every `snapshot_interval` seconds up to and
/// including the trace duration, with a final tail tick at the duration
/// when the interval does not divide it (an interval of `0` disables
/// snapshots). Scheduled events past the trace duration are still
/// delivered — the queue only ends when every source is exhausted.
///
/// Internally departures are a pre-sorted arena over the trace (armed in
/// O(1) when a VM is placed, popped via a forward-only cursor); see the
/// module docs for the layout. [`ReferenceEventQueue`] is the retained
/// original implementation the test suite compares against.
#[derive(Debug)]
pub struct EventQueue<'a> {
    requests: &'a ClusterTrace,
    next_arrival: usize,
    failures: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    /// `(departure_time, request_index)` for every trace request, sorted.
    dep_sorted: Vec<(u64, u32)>,
    /// request index → its slot in `dep_sorted`.
    dep_slot: Vec<u32>,
    /// Whether the slot's departure has been scheduled and not yet popped.
    dep_armed: Vec<bool>,
    /// First slot that could still hold a live or future departure.
    dep_cursor: usize,
    /// Departures that do not match a precomputed slot (foreign indices or
    /// altered times) — API compatibility with the reference queue.
    dep_overflow: BinaryHeap<Departure>,
    releases: BinaryHeap<std::cmp::Reverse<u64>>,
    reconfigs: BinaryHeap<std::cmp::Reverse<u64>>,
    migrations: BinaryHeap<std::cmp::Reverse<u64>>,
    next_snapshot: u64,
    snapshot_interval: u64,
    snapshot_horizon: u64,
}

impl<'a> EventQueue<'a> {
    /// Creates the queue over a trace with the given snapshot cadence.
    ///
    /// The trace's requests must be sorted by arrival time (as
    /// [`ClusterTrace::validate`] requires); otherwise the merged stream
    /// cannot be time-ordered.
    pub fn new(trace: &'a ClusterTrace, snapshot_interval: u64) -> Self {
        debug_assert!(
            trace.requests.windows(2).all(|pair| pair[0].arrival <= pair[1].arrival),
            "trace arrivals must be sorted by time"
        );
        debug_assert!(
            trace.requests.len() <= u32::MAX as usize,
            "the departure arena indexes requests with u32"
        );
        // The saturating sum matches `VmRequest::departure()` on every trace
        // `ClusterTrace::validate` accepts; a wrapped departure from a
        // malformed trace simply misses its slot and goes to the overflow
        // heap, reproducing the reference queue's behaviour.
        let mut dep_sorted: Vec<(u64, u32)> = trace
            .requests
            .iter()
            .enumerate()
            .map(|(index, request)| {
                (request.arrival.saturating_add(request.lifetime), index as u32)
            })
            .collect();
        dep_sorted.sort_unstable();
        let mut dep_slot = vec![0u32; trace.requests.len()];
        for (slot, &(_, index)) in dep_sorted.iter().enumerate() {
            dep_slot[index as usize] = slot as u32;
        }
        EventQueue {
            requests: trace,
            next_arrival: 0,
            failures: BinaryHeap::new(),
            dep_armed: vec![false; dep_sorted.len()],
            dep_sorted,
            dep_slot,
            dep_cursor: 0,
            dep_overflow: BinaryHeap::new(),
            releases: BinaryHeap::new(),
            reconfigs: BinaryHeap::new(),
            migrations: BinaryHeap::new(),
            next_snapshot: initial_snapshot(snapshot_interval, trace.duration),
            snapshot_interval,
            snapshot_horizon: trace.duration,
        }
    }

    /// Schedules a departure event (called when a VM is placed). Arms the
    /// request's precomputed arena slot in O(1) when `time` matches the
    /// trace's departure time; anything else goes to the overflow heap.
    pub fn schedule_departure(&mut self, time: u64, request_index: usize) {
        if let Some(&slot) = self.dep_slot.get(request_index) {
            let slot = slot as usize;
            if slot >= self.dep_cursor && !self.dep_armed[slot] && self.dep_sorted[slot].0 == time {
                self.dep_armed[slot] = true;
                return;
            }
        }
        self.dep_overflow.push(Departure { time, request_index });
    }

    /// Schedules an EMC-failure event (called up front by failure-drill
    /// drivers; `failure_index` identifies the entry in the driver's plan).
    /// Simultaneous failures pop in ascending `failure_index` order.
    pub fn schedule_emc_failure(&mut self, time: u64, failure_index: usize) {
        self.failures.push(std::cmp::Reverse((time, failure_index)));
    }

    /// Schedules a migration-copy completion event (called when an evacuated
    /// VM starts copying to its new home; `time` is when the copy finishes
    /// and the VM leaves its in-migration degraded window).
    pub fn schedule_migration_done(&mut self, time: u64) {
        self.migrations.push(std::cmp::Reverse(time));
    }

    /// Schedules a release-completion event (called when pool slices start
    /// their asynchronous offlining; `time` is when the offlining finishes).
    pub fn schedule_release(&mut self, time: u64) {
        self.releases.push(std::cmp::Reverse(time));
    }

    /// Schedules a reconfiguration-copy completion event (called when a QoS
    /// mitigation starts its pool→local copy; `time` is when the copy
    /// finishes and the VM leaves degraded mode).
    pub fn schedule_reconfig_done(&mut self, time: u64) {
        self.reconfigs.push(std::cmp::Reverse(time));
    }

    /// The earliest armed arena departure, advancing the cursor past slots
    /// that can never fire.
    ///
    /// A slot can be in one of three states: *armed* (its VM was placed —
    /// the candidate), *dead* (its arrival was already processed without
    /// arming, i.e. the VM was rejected — skip forever), or *pending* (its
    /// arrival has not been processed yet, so it may still arm). A pending
    /// slot's time is at least its own arrival, which is at least the next
    /// arrival's time; once a pending slot lies strictly past the next
    /// arrival, no armed slot at or beyond it can beat that arrival in the
    /// tie order, so the scan stops. The only pending slots the scan must
    /// step over are zero-lifetime requests departing at the very instant
    /// the next arrival fires.
    fn peek_arena_departure(&mut self) -> Option<(u64, u32)> {
        let pending_arrival = self.requests.requests.get(self.next_arrival).map(|r| r.arrival);
        let mut slot = self.dep_cursor;
        let mut compact = true;
        while let Some(&(time, index)) = self.dep_sorted.get(slot) {
            if self.dep_armed[slot] {
                return Some((time, index));
            }
            if (index as usize) < self.next_arrival {
                // Dead: the arrival came and went without placing the VM.
                slot += 1;
                if compact {
                    self.dep_cursor = slot;
                }
                continue;
            }
            match pending_arrival {
                // A zero-lifetime collision: the slot departs at the exact
                // instant the next arrival fires and may still arm. It
                // blocks cursor compaction but not the scan.
                Some(arrival) if time <= arrival => {
                    compact = false;
                    slot += 1;
                }
                // Everything from here on is pending with time strictly
                // past the next arrival: nothing can beat that arrival.
                _ => return None,
            }
        }
        None
    }

    /// Pops the next event in time order (ties: failure, departure, release,
    /// copy completion — reconfiguration before migration — snapshot,
    /// arrival).
    pub fn next_event(&mut self) -> Option<Event> {
        #[derive(Clone, Copy)]
        enum Source {
            Failure,
            DepArena,
            DepOverflow,
            Release,
            Reconfig,
            Migration,
            Snapshot,
            Arrival,
        }

        // Sources are inspected in tie order with a strict-less comparison
        // on (time, class) keys, so the earliest-peeked candidate wins every
        // exact tie — including reconfiguration-before-migration within the
        // shared copy-completion class.
        let mut best_key = (u64::MAX, u8::MAX);
        let mut source = None;
        if let Some(&std::cmp::Reverse((time, _))) = self.failures.peek() {
            best_key = (time, 0);
            source = Some(Source::Failure);
        }
        let arena = self.peek_arena_departure();
        let overflow = self.dep_overflow.peek().map(|d| (d.time, d.request_index));
        let departure = match (arena, overflow) {
            (Some((at, ai)), Some((ot, oi))) if (ot, oi) < (at, ai as usize) => {
                Some((ot, Source::DepOverflow))
            }
            (Some((time, _)), _) => Some((time, Source::DepArena)),
            (None, Some((time, _))) => Some((time, Source::DepOverflow)),
            (None, None) => None,
        };
        if let Some((time, src)) = departure {
            if (time, 1) < best_key {
                best_key = (time, 1);
                source = Some(src);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.releases.peek() {
            if (time, 2) < best_key {
                best_key = (time, 2);
                source = Some(Source::Release);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.reconfigs.peek() {
            if (time, 3) < best_key {
                best_key = (time, 3);
                source = Some(Source::Reconfig);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.migrations.peek() {
            if (time, 3) < best_key {
                best_key = (time, 3);
                source = Some(Source::Migration);
            }
        }
        if self.next_snapshot != u64::MAX && (self.next_snapshot, 4) < best_key {
            best_key = (self.next_snapshot, 4);
            source = Some(Source::Snapshot);
        }
        if let Some(request) = self.requests.requests.get(self.next_arrival) {
            if (request.arrival, 5) < best_key {
                source = Some(Source::Arrival);
            }
        }
        match source? {
            Source::Failure => {
                let std::cmp::Reverse((time, failure_index)) =
                    self.failures.pop().expect("peeked failure");
                Some(Event::EmcFailure { time, failure_index })
            }
            Source::DepArena => {
                let (time, index) = arena.expect("peeked arena departure");
                let slot = self.dep_slot[index as usize] as usize;
                self.dep_armed[slot] = false;
                if slot == self.dep_cursor {
                    self.dep_cursor += 1;
                }
                Some(Event::Departure { time, request_index: index as usize })
            }
            Source::DepOverflow => {
                let departure = self.dep_overflow.pop().expect("peeked overflow departure");
                Some(Event::Departure {
                    time: departure.time,
                    request_index: departure.request_index,
                })
            }
            Source::Release => {
                let std::cmp::Reverse(time) = self.releases.pop().expect("peeked release");
                Some(Event::Release { time })
            }
            Source::Reconfig => {
                let std::cmp::Reverse(time) = self.reconfigs.pop().expect("peeked reconfig");
                Some(Event::ReconfigDone { time })
            }
            Source::Migration => {
                let std::cmp::Reverse(time) = self.migrations.pop().expect("peeked migration");
                Some(Event::MigrationDone { time })
            }
            Source::Snapshot => {
                let time = self.next_snapshot;
                self.next_snapshot =
                    advance_snapshot(time, self.snapshot_interval, self.snapshot_horizon);
                Some(Event::Snapshot { time })
            }
            Source::Arrival => {
                let request = &self.requests.requests[self.next_arrival];
                let event =
                    Event::Arrival { time: request.arrival, request_index: self.next_arrival };
                self.next_arrival += 1;
                Some(event)
            }
        }
    }
}

/// Total order key: time first, then the event class (see [`Event::class`]).
fn keyed(event: Event) -> (u64, u8) {
    (event.time(), event.class())
}

/// The original five-heap event queue, retained as the test-only reference
/// implementation: every scheduled source is a [`BinaryHeap`] and
/// [`ReferenceEventQueue::next_event`] peeks all seven sources in tie order.
/// The equivalence proptest drives random schedules through this queue and
/// [`EventQueue`] and asserts bit-identical event streams; `pond-core`'s
/// reference replay uses it the same way to pin the optimized fleet replay.
/// Carries the same tail-snapshot semantics as the indexed queue (a final
/// tick at the trace duration when the interval does not divide it).
#[derive(Debug)]
pub struct ReferenceEventQueue<'a> {
    requests: &'a ClusterTrace,
    next_arrival: usize,
    failures: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    departures: BinaryHeap<Departure>,
    releases: BinaryHeap<std::cmp::Reverse<u64>>,
    reconfigs: BinaryHeap<std::cmp::Reverse<u64>>,
    migrations: BinaryHeap<std::cmp::Reverse<u64>>,
    next_snapshot: u64,
    snapshot_interval: u64,
    snapshot_horizon: u64,
}

impl<'a> ReferenceEventQueue<'a> {
    /// Creates the reference queue over a trace with the given snapshot
    /// cadence; same contract as [`EventQueue::new`].
    pub fn new(trace: &'a ClusterTrace, snapshot_interval: u64) -> Self {
        debug_assert!(
            trace.requests.windows(2).all(|pair| pair[0].arrival <= pair[1].arrival),
            "trace arrivals must be sorted by time"
        );
        ReferenceEventQueue {
            requests: trace,
            next_arrival: 0,
            failures: BinaryHeap::new(),
            departures: BinaryHeap::new(),
            releases: BinaryHeap::new(),
            reconfigs: BinaryHeap::new(),
            migrations: BinaryHeap::new(),
            next_snapshot: initial_snapshot(snapshot_interval, trace.duration),
            snapshot_interval,
            snapshot_horizon: trace.duration,
        }
    }

    /// Schedules a departure event; same contract as
    /// [`EventQueue::schedule_departure`].
    pub fn schedule_departure(&mut self, time: u64, request_index: usize) {
        self.departures.push(Departure { time, request_index });
    }

    /// Schedules an EMC-failure event; same contract as
    /// [`EventQueue::schedule_emc_failure`].
    pub fn schedule_emc_failure(&mut self, time: u64, failure_index: usize) {
        self.failures.push(std::cmp::Reverse((time, failure_index)));
    }

    /// Schedules a migration-copy completion event; same contract as
    /// [`EventQueue::schedule_migration_done`].
    pub fn schedule_migration_done(&mut self, time: u64) {
        self.migrations.push(std::cmp::Reverse(time));
    }

    /// Schedules a release-completion event; same contract as
    /// [`EventQueue::schedule_release`].
    pub fn schedule_release(&mut self, time: u64) {
        self.releases.push(std::cmp::Reverse(time));
    }

    /// Schedules a reconfiguration-copy completion event; same contract as
    /// [`EventQueue::schedule_reconfig_done`].
    pub fn schedule_reconfig_done(&mut self, time: u64) {
        self.reconfigs.push(std::cmp::Reverse(time));
    }

    fn peek_snapshot(&self) -> Option<u64> {
        (self.next_snapshot != u64::MAX).then_some(self.next_snapshot)
    }

    /// Pops the next event in time order; same contract as
    /// [`EventQueue::next_event`].
    pub fn next_event(&mut self) -> Option<Event> {
        // Sources are peeked in tie order with a strict-less comparison, so
        // the earliest-peeked candidate wins every exact tie — including the
        // reconfiguration-before-migration order within the shared
        // copy-completion class.
        let mut best: Option<Event> = None;
        if let Some(&std::cmp::Reverse((time, failure_index))) = self.failures.peek() {
            best = Some(Event::EmcFailure { time, failure_index });
        }
        if let Some(dep) = self.departures.peek() {
            let candidate = Event::Departure { time: dep.time, request_index: dep.request_index };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.releases.peek() {
            let candidate = Event::Release { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.reconfigs.peek() {
            let candidate = Event::ReconfigDone { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.migrations.peek() {
            let candidate = Event::MigrationDone { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(time) = self.peek_snapshot() {
            let candidate = Event::Snapshot { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(request) = self.requests.requests.get(self.next_arrival) {
            let candidate =
                Event::Arrival { time: request.arrival, request_index: self.next_arrival };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        match best? {
            event @ Event::EmcFailure { .. } => {
                self.failures.pop();
                Some(event)
            }
            event @ Event::Departure { .. } => {
                self.departures.pop();
                Some(event)
            }
            event @ Event::Release { .. } => {
                self.releases.pop();
                Some(event)
            }
            event @ Event::ReconfigDone { .. } => {
                self.reconfigs.pop();
                Some(event)
            }
            event @ Event::MigrationDone { .. } => {
                self.migrations.pop();
                Some(event)
            }
            event @ Event::Snapshot { .. } => {
                self.next_snapshot = advance_snapshot(
                    self.next_snapshot,
                    self.snapshot_interval,
                    self.snapshot_horizon,
                );
                Some(event)
            }
            event @ Event::Arrival { .. } => {
                self.next_arrival += 1;
                Some(event)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CustomerId, GuestOs, VmRequest, VmType};
    use cxl_hw::units::Bytes;
    use proptest::prelude::*;

    fn request(id: u64, arrival: u64, lifetime: u64) -> VmRequest {
        VmRequest {
            id,
            arrival,
            lifetime,
            cores: 2,
            memory: Bytes::from_gib(8),
            customer: CustomerId(0),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 0.5,
        }
    }

    fn trace(requests: Vec<VmRequest>, duration: u64) -> ClusterTrace {
        ClusterTrace {
            cluster_id: 0,
            servers: 1,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration,
            requests,
        }
    }

    /// Drains the queue, scheduling each arrival's departure as the simulator
    /// would, and returns the event stream.
    fn drain(trace: &ClusterTrace, snapshot_interval: u64) -> Vec<Event> {
        let mut queue = EventQueue::new(trace, snapshot_interval);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = &trace.requests[request_index];
                queue.schedule_departure(request.departure(), request_index);
            }
            events.push(event);
        }
        events
    }

    #[test]
    fn events_come_out_in_time_order() {
        let t = trace(vec![request(1, 0, 150), request(2, 250, 100)], 400);
        let events = drain(&t, 100);
        let times: Vec<u64> = events.iter().map(Event::time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "stream must be time-ordered: {events:?}");
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Snapshot { time: 100 },
                Event::Departure { time: 150, request_index: 0 },
                Event::Snapshot { time: 200 },
                Event::Arrival { time: 250, request_index: 1 },
                Event::Snapshot { time: 300 },
                Event::Departure { time: 350, request_index: 1 },
                Event::Snapshot { time: 400 },
            ]
        );
    }

    #[test]
    fn departures_after_the_last_arrival_are_drained() {
        let t = trace(vec![request(1, 0, 10_000)], 400);
        let events = drain(&t, 0);
        // The departure at 10 000 s lies past both the last arrival and the
        // trace duration, and is still delivered.
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 10_000, request_index: 0 },
            ]
        );
    }

    #[test]
    fn equal_times_order_departure_snapshot_arrival() {
        // VM 1 departs at exactly t=100; a snapshot ticks at 100; VM 2
        // arrives at 100.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let events = drain(&t, 100);
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 100, request_index: 0 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, request_index: 1 },
            ]
        );
    }

    #[test]
    fn equal_times_order_releases_after_departures_and_before_snapshots() {
        // VM 1 departs at exactly t=100; a release completes at 100; a
        // snapshot ticks at 100; VM 2 arrives at 100.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let mut queue = EventQueue::new(&t, 100);
        queue.schedule_release(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = &t.requests[request_index];
                queue.schedule_departure(request.departure(), request_index);
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 100, request_index: 0 },
                Event::Release { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, request_index: 1 },
            ]
        );
    }

    #[test]
    fn reconfig_completions_order_after_releases_and_before_snapshots() {
        // At t=100: a release, a reconfiguration completion, a snapshot, and
        // an arrival all collide; the degraded-mode window must end after the
        // buffer refill and before the snapshot observes the fleet.
        let t = trace(vec![request(1, 100, 50)], 100);
        let mut queue = EventQueue::new(&t, 100);
        queue.schedule_release(100);
        queue.schedule_reconfig_done(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Release { time: 100 },
                Event::ReconfigDone { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 0 },
            ]
        );
    }

    #[test]
    fn reconfig_completions_pop_earliest_first_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_reconfig_done(10_000);
        queue.schedule_reconfig_done(5_000);
        assert_eq!(queue.next_event(), Some(Event::ReconfigDone { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::ReconfigDone { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn releases_past_the_trace_duration_are_drained() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_release(10_000);
        queue.schedule_release(5_000);
        assert_eq!(queue.next_event(), Some(Event::Release { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::Release { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn simultaneous_departures_pop_in_request_order() {
        let t = trace(vec![request(1, 0, 100), request(2, 50, 50), request(3, 60, 40)], 100);
        let events = drain(&t, 0);
        let departures: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                Event::Departure { request_index, .. } => Some(*request_index),
                _ => None,
            })
            .collect();
        assert_eq!(departures, vec![0, 1, 2], "all depart at t=100, in request order");
    }

    #[test]
    fn zero_interval_disables_snapshots() {
        let t = trace(vec![request(1, 0, 50)], 1_000_000);
        let events = drain(&t, 0);
        assert!(events.iter().all(|e| !matches!(e, Event::Snapshot { .. })));
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn snapshots_include_a_tail_tick_at_the_trace_duration() {
        // 100 does not divide 250: the final stranding window still gets a
        // snapshot, at the duration itself (regression for the tail window
        // the old queue silently dropped).
        let t = trace(vec![], 250);
        let events = drain(&t, 100);
        assert_eq!(
            events,
            vec![
                Event::Snapshot { time: 100 },
                Event::Snapshot { time: 200 },
                Event::Snapshot { time: 250 },
            ],
        );
        // A divisible horizon is unchanged: no double tick at the end.
        let t = trace(vec![], 200);
        assert_eq!(
            drain(&t, 100),
            vec![Event::Snapshot { time: 100 }, Event::Snapshot { time: 200 }],
        );
    }

    #[test]
    fn an_interval_past_the_duration_still_snapshots_the_whole_trace() {
        // One tick at the duration: the single stranding window is observed
        // exactly once, even though the cadence never fires within it.
        let t = trace(vec![], 250);
        assert_eq!(drain(&t, 400), vec![Event::Snapshot { time: 250 }]);
        // A zero-length trace has no window to observe.
        let t = trace(vec![], 0);
        assert_eq!(drain(&t, 400), vec![]);
    }

    #[test]
    fn failures_order_before_everything_else_at_equal_times() {
        // At t=100: a failure, a departure, a release, both copy-completion
        // kinds, a snapshot, and an arrival all collide. The failure must
        // apply first so every observer at t=100 sees the degraded pool, and
        // the reconfiguration completion must pop before the migration
        // completion within the shared copy rung.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let mut queue = EventQueue::new(&t, 100);
        queue.schedule_emc_failure(100, 0);
        queue.schedule_release(100);
        queue.schedule_migration_done(100);
        queue.schedule_reconfig_done(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = &t.requests[request_index];
                queue.schedule_departure(request.departure(), request_index);
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::EmcFailure { time: 100, failure_index: 0 },
                Event::Departure { time: 100, request_index: 0 },
                Event::Release { time: 100 },
                Event::ReconfigDone { time: 100 },
                Event::MigrationDone { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, request_index: 1 },
            ]
        );
    }

    #[test]
    fn simultaneous_failures_pop_in_plan_order_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_emc_failure(5_000, 1);
        queue.schedule_emc_failure(5_000, 0);
        queue.schedule_emc_failure(200, 3);
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 200, failure_index: 3 }));
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 5_000, failure_index: 0 }));
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 5_000, failure_index: 1 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn migration_completions_pop_earliest_first_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_migration_done(10_000);
        queue.schedule_migration_done(5_000);
        assert_eq!(queue.next_event(), Some(Event::MigrationDone { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::MigrationDone { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn scheduled_departures_pop_earliest_first() {
        // Departures for requests outside the trace take the overflow path
        // and must still merge correctly.
        let t = trace(vec![], 0);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_departure(10, 0);
        queue.schedule_departure(5, 1);
        assert_eq!(queue.next_event(), Some(Event::Departure { time: 5, request_index: 1 }));
        assert_eq!(queue.next_event(), Some(Event::Departure { time: 10, request_index: 0 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn rejected_vms_leave_dead_slots_that_never_fire() {
        // Request 0 is "rejected" (its departure is never scheduled);
        // requests 1 and 2 are placed. The dead slot sits between the two
        // armed ones in departure order and must be skipped.
        let t = trace(vec![request(1, 0, 500), request(2, 10, 100), request(3, 20, 980)], 1_000);
        let mut queue = EventQueue::new(&t, 0);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                if request_index != 0 {
                    let request = &t.requests[request_index];
                    queue.schedule_departure(request.departure(), request_index);
                }
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Arrival { time: 10, request_index: 1 },
                Event::Arrival { time: 20, request_index: 2 },
                Event::Departure { time: 110, request_index: 1 },
                Event::Departure { time: 1_000, request_index: 2 },
            ]
        );
    }

    #[test]
    fn zero_lifetime_vm_departs_between_its_own_arrival_and_the_next() {
        // Request 0 lives 0 seconds and departs at t=10 — the same instant
        // requests 1 and 2 arrive. The departure must pop between arrival 0's
        // processing and arrival 1 (departures order before arrivals at equal
        // times), even though request 2's unarmed slot shares the timestamp.
        let t = trace(vec![request(1, 10, 0), request(2, 10, 0), request(3, 10, 50)], 100);
        let mut queue = EventQueue::new(&t, 0);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = &t.requests[request_index];
                queue.schedule_departure(request.departure(), request_index);
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 10, request_index: 0 },
                Event::Departure { time: 10, request_index: 0 },
                Event::Arrival { time: 10, request_index: 1 },
                Event::Departure { time: 10, request_index: 1 },
                Event::Arrival { time: 10, request_index: 2 },
                Event::Departure { time: 60, request_index: 2 },
            ]
        );
    }

    /// Drives one random schedule through a queue: `arm[i]` decides whether
    /// arrival `i` schedules its departure (a rejected VM does not), and
    /// `extras` injects failures, releases, copy completions, and
    /// API-compatibility departures (foreign indices, altered times) before
    /// the drain.
    macro_rules! drive_schedule {
        ($queue_type:ident, $trace:expr, $arm:expr, $extras:expr) => {{
            let mut queue = $queue_type::new($trace, 30);
            for (i, &(class, time, index)) in $extras.iter().enumerate() {
                match class {
                    0 => queue.schedule_emc_failure(time, i),
                    1 => queue.schedule_release(time),
                    2 => queue.schedule_reconfig_done(time),
                    3 => queue.schedule_migration_done(time),
                    // Foreign request indices exercise the overflow heap.
                    4 => queue.schedule_departure(time, $trace.requests.len() + i),
                    // In-trace indices with arbitrary times: only a time that
                    // happens to match the precomputed departure arms a slot.
                    _ => queue.schedule_departure(time, index % ($trace.requests.len() + 1)),
                }
            }
            let mut events = Vec::new();
            while let Some(event) = queue.next_event() {
                if let Event::Arrival { request_index, .. } = event {
                    if $arm[request_index] {
                        let request = &$trace.requests[request_index];
                        queue.schedule_departure(request.departure(), request_index);
                    }
                }
                events.push(event);
                assert!(events.len() < 10_000, "runaway drain");
            }
            events
        }};
    }

    proptest! {
        /// The indexed queue and the reference queue emit bit-identical
        /// event streams for arbitrary schedules: colliding timestamps,
        /// zero-lifetime VMs, rejected VMs, and all six event classes.
        #[test]
        fn indexed_queue_matches_the_reference_queue(
            shape in proptest::collection::vec((0u64..8, 0u64..120, proptest::bool::ANY), 0..24),
            extras in proptest::collection::vec((0u8..6, 0u64..400, 0usize..32), 0..16),
            duration in 0u64..350,
        ) {
            let mut arrival = 0;
            let mut requests = Vec::new();
            let mut arm = Vec::new();
            for (i, &(delta, lifetime, place)) in shape.iter().enumerate() {
                arrival += delta;
                requests.push(request(i as u64, arrival, lifetime));
                arm.push(place);
            }
            let t = trace(requests, duration);
            let indexed = drive_schedule!(EventQueue, &t, arm, extras);
            let reference = drive_schedule!(ReferenceEventQueue, &t, arm, extras);
            prop_assert_eq!(indexed, reference);
        }
    }
}
