//! The time-ordered event core of the cluster simulator.
//!
//! The simulator processes six classes of events: memory-device (EMC)
//! failures (scheduled by failure-drill drivers), VM arrivals (read
//! from the trace), VM departures (scheduled when a VM is placed),
//! asynchronous pool-slice release completions (scheduled by pool-aware
//! drivers such as `pond-core`'s fleet simulator), copy completions —
//! reconfiguration copies (scheduled when a QoS mitigation starts its
//! pool→local copy) and migration copies (scheduled when an evacuated VM
//! starts copying to its new home) — and periodic snapshot ticks.
//! [`EventQueue`] merges the sources into a single stream ordered by time,
//! with a fixed tie order at equal times:
//!
//! 1. **Failures** — a failure at time `t` applies before anything else at
//!    `t`: the departures, snapshots, and arrivals sharing its timestamp all
//!    observe the degraded (post-failure) pool.
//! 2. **Departures** — a snapshot or arrival at time `t` observes every
//!    departure with time `<= t`.
//! 3. **Releases** — offlining that finishes at `t` refills the pool buffer
//!    before a snapshot samples it and before an arrival at `t` tries to
//!    allocate from it.
//! 4. **Copy completions** — a mitigation or migration copy that finishes
//!    at `t` ends the VM's degraded-mode window before the snapshot at `t`
//!    observes it. The two copy kinds share one rung; when both collide at
//!    the same instant, reconfiguration completions pop first.
//! 5. **Snapshots** — a snapshot at time `t` runs before an arrival at `t`,
//!    so it never reflects VMs that arrive at the very instant it samples.
//! 6. **Arrivals** — in trace order.
//!
//! Simultaneous departures pop in ascending request order, and simultaneous
//! failures in ascending drill-plan order, making the whole stream
//! deterministic. Processing events strictly in this order is what
//! guarantees (by construction) that snapshots never observe the future and
//! that departures after the final arrival are still drained: the queue is
//! only exhausted when *all* sources are.

use crate::trace::ClusterTrace;
use std::collections::BinaryHeap;

/// One simulation event, tagged with its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A pooled memory device (EMC) fails. `failure_index` indexes the
    /// driver's failure-drill plan (which EMC of which pool group dies); the
    /// queue itself only orders the event. Only delivered when the driver
    /// schedules failures via [`EventQueue::schedule_emc_failure`]. Failures
    /// order *before* departures at equal times, so every observer at `t` —
    /// including the snapshot sharing the timestamp — sees the degraded
    /// window, never a pool that quietly healed between events.
    EmcFailure {
        /// Failure time in seconds since trace start.
        time: u64,
        /// Index of the failure in the driver's drill plan.
        failure_index: usize,
    },
    /// A previously placed VM departs. `request_index` indexes the trace's
    /// request list.
    Departure {
        /// Departure time in seconds since trace start.
        time: u64,
        /// Index of the departing VM's request in the trace.
        request_index: usize,
    },
    /// An asynchronous pool-slice release completes: capacity that was
    /// offlining becomes reusable. Only delivered when the driver schedules
    /// releases via [`EventQueue::schedule_release`]; the plain cluster
    /// simulator models releases as instantaneous and never does.
    Release {
        /// Completion time in seconds since trace start.
        time: u64,
    },
    /// A QoS-mitigation reconfiguration copy completes: the VM that was
    /// running degraded while its pool memory copied to local DRAM is back
    /// at full speed. Only delivered when the driver schedules completions
    /// via [`EventQueue::schedule_reconfig_done`].
    ReconfigDone {
        /// Copy-completion time in seconds since trace start.
        time: u64,
    },
    /// An evacuation-migration copy completes: a VM that was re-homed after
    /// a failure is done copying its memory to the destination and leaves
    /// its degraded in-migration window. Shares the copy-completion rung
    /// with [`Event::ReconfigDone`] (reconfigurations pop first at identical
    /// instants). Only delivered when the driver schedules completions via
    /// [`EventQueue::schedule_migration_done`].
    MigrationDone {
        /// Copy-completion time in seconds since trace start.
        time: u64,
    },
    /// A periodic stranding snapshot tick.
    Snapshot {
        /// Snapshot time in seconds since trace start.
        time: u64,
    },
    /// The next VM request in the trace arrives.
    Arrival {
        /// Arrival time in seconds since trace start.
        time: u64,
        /// Index of the arriving VM's request in the trace.
        request_index: usize,
    },
}

impl Event {
    /// The event's time in seconds since trace start.
    pub fn time(&self) -> u64 {
        match *self {
            Event::EmcFailure { time, .. }
            | Event::Departure { time, .. }
            | Event::Release { time }
            | Event::ReconfigDone { time }
            | Event::MigrationDone { time }
            | Event::Snapshot { time }
            | Event::Arrival { time, .. } => time,
        }
    }

    /// Tie order at equal times — the six-class contract: failures, then
    /// departures, then releases, then copy completions (reconfiguration and
    /// migration share the rung; reconfigurations peek first), then
    /// snapshots, then arrivals.
    fn class(&self) -> u8 {
        match self {
            Event::EmcFailure { .. } => 0,
            Event::Departure { .. } => 1,
            Event::Release { .. } => 2,
            Event::ReconfigDone { .. } | Event::MigrationDone { .. } => 3,
            Event::Snapshot { .. } => 4,
            Event::Arrival { .. } => 5,
        }
    }
}

/// A scheduled departure, ordered for a max-heap so the earliest (and, at
/// equal times, lowest request index) pops first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Departure {
    time: u64,
    request_index: usize,
}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest departure pops first.
        other.time.cmp(&self.time).then(other.request_index.cmp(&self.request_index))
    }
}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges arrivals, scheduled departures, release completions,
/// reconfiguration-copy completions, and snapshot ticks into one
/// time-ordered event stream.
///
/// Arrivals come from the trace (already sorted by arrival time);
/// departures, release completions, and reconfiguration completions are
/// pushed by the caller as VMs are placed, as pool slices start offlining,
/// and as mitigations start their copies; snapshot ticks fire every
/// `snapshot_interval` seconds up to and including the trace duration (an
/// interval of `0` disables snapshots). Scheduled events past the trace
/// duration are still delivered — the queue only ends when every source is
/// exhausted.
#[derive(Debug)]
pub struct EventQueue<'a> {
    requests: &'a ClusterTrace,
    next_arrival: usize,
    failures: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    departures: BinaryHeap<Departure>,
    releases: BinaryHeap<std::cmp::Reverse<u64>>,
    reconfigs: BinaryHeap<std::cmp::Reverse<u64>>,
    migrations: BinaryHeap<std::cmp::Reverse<u64>>,
    next_snapshot: u64,
    snapshot_interval: u64,
    snapshot_horizon: u64,
}

impl<'a> EventQueue<'a> {
    /// Creates the queue over a trace with the given snapshot cadence.
    ///
    /// The trace's requests must be sorted by arrival time (as
    /// [`ClusterTrace::validate`] requires); otherwise the merged stream
    /// cannot be time-ordered.
    pub fn new(trace: &'a ClusterTrace, snapshot_interval: u64) -> Self {
        debug_assert!(
            trace.requests.windows(2).all(|pair| pair[0].arrival <= pair[1].arrival),
            "trace arrivals must be sorted by time"
        );
        EventQueue {
            requests: trace,
            next_arrival: 0,
            failures: BinaryHeap::new(),
            departures: BinaryHeap::new(),
            releases: BinaryHeap::new(),
            reconfigs: BinaryHeap::new(),
            migrations: BinaryHeap::new(),
            next_snapshot: snapshot_interval,
            snapshot_interval,
            snapshot_horizon: trace.duration,
        }
    }

    /// Schedules a departure event (called when a VM is placed).
    pub fn schedule_departure(&mut self, time: u64, request_index: usize) {
        self.departures.push(Departure { time, request_index });
    }

    /// Schedules an EMC-failure event (called up front by failure-drill
    /// drivers; `failure_index` identifies the entry in the driver's plan).
    /// Simultaneous failures pop in ascending `failure_index` order.
    pub fn schedule_emc_failure(&mut self, time: u64, failure_index: usize) {
        self.failures.push(std::cmp::Reverse((time, failure_index)));
    }

    /// Schedules a migration-copy completion event (called when an evacuated
    /// VM starts copying to its new home; `time` is when the copy finishes
    /// and the VM leaves its in-migration degraded window).
    pub fn schedule_migration_done(&mut self, time: u64) {
        self.migrations.push(std::cmp::Reverse(time));
    }

    /// Schedules a release-completion event (called when pool slices start
    /// their asynchronous offlining; `time` is when the offlining finishes).
    pub fn schedule_release(&mut self, time: u64) {
        self.releases.push(std::cmp::Reverse(time));
    }

    /// Schedules a reconfiguration-copy completion event (called when a QoS
    /// mitigation starts its pool→local copy; `time` is when the copy
    /// finishes and the VM leaves degraded mode).
    pub fn schedule_reconfig_done(&mut self, time: u64) {
        self.reconfigs.push(std::cmp::Reverse(time));
    }

    fn peek_snapshot(&self) -> Option<u64> {
        (self.snapshot_interval > 0 && self.next_snapshot <= self.snapshot_horizon)
            .then_some(self.next_snapshot)
    }

    /// Pops the next event in time order (ties: failure, departure, release,
    /// copy completion — reconfiguration before migration — snapshot,
    /// arrival).
    pub fn next_event(&mut self) -> Option<Event> {
        // Sources are peeked in tie order with a strict-less comparison, so
        // the earliest-peeked candidate wins every exact tie — including the
        // reconfiguration-before-migration order within the shared
        // copy-completion class.
        let mut best: Option<Event> = None;
        if let Some(&std::cmp::Reverse((time, failure_index))) = self.failures.peek() {
            best = Some(Event::EmcFailure { time, failure_index });
        }
        if let Some(dep) = self.departures.peek() {
            let candidate = Event::Departure { time: dep.time, request_index: dep.request_index };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.releases.peek() {
            let candidate = Event::Release { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.reconfigs.peek() {
            let candidate = Event::ReconfigDone { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(&std::cmp::Reverse(time)) = self.migrations.peek() {
            let candidate = Event::MigrationDone { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(time) = self.peek_snapshot() {
            let candidate = Event::Snapshot { time };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        if let Some(request) = self.requests.requests.get(self.next_arrival) {
            let candidate =
                Event::Arrival { time: request.arrival, request_index: self.next_arrival };
            if best.is_none_or(|b| keyed(candidate) < keyed(b)) {
                best = Some(candidate);
            }
        }
        match best? {
            event @ Event::EmcFailure { .. } => {
                self.failures.pop();
                Some(event)
            }
            event @ Event::Departure { .. } => {
                self.departures.pop();
                Some(event)
            }
            event @ Event::Release { .. } => {
                self.releases.pop();
                Some(event)
            }
            event @ Event::ReconfigDone { .. } => {
                self.reconfigs.pop();
                Some(event)
            }
            event @ Event::MigrationDone { .. } => {
                self.migrations.pop();
                Some(event)
            }
            event @ Event::Snapshot { .. } => {
                self.next_snapshot += self.snapshot_interval;
                Some(event)
            }
            event @ Event::Arrival { .. } => {
                self.next_arrival += 1;
                Some(event)
            }
        }
    }
}

/// Total order key: time first, then the event class (see [`Event::class`]).
fn keyed(event: Event) -> (u64, u8) {
    (event.time(), event.class())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CustomerId, GuestOs, VmRequest, VmType};
    use cxl_hw::units::Bytes;

    fn request(id: u64, arrival: u64, lifetime: u64) -> VmRequest {
        VmRequest {
            id,
            arrival,
            lifetime,
            cores: 2,
            memory: Bytes::from_gib(8),
            customer: CustomerId(0),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 0.5,
        }
    }

    fn trace(requests: Vec<VmRequest>, duration: u64) -> ClusterTrace {
        ClusterTrace {
            cluster_id: 0,
            servers: 1,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration,
            requests,
        }
    }

    /// Drains the queue, scheduling each arrival's departure as the simulator
    /// would, and returns the event stream.
    fn drain(trace: &ClusterTrace, snapshot_interval: u64) -> Vec<Event> {
        let mut queue = EventQueue::new(trace, snapshot_interval);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = &trace.requests[request_index];
                queue.schedule_departure(request.departure(), request_index);
            }
            events.push(event);
        }
        events
    }

    #[test]
    fn events_come_out_in_time_order() {
        let t = trace(vec![request(1, 0, 150), request(2, 250, 100)], 400);
        let events = drain(&t, 100);
        let times: Vec<u64> = events.iter().map(Event::time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "stream must be time-ordered: {events:?}");
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Snapshot { time: 100 },
                Event::Departure { time: 150, request_index: 0 },
                Event::Snapshot { time: 200 },
                Event::Arrival { time: 250, request_index: 1 },
                Event::Snapshot { time: 300 },
                Event::Departure { time: 350, request_index: 1 },
                Event::Snapshot { time: 400 },
            ]
        );
    }

    #[test]
    fn departures_after_the_last_arrival_are_drained() {
        let t = trace(vec![request(1, 0, 10_000)], 400);
        let events = drain(&t, 0);
        // The departure at 10 000 s lies past both the last arrival and the
        // trace duration, and is still delivered.
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 10_000, request_index: 0 },
            ]
        );
    }

    #[test]
    fn equal_times_order_departure_snapshot_arrival() {
        // VM 1 departs at exactly t=100; a snapshot ticks at 100; VM 2
        // arrives at 100.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let events = drain(&t, 100);
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 100, request_index: 0 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, request_index: 1 },
            ]
        );
    }

    #[test]
    fn equal_times_order_releases_after_departures_and_before_snapshots() {
        // VM 1 departs at exactly t=100; a release completes at 100; a
        // snapshot ticks at 100; VM 2 arrives at 100.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let mut queue = EventQueue::new(&t, 100);
        queue.schedule_release(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = &t.requests[request_index];
                queue.schedule_departure(request.departure(), request_index);
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::Departure { time: 100, request_index: 0 },
                Event::Release { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, request_index: 1 },
            ]
        );
    }

    #[test]
    fn reconfig_completions_order_after_releases_and_before_snapshots() {
        // At t=100: a release, a reconfiguration completion, a snapshot, and
        // an arrival all collide; the degraded-mode window must end after the
        // buffer refill and before the snapshot observes the fleet.
        let t = trace(vec![request(1, 100, 50)], 100);
        let mut queue = EventQueue::new(&t, 100);
        queue.schedule_release(100);
        queue.schedule_reconfig_done(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Release { time: 100 },
                Event::ReconfigDone { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 0 },
            ]
        );
    }

    #[test]
    fn reconfig_completions_pop_earliest_first_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_reconfig_done(10_000);
        queue.schedule_reconfig_done(5_000);
        assert_eq!(queue.next_event(), Some(Event::ReconfigDone { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::ReconfigDone { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn releases_past_the_trace_duration_are_drained() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_release(10_000);
        queue.schedule_release(5_000);
        assert_eq!(queue.next_event(), Some(Event::Release { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::Release { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn simultaneous_departures_pop_in_request_order() {
        let t = trace(vec![request(1, 0, 100), request(2, 50, 50), request(3, 60, 40)], 100);
        let events = drain(&t, 0);
        let departures: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                Event::Departure { request_index, .. } => Some(*request_index),
                _ => None,
            })
            .collect();
        assert_eq!(departures, vec![0, 1, 2], "all depart at t=100, in request order");
    }

    #[test]
    fn zero_interval_disables_snapshots() {
        let t = trace(vec![request(1, 0, 50)], 1_000_000);
        let events = drain(&t, 0);
        assert!(events.iter().all(|e| !matches!(e, Event::Snapshot { .. })));
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn snapshots_stop_at_the_trace_duration() {
        let t = trace(vec![], 250);
        let events = drain(&t, 100);
        assert_eq!(
            events,
            vec![Event::Snapshot { time: 100 }, Event::Snapshot { time: 200 }],
            "the 300 s tick lies past the 250 s duration"
        );
    }

    #[test]
    fn failures_order_before_everything_else_at_equal_times() {
        // At t=100: a failure, a departure, a release, both copy-completion
        // kinds, a snapshot, and an arrival all collide. The failure must
        // apply first so every observer at t=100 sees the degraded pool, and
        // the reconfiguration completion must pop before the migration
        // completion within the shared copy rung.
        let t = trace(vec![request(1, 0, 100), request(2, 100, 50)], 100);
        let mut queue = EventQueue::new(&t, 100);
        queue.schedule_emc_failure(100, 0);
        queue.schedule_release(100);
        queue.schedule_migration_done(100);
        queue.schedule_reconfig_done(100);
        let mut events = Vec::new();
        while let Some(event) = queue.next_event() {
            if let Event::Arrival { request_index, .. } = event {
                let request = &t.requests[request_index];
                queue.schedule_departure(request.departure(), request_index);
            }
            events.push(event);
        }
        assert_eq!(
            events,
            vec![
                Event::Arrival { time: 0, request_index: 0 },
                Event::EmcFailure { time: 100, failure_index: 0 },
                Event::Departure { time: 100, request_index: 0 },
                Event::Release { time: 100 },
                Event::ReconfigDone { time: 100 },
                Event::MigrationDone { time: 100 },
                Event::Snapshot { time: 100 },
                Event::Arrival { time: 100, request_index: 1 },
                Event::Departure { time: 150, request_index: 1 },
            ]
        );
    }

    #[test]
    fn simultaneous_failures_pop_in_plan_order_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_emc_failure(5_000, 1);
        queue.schedule_emc_failure(5_000, 0);
        queue.schedule_emc_failure(200, 3);
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 200, failure_index: 3 }));
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 5_000, failure_index: 0 }));
        assert_eq!(queue.next_event(), Some(Event::EmcFailure { time: 5_000, failure_index: 1 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn migration_completions_pop_earliest_first_and_drain_past_duration() {
        let t = trace(vec![], 100);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_migration_done(10_000);
        queue.schedule_migration_done(5_000);
        assert_eq!(queue.next_event(), Some(Event::MigrationDone { time: 5_000 }));
        assert_eq!(queue.next_event(), Some(Event::MigrationDone { time: 10_000 }));
        assert_eq!(queue.next_event(), None);
    }

    #[test]
    fn scheduled_departures_pop_earliest_first() {
        let t = trace(vec![], 0);
        let mut queue = EventQueue::new(&t, 0);
        queue.schedule_departure(10, 0);
        queue.schedule_departure(5, 1);
        assert_eq!(queue.next_event(), Some(Event::Departure { time: 5, request_index: 1 }));
        assert_eq!(queue.next_event(), Some(Event::Departure { time: 10, request_index: 0 }));
        assert_eq!(queue.next_event(), None);
    }
}
