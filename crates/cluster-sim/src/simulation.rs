//! The event-driven cluster simulator (§6.1 "Simulations").
//!
//! The simulator replays a [`ClusterTrace`] against a set of servers, lets a
//! [`MemoryPolicy`] decide every VM's local/pool split, and tracks the
//! quantities the paper's figures need: stranding snapshots, per-server and
//! per-pool peak memory (which determine how much DRAM would have to be
//! provisioned), pool usage in GiB-hours, QoS violations, and pool-release
//! events.
//!
//! Arrivals, departures, and snapshot ticks are processed as one strictly
//! time-ordered stream (see [`crate::event`]): a snapshot at time `t` sees
//! exactly the VMs live at `t`, and every departure — including those after
//! the final arrival — is drained and recorded before the run ends.

use crate::event::{Event, EventQueue};
use crate::scheduler::{align_pool_memory, MemoryPolicy, PlacementEngine};
use crate::source::TraceCursor;
use crate::trace::ClusterTrace;
use cxl_hw::latency::LatencyScenario;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use workload_model::spill::SpillModel;
use workload_model::WorkloadSuite;

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Pool size in CPU sockets (servers are dual-socket, so a 16-socket pool
    /// spans 8 servers). `0` means one pool spanning the whole cluster.
    pub pool_size_sockets: u16,
    /// Emulated CXL latency scenario used to evaluate VM slowdowns.
    pub scenario: LatencyScenario,
    /// Performance degradation margin: slowdowns above this are violations.
    pub pdm: f64,
    /// Whether server DRAM is a hard limit (true for stranding studies,
    /// false for DRAM-requirement analysis).
    pub enforce_memory_capacity: bool,
    /// Whether the QoS monitor converts violating VMs to all-local memory.
    pub qos_mitigation: bool,
    /// The smallest VM size sold, in cores (stranding threshold).
    pub min_vm_cores: u32,
    /// Interval between stranding snapshots, in seconds (`0` disables them).
    pub snapshot_interval: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            pool_size_sockets: 16,
            scenario: LatencyScenario::Increase182,
            pdm: 0.05,
            enforce_memory_capacity: false,
            qos_mitigation: true,
            min_vm_cores: 2,
            snapshot_interval: 86_400,
        }
    }
}

/// One stranding snapshot (the raw data behind Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrandingSample {
    /// Snapshot time in seconds since trace start.
    pub time: u64,
    /// Fraction of the cluster's cores allocated to VMs.
    pub scheduled_cores_fraction: f64,
    /// Stranded memory as a fraction of the cluster's DRAM.
    pub stranded_fraction: f64,
    /// Stranded memory per server (for rack-level aggregation).
    pub per_server_stranded: Vec<Bytes>,
}

/// A pool-release event: a departing VM returned this much pool memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolRelease {
    /// Time of the departure in seconds.
    pub time: u64,
    /// Pool capacity released.
    pub amount: Bytes,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Name of the memory policy that ran.
    pub policy: String,
    /// VMs successfully scheduled.
    pub scheduled_vms: u64,
    /// VMs that could not be placed.
    pub rejected_vms: u64,
    /// Sum over servers of each server's peak local-memory usage.
    pub sum_local_peaks: Bytes,
    /// Sum over pool groups of each group's peak pool usage — the pool DRAM
    /// that actually has to be provisioned.
    pub sum_pool_peaks: Bytes,
    /// Sum over servers of each server's peak pool usage — the DRAM the same
    /// pool-eligible memory would need if it could not be shared.
    pub sum_server_pool_peaks: Bytes,
    /// Sum over servers of each server's peak total (local + pool) usage —
    /// the DRAM a pool-less provisioning would need.
    pub sum_total_peaks: Bytes,
    /// GiB-hours of VM memory served from the pool.
    pub pool_gb_hours: f64,
    /// GiB-hours of VM memory overall.
    pub total_gb_hours: f64,
    /// Number of VMs whose slowdown exceeded the PDM (scheduling mispredictions).
    pub violations: u64,
    /// Number of violating VMs the QoS monitor reconfigured to all-local.
    pub mitigations: u64,
    /// Per-VM slowdowns (for distribution plots).
    pub slowdowns: Vec<f64>,
    /// Stranding snapshots over time.
    pub stranding_samples: Vec<StrandingSample>,
    /// Pool-release events (for offlining-rate analysis).
    pub pool_releases: Vec<PoolRelease>,
}

impl SimulationOutcome {
    /// Fraction of scheduled VMs that violated the PDM.
    pub fn violation_fraction(&self) -> f64 {
        if self.scheduled_vms == 0 {
            0.0
        } else {
            self.violations as f64 / self.scheduled_vms as f64
        }
    }

    /// Average fraction of VM memory served from the pool, weighted by GB-hours.
    pub fn pool_dram_fraction(&self) -> f64 {
        if self.total_gb_hours == 0.0 {
            0.0
        } else {
            self.pool_gb_hours / self.total_gb_hours
        }
    }

    /// DRAM required with pooling.
    ///
    /// Pooling saves the *sharing gain* of the pool-eligible memory: the
    /// difference between what that memory would need as dedicated per-server
    /// DRAM (the sum of per-server pool peaks) and what the shared pools must
    /// actually provision (the sum of per-group pool peaks). Server DIMM
    /// provisioning itself stays SKU-uniform, so the baseline per-server
    /// peaks are reduced by exactly that gain.
    pub fn required_dram(&self) -> Bytes {
        let sharing_gain = self.sum_server_pool_peaks.saturating_sub(self.sum_pool_peaks);
        self.sum_total_peaks.saturating_sub(sharing_gain)
    }

    /// DRAM required without pooling (every server provisioned for its own peak).
    pub fn baseline_dram(&self) -> Bytes {
        self.sum_total_peaks
    }

    /// Relative DRAM requirement (1.0 = no savings, lower is better).
    pub fn required_dram_fraction(&self) -> f64 {
        if self.baseline_dram().is_zero() {
            1.0
        } else {
            self.required_dram().as_u64() as f64 / self.baseline_dram().as_u64() as f64
        }
    }

    /// DRAM savings relative to the pool-less baseline.
    pub fn dram_savings_fraction(&self) -> f64 {
        1.0 - self.required_dram_fraction()
    }
}

#[derive(Debug, Clone, Copy)]
struct ActiveVm {
    server: usize,
    cores: u32,
    pool: Bytes,
    group: usize,
}

/// Debug-build invariant: the incrementally maintained per-group and
/// per-server pool counters equal the sums over the live VMs' effective pool
/// memory. Runs after every event, so any drift is caught at the event that
/// introduced it.
#[cfg(debug_assertions)]
fn assert_pool_conservation(
    active: &std::collections::HashMap<u64, ActiveVm>,
    cur_pool: &[Bytes],
    cur_server_pool: &[Bytes],
) {
    let mut group_sums = vec![Bytes::ZERO; cur_pool.len()];
    let mut server_sums = vec![Bytes::ZERO; cur_server_pool.len()];
    for vm in active.values() {
        group_sums[vm.group] += vm.pool;
        server_sums[vm.server] += vm.pool;
    }
    assert_eq!(group_sums, cur_pool, "per-group pool accounting must match live VMs");
    assert_eq!(server_sums, cur_server_pool, "per-server pool accounting must match live VMs");
}

/// The cluster simulator.
#[derive(Debug)]
pub struct Simulation<P> {
    config: SimulationConfig,
    policy: P,
    suite: WorkloadSuite,
    spill: SpillModel,
}

impl<P: MemoryPolicy> Simulation<P> {
    /// Creates a simulator with the given configuration and memory policy.
    pub fn new(config: SimulationConfig, policy: P) -> Self {
        Simulation {
            config,
            policy,
            suite: WorkloadSuite::standard(),
            spill: SpillModel::default(),
        }
    }

    /// Replaces the workload suite (useful for tests with custom suites).
    pub fn with_suite(mut self, suite: WorkloadSuite) -> Self {
        self.suite = suite;
        self
    }

    /// Read access to the policy (e.g. to inspect learned state after a run).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Runs the simulation over a trace and returns the aggregated outcome.
    pub fn run(&mut self, trace: &ClusterTrace) -> SimulationOutcome {
        let servers_per_group = if self.config.pool_size_sockets == 0 {
            trace.servers.max(1) as usize
        } else {
            ((self.config.pool_size_sockets as usize) / 2).max(1)
        };
        let group_count = (trace.servers as usize).div_ceil(servers_per_group);

        let mut engine = PlacementEngine::new(
            trace.servers,
            trace.cores_per_server,
            trace.dram_per_server,
            self.config.enforce_memory_capacity,
        );

        let mut peak_local = vec![Bytes::ZERO; trace.servers as usize];
        let mut cur_total = vec![Bytes::ZERO; trace.servers as usize];
        let mut peak_total = vec![Bytes::ZERO; trace.servers as usize];
        let mut cur_pool = vec![Bytes::ZERO; group_count];
        let mut peak_pool = vec![Bytes::ZERO; group_count];
        let mut cur_server_pool = vec![Bytes::ZERO; trace.servers as usize];
        let mut peak_server_pool = vec![Bytes::ZERO; trace.servers as usize];

        let mut active: std::collections::HashMap<u64, ActiveVm> = std::collections::HashMap::new();

        let mut outcome = SimulationOutcome {
            policy: self.policy.name().to_string(),
            scheduled_vms: 0,
            rejected_vms: 0,
            sum_local_peaks: Bytes::ZERO,
            sum_pool_peaks: Bytes::ZERO,
            sum_server_pool_peaks: Bytes::ZERO,
            sum_total_peaks: Bytes::ZERO,
            pool_gb_hours: 0.0,
            total_gb_hours: 0.0,
            violations: 0,
            mitigations: 0,
            slowdowns: Vec::with_capacity(trace.len()),
            stranding_samples: Vec::new(),
            pool_releases: Vec::new(),
        };

        let total_cores = trace.total_cores() as f64;
        let total_dram = trace.total_dram().as_u64() as f64;
        let min_vm_cores = self.config.min_vm_cores;

        let take_snapshot =
            |time: u64, engine: &PlacementEngine, outcome: &mut SimulationOutcome| {
                let (used, _total) = engine.core_usage();
                let per_server: Vec<Bytes> =
                    engine.servers().iter().map(|s| s.stranded_memory(min_vm_cores)).collect();
                let stranded: Bytes = per_server.iter().copied().sum();
                outcome.stranding_samples.push(StrandingSample {
                    time,
                    scheduled_cores_fraction: used as f64 / total_cores,
                    stranded_fraction: stranded.as_u64() as f64 / total_dram,
                    per_server_stranded: per_server,
                });
            };

        // The single time-ordered event loop: at equal times departures apply
        // first, then snapshots, then arrivals, so a snapshot at time `t`
        // observes exactly the VMs live at `t`. The queue keeps delivering
        // departures after the last arrival (and past the trace duration), so
        // every pooled VM's release is recorded.
        let mut events = EventQueue::new(TraceCursor::new(trace), self.config.snapshot_interval);
        while let Some(event) = events.next_event() {
            match event {
                // The departure token is the trace index the arrival passed
                // to `schedule_departure` below.
                Event::Departure { time, token } => {
                    let departed = &trace.requests[token];
                    // Departures are only scheduled for placed VMs, so the
                    // lookup can only miss on malformed traces that reuse an
                    // id (the later arrival overwrites the earlier entry);
                    // tolerate the orphan departure rather than abort.
                    let Some(vm) = active.remove(&departed.id) else { continue };
                    engine.remove(vm.server, departed.id, vm.cores);
                    cur_total[vm.server] = cur_total[vm.server].saturating_sub(departed.memory);
                    cur_pool[vm.group] = cur_pool[vm.group].saturating_sub(vm.pool);
                    cur_server_pool[vm.server] = cur_server_pool[vm.server].saturating_sub(vm.pool);
                    if !vm.pool.is_zero() {
                        outcome.pool_releases.push(PoolRelease { time, amount: vm.pool });
                    }
                }
                // This simulator models pool offlining and mitigation copies
                // as instantaneous and runs no failure or lifecycle drills,
                // so it never schedules release-completion, copy-completion,
                // EMC-failure, or lifecycle events; those paths are
                // exercised by `pond-core`'s fleet replays.
                Event::Release { .. }
                | Event::ReconfigDone { .. }
                | Event::MigrationDone { .. }
                | Event::EmcFailure { .. }
                | Event::EmcRepair { .. }
                | Event::GroupDecommission { .. }
                | Event::GroupExpansion { .. } => {}
                Event::Snapshot { time } => take_snapshot(time, &engine, &mut outcome),
                Event::Arrival { time: _, request_index } => {
                    let request = &trace.requests[request_index];

                    // Ask the policy for the local/pool split.
                    let pool = align_pool_memory(request, self.policy.pool_memory(request));
                    let local = request.memory - pool;

                    let Some((server, _placement)) = engine.place(request, local) else {
                        outcome.rejected_vms += 1;
                        continue;
                    };
                    outcome.scheduled_vms += 1;

                    // Ground-truth QoS outcome: how much of the touched
                    // working set spills onto pool memory, and the resulting
                    // slowdown.
                    let workload = self
                        .suite
                        .at(request.workload_index % self.suite.len())
                        .expect("workload index is taken modulo the suite size");
                    let spill_fraction =
                        SpillModel::spill_fraction(request.touched_memory(), local);
                    let slowdown =
                        self.spill.spill_slowdown(workload, self.config.scenario, spill_fraction);
                    let exceeded = slowdown > self.config.pdm;
                    self.policy.observe_outcome(request, slowdown, exceeded);
                    outcome.slowdowns.push(slowdown);

                    let mut effective_pool = pool;
                    if exceeded {
                        outcome.violations += 1;
                        if self.config.qos_mitigation && !pool.is_zero() {
                            // The QoS monitor migrates the VM to all-local memory.
                            let grown = engine.grow_local(server, request.id, pool);
                            debug_assert!(grown, "the VM was just placed on this server");
                            effective_pool = Bytes::ZERO;
                            outcome.mitigations += 1;
                        }
                    }

                    let group = (server / servers_per_group).min(group_count - 1);
                    active.insert(
                        request.id,
                        ActiveVm { server, cores: request.cores, pool: effective_pool, group },
                    );
                    events.schedule_departure(
                        request.departure(),
                        request_index as u64,
                        request_index,
                    );

                    // Update peaks and GiB-hour accounting.
                    cur_total[server] += request.memory;
                    cur_pool[group] += effective_pool;
                    cur_server_pool[server] += effective_pool;
                    peak_total[server] = peak_total[server].max(cur_total[server]);
                    peak_pool[group] = peak_pool[group].max(cur_pool[group]);
                    peak_server_pool[server] =
                        peak_server_pool[server].max(cur_server_pool[server]);
                    let local_now = engine.servers()[server].used_memory();
                    peak_local[server] = peak_local[server].max(local_now);

                    let hours = request.lifetime as f64 / 3600.0;
                    outcome.pool_gb_hours += effective_pool.as_gib_f64() * hours;
                    outcome.total_gb_hours += request.memory.as_gib_f64() * hours;
                }
            }

            // Conservation invariant, checked at every event in debug builds:
            // the incremental group/server pool counters must equal the sums
            // over the currently live VMs.
            #[cfg(debug_assertions)]
            assert_pool_conservation(&active, &cur_pool, &cur_server_pool);
        }
        debug_assert!(active.is_empty(), "every placed VM must have departed");
        debug_assert!(cur_pool.iter().all(|b| b.is_zero()), "all pool memory must be released");

        outcome.sum_local_peaks = peak_local.iter().copied().sum();
        outcome.sum_pool_peaks = peak_pool.iter().copied().sum();
        outcome.sum_server_pool_peaks = peak_server_pool.iter().copied().sum();
        outcome.sum_total_peaks = peak_total.iter().copied().sum();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{AllLocal, FixedPoolFraction};
    use crate::trace::{CustomerId, GuestOs, VmRequest, VmType};
    use crate::tracegen::{ClusterConfig, TraceGenerator};

    fn small_trace() -> ClusterTrace {
        TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
    }

    /// A hand-built request: `untouched_fraction: 1.0` keeps the VM spill-free
    /// under any policy, so manual-trace tests never trip QoS machinery.
    fn manual_request(id: u64, arrival: u64, lifetime: u64, cores: u32, gib: u64) -> VmRequest {
        VmRequest {
            id,
            arrival,
            lifetime,
            cores,
            memory: Bytes::from_gib(gib),
            customer: CustomerId(0),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 1.0,
        }
    }

    fn manual_trace(requests: Vec<VmRequest>, duration: u64) -> ClusterTrace {
        ClusterTrace {
            cluster_id: 0,
            servers: 1,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration,
            requests,
        }
    }

    /// Regression (event core): every pooled VM's departure is drained and its
    /// release recorded — including departures after the final arrival, which
    /// the old drain-at-arrival loop silently dropped.
    #[test]
    fn every_pooled_vm_is_released_exactly_once() {
        // Three VMs whose departures all land after the last arrival.
        let trace = manual_trace(
            vec![
                manual_request(1, 0, 5_000, 2, 8),
                manual_request(2, 10, 5_000, 2, 8),
                manual_request(3, 20, 5_000, 2, 8),
            ],
            1_000,
        );
        let config = SimulationConfig { qos_mitigation: false, ..Default::default() };
        let outcome = Simulation::new(config, FixedPoolFraction::new(0.5)).run(&trace);
        assert_eq!(outcome.scheduled_vms, 3);
        // Each VM pooled 4 GiB; exactly one release per VM, at its departure.
        assert_eq!(outcome.pool_releases.len(), 3);
        for release in &outcome.pool_releases {
            assert_eq!(release.amount, Bytes::from_gib(4));
        }
        let times: Vec<u64> = outcome.pool_releases.iter().map(|r| r.time).collect();
        assert_eq!(times, vec![5_000, 5_010, 5_020]);
    }

    /// Regression (event core) on a generated trace: releases recorded after
    /// the last arrival prove the post-trace drain happens at all.
    #[test]
    fn departures_after_the_last_arrival_are_recorded() {
        let trace = small_trace();
        let config = SimulationConfig { qos_mitigation: false, ..Default::default() };
        let outcome = Simulation::new(config, FixedPoolFraction::new(0.5)).run(&trace);
        let last_arrival = trace.requests.last().expect("non-empty trace").arrival;
        assert!(
            outcome.pool_releases.iter().any(|r| r.time > last_arrival),
            "some VM outlives the last arrival and must still release its pool memory"
        );
    }

    /// Regression (event core): a snapshot at time `t` reflects exactly the
    /// VMs live at `t` — departures later than `t` must not be applied early,
    /// and departures before `t` must not linger.
    #[test]
    fn snapshots_interleave_with_departures_in_time_order() {
        // VM 1 occupies half the server's cores during [0, 150); VM 2 during
        // [250, 350). Snapshots tick at 100/200/300/400.
        let trace = manual_trace(
            vec![manual_request(1, 0, 150, 4, 8), manual_request(2, 250, 100, 4, 8)],
            400,
        );
        let config = SimulationConfig { snapshot_interval: 100, ..Default::default() };
        let outcome = Simulation::new(config, AllLocal).run(&trace);
        let fractions: Vec<(u64, f64)> = outcome
            .stranding_samples
            .iter()
            .map(|s| (s.time, s.scheduled_cores_fraction))
            .collect();
        assert_eq!(
            fractions,
            vec![(100, 0.5), (200, 0.0), (300, 0.5), (400, 0.0)],
            "snapshot at 100 must still see VM 1 (departs at 150); \
             snapshot at 400 must not see VM 2 (departed at 350)"
        );
    }

    /// Satellite: identical trace + config -> identical outcome, across
    /// several seeds and configurations (the event stream is fully ordered,
    /// so there is no source of nondeterminism left).
    #[test]
    fn identical_inputs_produce_identical_outcomes() {
        for seed in [0, 1, 2] {
            let trace = TraceGenerator::new(ClusterConfig::small(), 3).generate(seed);
            for config in [
                SimulationConfig::default(),
                SimulationConfig { enforce_memory_capacity: true, ..Default::default() },
                SimulationConfig { qos_mitigation: false, ..Default::default() },
            ] {
                let a = Simulation::new(config.clone(), FixedPoolFraction::new(0.4)).run(&trace);
                let b = Simulation::new(config, FixedPoolFraction::new(0.4)).run(&trace);
                assert_eq!(a, b, "seed {seed}");
            }
        }
    }

    /// Satellite: pool-memory conservation. The run loop asserts after every
    /// event (debug builds) that the incremental per-group and per-server
    /// pool counters equal the sums over live VMs — this test drives the
    /// paths that mutate them (placement, mitigation, departure) under
    /// configs where the invariant would drift if any update went missing.
    #[test]
    fn pool_accounting_is_conserved_at_every_event() {
        let trace = small_trace();
        for config in [
            SimulationConfig { qos_mitigation: true, ..Default::default() },
            SimulationConfig { qos_mitigation: false, ..Default::default() },
            SimulationConfig {
                enforce_memory_capacity: true,
                pool_size_sockets: 4,
                ..Default::default()
            },
        ] {
            let outcome = Simulation::new(config, FixedPoolFraction::new(0.5)).run(&trace);
            // After the full drain, everything allocated was released.
            let released: Bytes = outcome.pool_releases.iter().map(|r| r.amount).sum();
            let mitigated_or_zero = outcome.scheduled_vms - outcome.pool_releases.len() as u64;
            assert!(released > Bytes::ZERO);
            assert!(
                mitigated_or_zero >= outcome.mitigations,
                "VMs without a release are exactly the zero-pool and mitigated ones"
            );
        }
    }

    #[test]
    fn all_local_policy_uses_no_pool() {
        let trace = small_trace();
        let mut sim = Simulation::new(SimulationConfig::default(), AllLocal);
        let outcome = sim.run(&trace);
        assert!(outcome.scheduled_vms > 0);
        assert_eq!(outcome.sum_pool_peaks, Bytes::ZERO);
        assert_eq!(outcome.pool_dram_fraction(), 0.0);
        assert_eq!(outcome.violations, 0, "all-local VMs never slow down");
        assert!(outcome.dram_savings_fraction().abs() < 1e-9);
        assert_eq!(outcome.policy, "all-local");
    }

    #[test]
    fn fixed_fraction_moves_memory_to_the_pool() {
        let trace = small_trace();
        let config = SimulationConfig { qos_mitigation: false, ..Default::default() };
        // A 40% static split: aggressive enough that VMs with low untouched
        // memory spill far past the PDM, which is exactly Figure 16's lesson.
        let mut sim = Simulation::new(config, FixedPoolFraction::new(0.4));
        let outcome = sim.run(&trace);
        assert!(outcome.scheduled_vms > 0);
        assert!(outcome.sum_pool_peaks > Bytes::ZERO);
        let frac = outcome.pool_dram_fraction();
        assert!((0.25..=0.45).contains(&frac), "pool fraction {frac}");
        // Pooling should reduce the DRAM requirement relative to the baseline.
        assert!(outcome.required_dram() <= outcome.baseline_dram());
        // Some VMs spill and violate the PDM (Figure 16's lesson).
        assert!(outcome.violations > 0);
        assert!(!outcome.pool_releases.is_empty());
    }

    #[test]
    fn qos_mitigation_reduces_pool_usage_but_not_violations() {
        let trace = small_trace();
        let base = SimulationConfig { qos_mitigation: false, ..Default::default() };
        let with_qos = SimulationConfig { qos_mitigation: true, ..Default::default() };
        let out_plain = Simulation::new(base, FixedPoolFraction::new(0.5)).run(&trace);
        let out_qos = Simulation::new(with_qos, FixedPoolFraction::new(0.5)).run(&trace);
        assert_eq!(
            out_plain.violations, out_qos.violations,
            "mispredictions are counted either way"
        );
        assert!(out_qos.mitigations > 0);
        assert_eq!(out_plain.mitigations, 0);
        assert!(out_qos.pool_gb_hours < out_plain.pool_gb_hours);
    }

    #[test]
    fn larger_pools_do_not_increase_the_dram_requirement() {
        let trace = small_trace();
        let mut previous = f64::INFINITY;
        for pool_sockets in [2u16, 8, 16] {
            let config = SimulationConfig {
                pool_size_sockets: pool_sockets,
                qos_mitigation: false,
                ..Default::default()
            };
            let outcome = Simulation::new(config, FixedPoolFraction::new(0.5)).run(&trace);
            let required = outcome.required_dram_fraction();
            assert!(
                required <= previous + 1e-9,
                "pool of {pool_sockets} sockets requires {required}, more than smaller pool {previous}"
            );
            previous = required;
        }
    }

    #[test]
    fn stranding_snapshots_are_recorded() {
        let trace = small_trace();
        let config = SimulationConfig {
            enforce_memory_capacity: true,
            snapshot_interval: 6 * 3600,
            ..Default::default()
        };
        let outcome = Simulation::new(config, AllLocal).run(&trace);
        assert!(outcome.stranding_samples.len() >= 8, "3 days of 6-hour snapshots");
        for s in &outcome.stranding_samples {
            assert!((0.0..=1.0).contains(&s.scheduled_cores_fraction));
            assert!((0.0..=1.0).contains(&s.stranded_fraction));
            assert_eq!(s.per_server_stranded.len(), trace.servers as usize);
        }
    }

    #[test]
    fn outcome_accessors_are_consistent() {
        let trace = small_trace();
        let outcome = Simulation::new(
            SimulationConfig { qos_mitigation: false, ..Default::default() },
            FixedPoolFraction::new(0.2),
        )
        .run(&trace);
        let sharing_gain = outcome.sum_server_pool_peaks.saturating_sub(outcome.sum_pool_peaks);
        assert_eq!(outcome.required_dram(), outcome.sum_total_peaks.saturating_sub(sharing_gain));
        assert!(outcome.sum_server_pool_peaks >= outcome.sum_pool_peaks);
        assert!(
            (outcome.violation_fraction()
                - outcome.violations as f64 / outcome.scheduled_vms as f64)
                .abs()
                < 1e-12
        );
        assert_eq!(outcome.slowdowns.len() as u64, outcome.scheduled_vms);
    }
}
