//! Synthetic VM-trace generation.
//!
//! Substitutes for the paper's production traces (100 clusters, 75 days).
//! The generator is calibrated to the aggregate properties the paper
//! reports rather than to any single trace: per-cluster core utilization
//! between roughly 60% and 95%, a VM size mix dominated by small VMs, a
//! heavy-tailed lifetime distribution, a DRAM-to-core demand that sits below
//! the servers' provisioned ratio (the root cause of stranding), ~50% median
//! untouched memory, and customer-correlated behaviour that makes
//! metadata-based prediction possible.

use crate::source::{ArrivalSource, SourceError, TraceHeader};
use crate::trace::{ClusterTrace, CustomerId, GuestOs, VmRequest, VmType};
use cxl_hw::units::Bytes;
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use workload_model::WorkloadSuite;

/// Static configuration for generating one cluster's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of dual-socket servers.
    pub servers: u32,
    /// Cores per server (both sockets combined).
    pub cores_per_server: u32,
    /// DRAM per server (both sockets combined).
    pub dram_per_server: Bytes,
    /// Trace duration in days.
    pub duration_days: u32,
    /// Target mean core utilization in `[0, 1]`. Individual clusters vary
    /// around this when generating a fleet.
    pub target_utilization: f64,
    /// Number of distinct customers.
    pub customers: u32,
    /// Multiplier applied to every VM's nominal memory (models clusters whose
    /// VM mix is more or less memory-hungry than the type nominal).
    pub memory_demand_factor: f64,
    /// Optional day at which the VM mix shifts towards compute-heavy VMs
    /// (reproduces the stranding jump around day 36 in Figure 2b).
    pub workload_shift_day: Option<u32>,
}

impl ClusterConfig {
    /// A production-like cluster: 40 dual-socket servers with 48 cores and
    /// 384 GiB each, traced for 75 days.
    pub fn azure_like() -> Self {
        ClusterConfig {
            servers: 40,
            cores_per_server: 48,
            dram_per_server: Bytes::from_gib(384),
            duration_days: 75,
            target_utilization: 0.80,
            customers: 60,
            memory_demand_factor: 1.6,
            workload_shift_day: None,
        }
    }

    /// A small configuration for unit tests and examples: 16 servers, 4 days.
    ///
    /// Sized so a trace holds a few hundred VMs — large enough that the
    /// distributional properties the tests assert (VM shape mix, untouched
    /// medians, spill-induced QoS violations) hold with margin at the fixed
    /// default seed, while keeping the full test suite fast.
    pub fn small() -> Self {
        ClusterConfig {
            servers: 16,
            cores_per_server: 48,
            dram_per_server: Bytes::from_gib(384),
            duration_days: 4,
            target_utilization: 0.8,
            customers: 16,
            memory_demand_factor: 1.6,
            workload_shift_day: None,
        }
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.duration_days as u64 * 86_400
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::azure_like()
    }
}

/// Per-customer behaviour: which workloads they run, how much of their rented
/// memory they typically leave untouched, and which VM types they favour.
#[derive(Debug, Clone)]
struct CustomerModel {
    untouched_mean: f64,
    workload_indices: Vec<usize>,
    preferred_type: VmType,
    guest_os: GuestOs,
    region: u8,
}

/// Generates [`ClusterTrace`]s.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: ClusterConfig,
    clusters: u32,
    suite_len: usize,
    seed: u64,
}

impl TraceGenerator {
    /// Default base seed, matching the workload suite's standard seed.
    pub const DEFAULT_SEED: u64 = WorkloadSuite::STANDARD_SEED;

    /// Creates a generator for `clusters` clusters sharing a base config.
    pub fn new(config: ClusterConfig, clusters: u32) -> Self {
        TraceGenerator { config, clusters, suite_len: 158, seed: Self::DEFAULT_SEED }
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of clusters this generator produces.
    pub fn cluster_count(&self) -> u32 {
        self.clusters
    }

    /// The base configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    fn customer_models(&self, rng: &mut Pcg64, cluster_untouched_bias: f64) -> Vec<CustomerModel> {
        (0..self.config.customers)
            .map(|_| {
                // Customer untouched-memory means cluster around 0.5 with wide
                // spread; the cluster-level bias shifts whole clusters.
                let raw: f64 = rng.gen::<f64>();
                let untouched_mean = (0.15 + 0.7 * raw + cluster_untouched_bias).clamp(0.02, 0.95);
                let n_workloads = rng.gen_range(1..=3);
                let workload_indices =
                    (0..n_workloads).map(|_| rng.gen_range(0..self.suite_len)).collect();
                let preferred_type = match rng.gen_range(0..10) {
                    0..=4 => VmType::GeneralPurpose,
                    5..=6 => VmType::MemoryOptimized,
                    7..=8 => VmType::ComputeOptimized,
                    _ => VmType::Burstable,
                };
                let guest_os =
                    if rng.gen::<f64>() < 0.7 { GuestOs::Linux } else { GuestOs::Windows };
                CustomerModel {
                    untouched_mean,
                    workload_indices,
                    preferred_type,
                    guest_os,
                    region: rng.gen_range(0..8),
                }
            })
            .collect()
    }

    fn sample_cores(rng: &mut Pcg64) -> u32 {
        match rng.gen_range(0..100) {
            0..=14 => 1,
            15..=39 => 2,
            40..=64 => 4,
            65..=84 => 8,
            85..=97 => 16,
            _ => 32,
        }
    }

    /// Lifetime-class weights and the range each class draws from, mirroring
    /// the short-dominated but heavy-tailed lifetime mix of cloud VMs.
    const LIFETIME_CLASSES: [(f64, u64, u64); 4] = [
        (0.40, 5 * 60, 3600),            // minutes-scale
        (0.30, 3600, 12 * 3600),         // hours-scale
        (0.20, 12 * 3600, 3 * 86_400),   // day-scale
        (0.10, 3 * 86_400, 28 * 86_400), // long-running
    ];

    fn sample_lifetime_in_class(class: usize, rng: &mut Pcg64) -> u64 {
        let (_, lo, hi) = Self::LIFETIME_CLASSES[class];
        rng.gen_range(lo..hi)
    }

    fn sample_lifetime(rng: &mut Pcg64) -> u64 {
        let mut pick: f64 = rng.gen();
        for (class, (weight, _, _)) in Self::LIFETIME_CLASSES.iter().enumerate() {
            if pick < *weight {
                return Self::sample_lifetime_in_class(class, rng);
            }
            pick -= weight;
        }
        Self::sample_lifetime_in_class(Self::LIFETIME_CLASSES.len() - 1, rng)
    }

    /// Samples the lifetime of a VM that is already running at the start of
    /// the trace. A snapshot of a cluster is length-biased: long-running VMs
    /// are over-represented in proportion to their lifetime, which is what
    /// keeps the steady-state population stable from t = 0.
    fn sample_inflight_lifetime(rng: &mut Pcg64) -> u64 {
        let class_means: Vec<f64> =
            Self::LIFETIME_CLASSES.iter().map(|(w, lo, hi)| w * (lo + hi) as f64 / 2.0).collect();
        let total: f64 = class_means.iter().sum();
        let mut pick: f64 = rng.gen::<f64>() * total;
        for (class, mass) in class_means.iter().enumerate() {
            if pick < *mass {
                return Self::sample_lifetime_in_class(class, rng);
            }
            pick -= mass;
        }
        Self::sample_lifetime_in_class(Self::LIFETIME_CLASSES.len() - 1, rng)
    }

    /// Mean values of the sampling distributions, used to derive the arrival
    /// rate that hits the target utilization.
    fn mean_cores() -> f64 {
        0.15 * 1.0 + 0.25 * 2.0 + 0.25 * 4.0 + 0.20 * 8.0 + 0.13 * 16.0 + 0.02 * 32.0
    }

    fn mean_lifetime_secs() -> f64 {
        Self::LIFETIME_CLASSES.iter().map(|(w, lo, hi)| w * (lo + hi) as f64 / 2.0).sum()
    }

    /// Samples one VM request. Factored out of the generation loop so the
    /// materialized and streamed paths share the exact RNG draw sequence.
    fn sample_request(
        rng: &mut Pcg64,
        customers: &[CustomerModel],
        memory_factor: f64,
        shift_secs: Option<u64>,
        id: u64,
        arrival: u64,
        lifetime: u64,
    ) -> VmRequest {
        let customer_idx = rng.gen_range(0..customers.len());
        let customer = &customers[customer_idx];
        let cores = Self::sample_cores(rng);
        let shifted = shift_secs.is_some_and(|s| arrival >= s);
        // After a workload shift the mix becomes compute-heavy: less
        // memory per core, which increases stranding.
        let vm_type = if shifted && rng.gen::<f64>() < 0.6 {
            VmType::ComputeOptimized
        } else if rng.gen::<f64>() < 0.7 {
            customer.preferred_type
        } else {
            VmType::ALL[rng.gen_range(0..VmType::ALL.len())]
        };
        let gib = ((cores as f64
            * vm_type.gib_per_core() as f64
            * memory_factor
            * rng.gen_range(0.8..1.25))
        .round() as u64)
            .max(1);
        let untouched_fraction =
            (customer.untouched_mean + rng.gen_range(-0.15..0.15)).clamp(0.0, 0.98);
        let workload_index =
            customer.workload_indices[rng.gen_range(0..customer.workload_indices.len())];
        VmRequest {
            id,
            arrival,
            lifetime,
            cores,
            memory: Bytes::from_gib(gib),
            customer: CustomerId(customer_idx as u32),
            vm_type,
            guest_os: customer.guest_os,
            region: customer.region,
            workload_index,
            untouched_fraction,
        }
    }

    /// Runs the per-cluster prelude: seeds the RNG, draws the cluster-level
    /// variation, and derives the arrival process. The returned RNG sits
    /// exactly where the request-sampling loop expects it.
    fn plan(&self, cluster: u32) -> ClusterPlan {
        assert!(cluster < self.clusters, "cluster index out of range");
        let mut rng = Pcg64::seed_from_u64(
            self.seed ^ (cluster as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );

        // Per-cluster variation: utilization, memory hunger, untouched bias.
        let utilization = if self.clusters == 1 {
            self.config.target_utilization
        } else {
            (self.config.target_utilization + rng.gen_range(-0.18..0.15)).clamp(0.55, 0.97)
        };
        let memory_factor = self.config.memory_demand_factor * rng.gen_range(0.8..1.2);
        let untouched_bias = rng.gen_range(-0.12..0.12);
        let customers = self.customer_models(&mut rng, untouched_bias);

        let total_cores = self.config.servers as u64 * self.config.cores_per_server as u64;
        let target_concurrent_cores = utilization * total_cores as f64;
        // Little's law: arrival rate (VMs/s) = concurrent VMs / mean lifetime.
        let arrival_rate =
            target_concurrent_cores / Self::mean_cores() / Self::mean_lifetime_secs();
        // Steady-state population seeded at t = 0 so the cluster starts warm
        // instead of ramping for days.
        let initial_vms = (target_concurrent_cores / Self::mean_cores()).round() as u64;

        ClusterPlan {
            rng,
            customers,
            memory_factor,
            shift_secs: self.config.workload_shift_day.map(|d| d as u64 * 86_400),
            arrival_rate,
            initial_vms,
        }
    }

    /// Streams the trace for one cluster index lazily as an
    /// [`ArrivalSource`]: each request is sampled on demand, so a sweep grid
    /// point holds O(1) generator state instead of the whole trace. Emits the
    /// exact request sequence of [`TraceGenerator::generate`] (which is
    /// implemented on top of this source).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is outside `0..cluster_count()`.
    pub fn stream(&self, cluster: u32) -> GeneratorSource {
        GeneratorSource {
            header: TraceHeader {
                cluster_id: cluster,
                servers: self.config.servers,
                cores_per_server: self.config.cores_per_server,
                dram_per_server: self.config.dram_per_server,
                duration: self.config.duration_secs(),
            },
            plan: self.plan(cluster),
            next_id: 0,
            emitted_initial: 0,
            t: 0.0,
            done: false,
        }
    }

    /// Generates the trace for one cluster index (deterministic per index)
    /// by materializing [`TraceGenerator::stream`].
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is outside `0..cluster_count()`.
    pub fn generate(&self, cluster: u32) -> ClusterTrace {
        let mut source = self.stream(cluster);
        let mut requests = Vec::new();
        while let Some(request) = source.next_request().expect("generator sources never fail") {
            requests.push(request);
        }
        // The stream is already (arrival, id)-sorted — the initial population
        // all arrives at t = 0 in id order and the Poisson clock only moves
        // forward — so this stable sort is a no-op kept as belt and braces.
        requests.sort_by_key(|r| (r.arrival, r.id));
        ClusterTrace {
            cluster_id: cluster,
            servers: self.config.servers,
            cores_per_server: self.config.cores_per_server,
            dram_per_server: self.config.dram_per_server,
            duration: self.config.duration_secs(),
            requests,
        }
    }

    /// Generates every cluster's trace.
    pub fn generate_all(&self) -> Vec<ClusterTrace> {
        (0..self.clusters).map(|c| self.generate(c)).collect()
    }
}

/// The shared per-cluster generation state: the RNG positioned after the
/// prelude draws, the sampled cluster-level parameters, and the derived
/// arrival process.
#[derive(Debug, Clone)]
struct ClusterPlan {
    rng: Pcg64,
    customers: Vec<CustomerModel>,
    memory_factor: f64,
    shift_secs: Option<u64>,
    arrival_rate: f64,
    initial_vms: u64,
}

/// A lazily generated synthetic trace (see [`TraceGenerator::stream`]):
/// the in-flight population at t = 0 followed by Poisson arrivals, sampled
/// one request per [`ArrivalSource::next_request`] call.
#[derive(Debug, Clone)]
pub struct GeneratorSource {
    header: TraceHeader,
    plan: ClusterPlan,
    next_id: u64,
    emitted_initial: u64,
    t: f64,
    done: bool,
}

impl ArrivalSource for GeneratorSource {
    fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn next_request(&mut self) -> Result<Option<VmRequest>, SourceError> {
        if self.done {
            return Ok(None);
        }
        let plan = &mut self.plan;
        // The in-flight population first: arrival 0, length-biased lifetimes.
        if self.emitted_initial < plan.initial_vms {
            self.emitted_initial += 1;
            let lifetime = TraceGenerator::sample_inflight_lifetime(&mut plan.rng);
            // Residual lifetime of an in-flight VM.
            let residual = plan.rng.gen_range(1..lifetime.max(2));
            let id = self.next_id;
            self.next_id += 1;
            return Ok(Some(TraceGenerator::sample_request(
                &mut plan.rng,
                &plan.customers,
                plan.memory_factor,
                plan.shift_secs,
                id,
                0,
                residual,
            )));
        }
        // Then Poisson arrivals until the clock passes the horizon.
        let u: f64 = plan.rng.gen_range(1e-12..1.0);
        self.t += -u.ln() / plan.arrival_rate;
        let arrival = self.t as u64;
        if arrival >= self.header.duration {
            self.done = true;
            return Ok(None);
        }
        let lifetime = TraceGenerator::sample_lifetime(&mut plan.rng);
        let id = self.next_id;
        self.next_id += 1;
        Ok(Some(TraceGenerator::sample_request(
            &mut plan.rng,
            &plan.customers,
            plan.memory_factor,
            plan.shift_secs,
            id,
            arrival,
            lifetime,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_traces_are_valid_and_deterministic() {
        let generator = TraceGenerator::new(ClusterConfig::small(), 2);
        let a = generator.generate(0);
        let b = generator.generate(0);
        assert_eq!(a, b, "generation must be deterministic");
        assert_eq!(a.validate(), Ok(()));
        assert!(a.len() > 50, "a 3-day trace should have a meaningful number of VMs: {}", a.len());
        let other = generator.generate(1);
        assert_ne!(a.requests.len(), 0);
        assert_ne!(a, other, "clusters must differ");
    }

    #[test]
    fn utilization_is_near_the_target_for_a_single_cluster() {
        let config = ClusterConfig { duration_days: 10, ..ClusterConfig::small() };
        let trace = TraceGenerator::new(config, 1).generate(0);
        let util = trace.mean_core_utilization();
        assert!(
            (0.6..=1.0).contains(&util),
            "utilization should be near the 0.8 target, got {util}"
        );
    }

    #[test]
    fn untouched_memory_has_a_production_like_distribution() {
        // §3.2: the median untouched fraction is about 50%, and most VMs have
        // at least some untouched memory.
        let generator = TraceGenerator::new(ClusterConfig::small(), 4);
        let mut untouched: Vec<f64> = generator
            .generate_all()
            .iter()
            .flat_map(|t| t.requests.iter().map(|r| r.untouched_fraction))
            .collect();
        untouched.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = untouched[untouched.len() / 2];
        assert!((0.35..=0.65).contains(&median), "median untouched {median}");
        let over20 = untouched.iter().filter(|&&u| u > 0.2).count() as f64 / untouched.len() as f64;
        assert!(over20 > 0.5, "most VMs should have >20% untouched, got {over20}");
    }

    #[test]
    fn vm_shapes_are_reasonable() {
        let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
        for r in &trace.requests {
            assert!(r.cores >= 1 && r.cores <= 32);
            assert!(r.memory >= Bytes::from_gib(1));
            assert!(r.memory <= Bytes::from_gib(32 * 8 * 3), "{}", r.memory);
            assert!(r.workload_index < 158);
        }
        // Most VMs fit on a single NUMA node (§3.1: almost all VMs fit).
        let node_cores = trace.cores_per_server / 2;
        let fit = trace.requests.iter().filter(|r| r.cores <= node_cores).count() as f64
            / trace.len() as f64;
        assert!(fit > 0.95, "VMs fitting one NUMA node: {fit}");
    }

    #[test]
    fn customers_have_correlated_untouched_memory() {
        // The variance of per-customer means should be much larger than
        // expected if VMs were independent draws from the global pool —
        // that correlation is what the untouched-memory model learns.
        let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
        use std::collections::BTreeMap;
        let mut per_customer: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for r in &trace.requests {
            per_customer.entry(r.customer.0).or_default().push(r.untouched_fraction);
        }
        let customer_means: Vec<f64> = per_customer
            .values()
            .filter(|v| v.len() >= 5)
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        assert!(customer_means.len() >= 3);
        let spread = customer_means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - customer_means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.2, "customer means should differ substantially: spread {spread}");
    }

    #[test]
    fn workload_shift_changes_the_mix() {
        let config = ClusterConfig {
            duration_days: 10,
            workload_shift_day: Some(5),
            ..ClusterConfig::small()
        };
        let trace = TraceGenerator::new(config, 1).generate(0);
        let shift = 5 * 86_400;
        let compute_fraction = |requests: &[&VmRequest]| {
            requests.iter().filter(|r| r.vm_type == VmType::ComputeOptimized).count() as f64
                / requests.len().max(1) as f64
        };
        let before: Vec<&VmRequest> =
            trace.requests.iter().filter(|r| r.arrival < shift && r.arrival > 0).collect();
        let after: Vec<&VmRequest> = trace.requests.iter().filter(|r| r.arrival >= shift).collect();
        assert!(
            compute_fraction(&after) > compute_fraction(&before) + 0.2,
            "the shift should skew the mix towards compute-optimized VMs"
        );
    }

    #[test]
    #[should_panic(expected = "cluster index out of range")]
    fn out_of_range_cluster_rejected() {
        let _ = TraceGenerator::new(ClusterConfig::small(), 1).generate(5);
    }

    #[test]
    fn the_generator_source_streams_the_exact_materialized_trace() {
        // Two clusters so the multi-cluster utilization draw runs too.
        let generator = TraceGenerator::new(ClusterConfig::small(), 2).with_seed(9);
        for cluster in 0..2 {
            let trace = generator.generate(cluster);
            let mut source = generator.stream(cluster);
            assert_eq!(source.header(), &TraceHeader::of_trace(&trace));
            assert_eq!(source.len_hint(), None, "the Poisson tail length is unknown");
            let mut streamed = Vec::new();
            while let Some(request) = source.next_request().unwrap() {
                streamed.push(request);
            }
            assert_eq!(streamed, trace.requests, "cluster {cluster}");
            // Exhausted streams stay exhausted.
            assert_eq!(source.next_request().unwrap(), None);
        }
    }
}
