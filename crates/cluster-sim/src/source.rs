//! Streaming arrival sources: bounded-memory replacements for a materialized
//! [`ClusterTrace`].
//!
//! Replays used to require the whole request vector up front, so memory grew
//! with trace length. An [`ArrivalSource`] instead yields time-sorted
//! [`VmRequest`]s one at a time behind a [`TraceHeader`] carrying the cluster
//! shape, letting the event core and the fleet replays hold only the *live*
//! VMs. Three implementations ship here and in the neighbouring modules:
//!
//! * [`TraceCursor`] — zero-copy adapter over an in-memory [`ClusterTrace`],
//!   keeping every existing caller working.
//! * [`crate::tracegen::GeneratorSource`] — lazy synthetic generation, so
//!   sweeps stop allocating the trace per grid point.
//! * `AzureTraceReader` (feature `azure-trace`, module `pond_trace`)
//!   — a dependency-free reader for Azure-packing-style CSV traces.
//!
//! [`Validated`] wraps any source with the full streaming validation
//! (per-request consistency, sortedness, horizon bounds); [`TraceCursor`]
//! itself is deliberately permissive so the event-core tests can drive edge
//! cases (zero-lifetime VMs, arrivals past the horizon) that trace-level
//! validation rejects.

use crate::trace::{ClusterTrace, VmRequest};
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The cluster shape and horizon a source replays against: everything a
/// [`ClusterTrace`] carries except the request vector itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Cluster identifier.
    pub cluster_id: u32,
    /// Number of servers in the cluster.
    pub servers: u32,
    /// Cores per server (across both sockets).
    pub cores_per_server: u32,
    /// DRAM per server (across both sockets).
    pub dram_per_server: Bytes,
    /// Trace duration in seconds.
    pub duration: u64,
}

impl TraceHeader {
    /// The header of a materialized trace.
    pub fn of_trace(trace: &ClusterTrace) -> Self {
        TraceHeader {
            cluster_id: trace.cluster_id,
            servers: trace.servers,
            cores_per_server: trace.cores_per_server,
            dram_per_server: trace.dram_per_server,
            duration: trace.duration,
        }
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u64 {
        self.servers as u64 * self.cores_per_server as u64
    }

    /// Total DRAM in the cluster.
    pub fn total_dram(&self) -> Bytes {
        Bytes::new(self.dram_per_server.as_u64() * self.servers as u64)
    }
}

/// Why a source stopped yielding requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The stream violated the trace contract (unsorted, invalid request,
    /// arrival past the horizon, unparseable record, ...).
    Malformed(String),
    /// The underlying reader failed (I/O on a file-backed source).
    Io(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Malformed(detail) => write!(f, "malformed trace stream: {detail}"),
            SourceError::Io(detail) => write!(f, "trace stream i/o error: {detail}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// A stream of time-sorted VM arrivals plus the cluster shape they run on.
///
/// The contract: [`ArrivalSource::next_request`] yields requests with
/// non-decreasing `arrival`, each at most `header().duration`, until it
/// returns `Ok(None)`; after that it keeps returning `Ok(None)`. Sources
/// backed by external data enforce the contract as they stream (wrap with
/// [`Validated`] or validate inline); in-memory adapters over already-checked
/// data may skip the per-request work.
pub trait ArrivalSource {
    /// The cluster shape and horizon this source replays against.
    fn header(&self) -> &TraceHeader;

    /// The next arrival in time order, or `Ok(None)` once the stream is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError`] when the underlying stream is malformed or
    /// unreadable; the stream is dead afterwards.
    fn next_request(&mut self) -> Result<Option<VmRequest>, SourceError>;

    /// How many requests remain to be yielded, when the source knows.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// In-memory adapter: streams a materialized [`ClusterTrace`] by reference.
///
/// Permissive by design — the trace is assumed already validated (or is a
/// deliberate edge-case fixture from the event-core tests), so no
/// per-request checks run. Wrap in [`Validated`] for the full streaming
/// checks.
#[derive(Debug)]
pub struct TraceCursor<'a> {
    header: TraceHeader,
    requests: &'a [VmRequest],
    next: usize,
}

impl<'a> TraceCursor<'a> {
    /// Streams `trace`'s requests in order.
    pub fn new(trace: &'a ClusterTrace) -> Self {
        TraceCursor { header: TraceHeader::of_trace(trace), requests: &trace.requests, next: 0 }
    }
}

impl ArrivalSource for TraceCursor<'_> {
    fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn next_request(&mut self) -> Result<Option<VmRequest>, SourceError> {
        let Some(request) = self.requests.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        Ok(Some(request.clone()))
    }

    fn len_hint(&self) -> Option<u64> {
        Some((self.requests.len() - self.next) as u64)
    }
}

/// Wraps a source with the full streaming validation: per-request
/// consistency ([`VmRequest::validate`]), non-decreasing arrivals, and
/// arrivals bounded by the header's duration (`arrival == duration` stays
/// legal — the VM lands on the final tick).
#[derive(Debug)]
pub struct Validated<S> {
    inner: S,
    last_arrival: u64,
}

impl<S: ArrivalSource> Validated<S> {
    /// Validates `inner` as it streams.
    pub fn new(inner: S) -> Self {
        Validated { inner, last_arrival: 0 }
    }
}

impl<S: ArrivalSource> ArrivalSource for Validated<S> {
    fn header(&self) -> &TraceHeader {
        self.inner.header()
    }

    fn next_request(&mut self) -> Result<Option<VmRequest>, SourceError> {
        let Some(request) = self.inner.next_request()? else {
            return Ok(None);
        };
        request.validate().map_err(SourceError::Malformed)?;
        if request.arrival < self.last_arrival {
            return Err(SourceError::Malformed(format!(
                "vm {} arrives at {}, before the previous arrival at {}",
                request.id, request.arrival, self.last_arrival
            )));
        }
        let duration = self.inner.header().duration;
        if request.arrival > duration {
            return Err(SourceError::Malformed(format!(
                "vm {} arrives at {} past the trace duration {}",
                request.id, request.arrival, duration
            )));
        }
        self.last_arrival = request.arrival;
        Ok(Some(request))
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

/// Whole-trace statistics computed in one streaming pass, so summary lines
/// don't need the materialized request vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of requests in the stream.
    pub requests: u64,
    /// Σ cores × min(lifetime, duration − arrival): allocated core-seconds
    /// clipped to the trace horizon.
    pub core_seconds: u64,
    /// Total cores in the cluster (from the header).
    pub total_cores: u64,
    /// Trace duration in seconds (from the header).
    pub duration: u64,
}

impl TraceSummary {
    /// The average number of concurrently allocated cores over the trace
    /// duration, as a fraction of the cluster's cores. Matches
    /// [`ClusterTrace::mean_core_utilization`] exactly on the same requests.
    pub fn mean_core_utilization(&self) -> f64 {
        mean_core_utilization(self.core_seconds, self.total_cores, self.duration)
    }
}

/// Core-seconds a request holds within the trace horizon:
/// `cores × min(lifetime, duration − arrival)`.
///
/// This clipping rule is the single definition shared by the streaming
/// [`summarize`] pass and [`ClusterTrace::mean_core_utilization`], so
/// summary lines printed from either path agree bit for bit.
pub fn clipped_core_seconds(request: &VmRequest, duration: u64) -> u64 {
    request.cores as u64 * request.lifetime.min(duration.saturating_sub(request.arrival))
}

/// The mean fraction of `total_cores` held over `duration`, given the total
/// clipped core-seconds. Returns `0.0` for an empty cluster or horizon.
pub fn mean_core_utilization(core_seconds: u64, total_cores: u64, duration: u64) -> f64 {
    if total_cores == 0 || duration == 0 {
        return 0.0;
    }
    core_seconds as f64 / (total_cores * duration) as f64
}

/// Consumes `source` and accumulates its [`TraceSummary`].
///
/// # Errors
///
/// Propagates any [`SourceError`] the stream raises.
pub fn summarize<S: ArrivalSource>(mut source: S) -> Result<TraceSummary, SourceError> {
    let header = source.header();
    let (total_cores, duration) = (header.total_cores(), header.duration);
    let mut summary = TraceSummary { requests: 0, core_seconds: 0, total_cores, duration };
    while let Some(request) = source.next_request()? {
        summary.requests += 1;
        summary.core_seconds += clipped_core_seconds(&request, duration);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CustomerId, GuestOs, VmType};

    fn request(id: u64, arrival: u64) -> VmRequest {
        VmRequest {
            id,
            arrival,
            lifetime: 3600,
            cores: 4,
            memory: Bytes::from_gib(16),
            customer: CustomerId(1),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 0.5,
        }
    }

    fn trace(requests: Vec<VmRequest>) -> ClusterTrace {
        ClusterTrace {
            cluster_id: 3,
            servers: 2,
            cores_per_server: 8,
            dram_per_server: Bytes::from_gib(64),
            duration: 7200,
            requests,
        }
    }

    #[test]
    fn the_shared_utilization_helper_pins_the_clipping_rule() {
        // A request ending inside the horizon contributes cores × lifetime.
        assert_eq!(clipped_core_seconds(&request(1, 0), 7200), 4 * 3600);
        // One straddling the horizon is clipped to the remaining seconds.
        assert_eq!(clipped_core_seconds(&request(2, 5400), 7200), 4 * 1800);
        // One arriving at (or past) the horizon contributes nothing.
        assert_eq!(clipped_core_seconds(&request(3, 7200), 7200), 0);

        assert!((mean_core_utilization(4 * 3600, 16, 7200) - 0.125).abs() < 1e-12);
        assert_eq!(mean_core_utilization(100, 0, 7200), 0.0);
        assert_eq!(mean_core_utilization(100, 16, 0), 0.0);

        // The materialized and streamed paths agree because they share it.
        let trace = trace(vec![request(1, 0), request(2, 5400), request(3, 7200)]);
        let summary = summarize(TraceCursor::new(&trace)).unwrap();
        assert_eq!(summary.core_seconds, 4 * 3600 + 4 * 1800);
        assert_eq!(summary.mean_core_utilization(), trace.mean_core_utilization());
    }

    #[test]
    fn cursor_streams_the_trace_in_order() {
        let trace = trace(vec![request(1, 0), request(2, 100), request(3, 7200)]);
        let mut cursor = TraceCursor::new(&trace);
        assert_eq!(cursor.header(), &TraceHeader::of_trace(&trace));
        assert_eq!(cursor.header().total_cores(), 16);
        assert_eq!(cursor.header().total_dram(), Bytes::from_gib(128));
        assert_eq!(cursor.len_hint(), Some(3));
        let mut seen = Vec::new();
        while let Some(r) = cursor.next_request().unwrap() {
            seen.push(r.id);
        }
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(cursor.len_hint(), Some(0));
        // Exhausted sources keep yielding None.
        assert_eq!(cursor.next_request().unwrap(), None);
    }

    #[test]
    fn validated_accepts_a_legal_stream_and_the_horizon_boundary() {
        let trace = trace(vec![request(1, 0), request(2, 100), request(3, 7200)]);
        let mut source = Validated::new(TraceCursor::new(&trace));
        let mut count = 0;
        while source.next_request().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn validated_rejects_out_of_order_streams() {
        let trace = trace(vec![request(1, 500), request(2, 100)]);
        let mut source = Validated::new(TraceCursor::new(&trace));
        source.next_request().unwrap();
        let err = match source.next_request() {
            Err(SourceError::Malformed(detail)) => detail,
            other => panic!("expected a malformed-stream error, got {other:?}"),
        };
        assert!(err.contains("before the previous arrival"), "{err}");
    }

    #[test]
    fn validated_rejects_arrivals_past_the_horizon() {
        let trace = trace(vec![request(1, 7201)]);
        let mut source = Validated::new(TraceCursor::new(&trace));
        assert!(matches!(source.next_request(), Err(SourceError::Malformed(_))));
    }

    #[test]
    fn validated_rejects_invalid_requests() {
        let mut bad = request(1, 0);
        bad.lifetime = 0;
        let trace = trace(vec![bad]);
        let mut source = Validated::new(TraceCursor::new(&trace));
        let err = source.next_request().unwrap_err();
        assert!(err.to_string().contains("zero lifetime"), "{err}");
    }

    #[test]
    fn streaming_summary_matches_the_materialized_stats() {
        // One request's lifetime spills past the horizon so the clipping
        // path is exercised.
        let mut long = request(3, 7000);
        long.lifetime = 10_000;
        let trace = trace(vec![request(1, 0), request(2, 100), long]);
        let summary = summarize(TraceCursor::new(&trace)).unwrap();
        assert_eq!(summary.requests, 3);
        let streamed = summary.mean_core_utilization();
        let materialized = trace.mean_core_utilization();
        assert_eq!(streamed, materialized);
    }
}
