//! Parallel sweep runner for trace × pool-size × policy experiment grids.
//!
//! The paper's figures replay many independent simulations (one per cluster
//! trace, pool size, and policy); each run is CPU-bound and shares nothing
//! with its siblings, so they parallelize trivially. [`parallel_map`] fans a
//! slice of work items out over scoped OS threads (`std::thread::scope`, no
//! external dependencies) and returns the results **in item order**, so any
//! reduction the caller performs sees results in exactly the order a serial
//! loop would have produced them — floating-point accumulations stay
//! bit-identical to the serial path (see `pooling`'s serial-vs-parallel
//! equality tests).
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can be
//! pinned with the `POND_SWEEP_THREADS` environment variable (`1` runs the
//! sweep inline on the calling thread).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a sweep over `items` work items will use:
/// `POND_SWEEP_THREADS` if set and nonzero, otherwise the machine's available
/// parallelism, capped at the number of items.
pub fn worker_count(items: usize) -> usize {
    let configured = std::env::var("POND_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let auto = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    configured.unwrap_or(auto).min(items).max(1)
}

/// Applies `f` to every item of `slice` across [`worker_count`] scoped
/// threads and returns the results in item order.
///
/// `f` receives the item's index alongside the item so callers can label or
/// seed work deterministically. Panics in any worker propagate to the caller
/// once the scope joins.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(worker_count(items.len()), items, f)
}

/// [`parallel_map`] with an explicit worker count (`workers == 1` runs
/// inline on the calling thread, with no thread machinery at all).
pub fn parallel_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, items.len());
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // Work-stealing by atomic counter: each worker claims the next unclaimed
    // index, computes, and deposits the result into that index's slot. Slots
    // are disjoint, so one coarse mutex around the slot vector is uncontended
    // relative to the per-item work (whole simulation runs).
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else { break };
                let result = f(index, item);
                slots.lock().expect("a sweep worker panicked while depositing")[index] =
                    Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("a sweep worker panicked while depositing")
        .into_iter()
        .map(|slot| slot.expect("every slot is filled once the scope joins"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let doubled = parallel_map(&items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indices_match_items() {
        let items: Vec<u64> = (100..150).collect();
        let pairs = parallel_map(&items, |i, &x| (i, x));
        for (i, x) in pairs {
            assert_eq!(x, 100 + i as u64);
        }
    }

    #[test]
    fn parallel_matches_serial_for_any_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map_with(1, &items, |i, &x| x * 31 + i as u64);
        for workers in [2, 3, 8, 64, 1000] {
            let parallel = parallel_map_with(workers, &items, |i, &x| x * 31 + i as u64);
            assert_eq!(parallel, serial, "worker count {workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = parallel_map(&[], |_, x: &u64| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let counter = AtomicU32::new(0);
        let items: Vec<usize> = (0..64).collect();
        let seen: Vec<usize> = parallel_map(&items, |i, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(seen.into_iter().collect::<BTreeSet<_>>().len(), 64);
    }

    #[test]
    fn worker_count_is_capped_by_items() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000_000) >= 1);
    }
}
