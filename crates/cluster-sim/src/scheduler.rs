//! VM scheduling: the memory-allocation policy hook and the bin-packing
//! placement logic.
//!
//! The scheduler mirrors Azure's Protean-style best-fit packing at the level
//! of detail the paper's simulator needs: a VM goes to the server (and NUMA
//! node) that leaves the least slack, memory is preallocated at start, and
//! the split between local and pool memory is decided by a
//! [`MemoryPolicy`] — the strawman policies live here, Pond's ML-driven
//! policy is implemented in `pond-core` on top of the same trait.

use crate::server::{Placement, Server};
use crate::trace::VmRequest;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Decides how much of a VM's memory is allocated from the CXL pool.
///
/// Implementations may keep state (e.g. per-customer history); the simulator
/// calls [`MemoryPolicy::pool_memory`] once per VM arrival, in arrival order,
/// and reports the eventual QoS outcome through
/// [`MemoryPolicy::observe_outcome`].
pub trait MemoryPolicy {
    /// Pool memory to allocate for this VM. The simulator clamps the value to
    /// the VM's memory size and floors it to whole 1 GiB slices via
    /// [`align_pool_memory`] (the paper's §4.2 "1 GB-aligned" pool slices,
    /// realized as binary GiB throughout this reproduction).
    fn pool_memory(&mut self, request: &VmRequest) -> Bytes;

    /// Callback after the VM's QoS outcome is known: `slowdown` is the
    /// fractional slowdown the VM experienced and `exceeded_pdm` whether it
    /// violated the performance degradation margin. Policies that learn
    /// online (Pond's sensitivity history) use this; the default ignores it.
    fn observe_outcome(&mut self, request: &VmRequest, slowdown: f64, exceeded_pdm: bool) {
        let _ = (request, slowdown, exceeded_pdm);
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> &str {
        "unnamed-policy"
    }
}

/// The no-pooling baseline: every byte is NUMA-local.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllLocal;

impl MemoryPolicy for AllLocal {
    fn pool_memory(&mut self, _request: &VmRequest) -> Bytes {
        Bytes::ZERO
    }

    fn name(&self) -> &str {
        "all-local"
    }
}

/// The static strawman: a fixed percentage of every VM's memory comes from
/// the pool (the policy Figures 3 and 21 compare Pond against).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPoolFraction {
    fraction: f64,
}

impl FixedPoolFraction {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is within `[0, 1]`.
    pub fn new(fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "pool fraction must be in [0, 1]");
        FixedPoolFraction { fraction }
    }

    /// The configured fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

impl MemoryPolicy for FixedPoolFraction {
    fn pool_memory(&mut self, request: &VmRequest) -> Bytes {
        request.memory.scaled(self.fraction)
    }

    fn name(&self) -> &str {
        "fixed-pool-fraction"
    }
}

/// Clamps a policy's pool-memory decision to the VM's size and floors it to
/// whole 1 GiB slices (the granularity the pool hands out capacity in; the
/// paper's §4.2 quotes "1 GB" slices, which this reproduction realizes as
/// binary GiB throughout).
///
/// Both drivers of a memory policy go through this one function — the
/// [`crate::simulation::Simulation`] replay before placing, and
/// `pond-core`'s control plane before onlining EMC slices — so a decision
/// can never mean different byte counts in the two pipelines.
pub fn align_pool_memory(request: &VmRequest, raw: Bytes) -> Bytes {
    let clamped = Bytes::new(raw.as_u64().min(request.memory.as_u64()));
    Bytes::from_gib(clamped.slices_floor())
}

/// The one host-selection preference shared by every placement path in this
/// reproduction: tightest fit on free cores first (pack cores, keep whole
/// servers free for large VMs), most free DRAM second (leave the most
/// memory headroom at equal core tightness), lowest index last (a
/// deterministic tie-break).
///
/// Both [`PlacementEngine::place`] (the cluster simulator) and `pond-core`'s
/// control plane order their candidates by this key — `min_by_key` over it —
/// so fleet-replay and cluster-simulation results are comparable
/// placement-for-placement, not just policy-for-policy. Hosts without a core
/// model pass `free_cores: 0`, reducing the key to most-free-DRAM.
pub fn host_selection_key(
    free_cores: u32,
    free_dram: Bytes,
    index: usize,
) -> (u32, std::cmp::Reverse<u64>, usize) {
    (free_cores, std::cmp::Reverse(free_dram.as_u64()), index)
}

/// The cluster-wide placement engine: a vector of servers plus best-fit
/// placement across them.
///
/// Candidate selection is backed by an incrementally maintained free-core
/// bucket index (`free cores -> servers with that many free cores`), so each
/// placement walks the candidate buckets in tightest-fit order in O(log n)
/// instead of re-sorting the whole server list per arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementEngine {
    servers: Vec<Server>,
    /// Free cores -> indices of servers with exactly that many free cores.
    /// Invariant: every server index appears in exactly the bucket matching
    /// its current `free_cores()`; empty buckets are removed.
    by_free_cores: BTreeMap<u32, BTreeSet<usize>>,
}

impl PlacementEngine {
    /// Creates `count` servers of the given shape. `enforce_memory` controls
    /// whether server DRAM is a hard capacity (stranding analysis) or
    /// unbounded (DRAM-requirement analysis).
    pub fn new(
        count: u32,
        cores_per_server: u32,
        dram_per_server: Bytes,
        enforce_memory: bool,
    ) -> Self {
        let servers: Vec<Server> = (0..count)
            .map(|i| Server::new(i, cores_per_server, dram_per_server, enforce_memory))
            .collect();
        let mut by_free_cores: BTreeMap<u32, BTreeSet<usize>> = BTreeMap::new();
        for (i, server) in servers.iter().enumerate() {
            by_free_cores.entry(server.free_cores()).or_default().insert(i);
        }
        PlacementEngine { servers, by_free_cores }
    }

    /// The servers (read-only).
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Moves a server between free-core buckets after its core usage changed.
    fn reindex(&mut self, server: usize, old_free: u32) {
        let new_free = self.servers[server].free_cores();
        if new_free == old_free {
            return;
        }
        if let Some(bucket) = self.by_free_cores.get_mut(&old_free) {
            bucket.remove(&server);
            if bucket.is_empty() {
                self.by_free_cores.remove(&old_free);
            }
        }
        self.by_free_cores.entry(new_free).or_default().insert(server);
    }

    /// Places a VM using best fit on free cores: among servers that can hold
    /// the VM, pick the one with the fewest free cores (tightest fit). This
    /// keeps some servers empty for large VMs and concentrates utilization,
    /// which is what produces stranding on the packed servers.
    ///
    /// The bucket index walks candidates in [`host_selection_key`] order —
    /// free cores ascending (the buckets), then most free DRAM, then server
    /// index — skipping every server with fewer free cores than the request
    /// outright.
    ///
    /// Returns the chosen server index and placement, or `None` if no server
    /// can host the VM.
    pub fn place(
        &mut self,
        request: &VmRequest,
        local_memory: Bytes,
    ) -> Option<(usize, Placement)> {
        let mut chosen: Option<(usize, u32, Placement)> = None;
        let servers = &mut self.servers;
        let mut rest: Vec<usize> = Vec::new();
        'buckets: for (&free, bucket) in self.by_free_cores.range(request.cores..) {
            // Within a bucket every server has the same free-core count, so
            // the shared key reduces to (most free DRAM, lowest index). The
            // best candidate almost always accepts, so find it with a linear
            // scan; only when it declines is the remainder sorted and walked
            // (identical visit order to a full sort, without paying
            // O(n log n) per arrival on the common path).
            let Some(best) = bucket
                .iter()
                .copied()
                .min_by_key(|&i| host_selection_key(free, servers[i].free_memory(), i))
            else {
                continue;
            };
            // `try_place` can still decline (per-node core split, memory);
            // it leaves the server untouched in that case, so the index
            // stays valid and the scan continues.
            if let Some(placement) = servers[best].try_place(request, local_memory) {
                chosen = Some((best, free, placement));
                break 'buckets;
            }
            rest.clear();
            rest.extend(bucket.iter().copied().filter(|&i| i != best));
            rest.sort_by_key(|&i| host_selection_key(free, servers[i].free_memory(), i));
            for &i in &rest {
                if let Some(placement) = servers[i].try_place(request, local_memory) {
                    chosen = Some((i, free, placement));
                    break 'buckets;
                }
            }
        }
        let (server, old_free, placement) = chosen?;
        self.reindex(server, old_free);
        Some((server, placement))
    }

    /// Removes a VM from a server.
    pub fn remove(&mut self, server: usize, vm: u64, cores: u32) -> Option<Placement> {
        let old_free = self.servers.get(server)?.free_cores();
        let placement = self.servers.get_mut(server)?.remove(vm, cores)?;
        self.reindex(server, old_free);
        Some(placement)
    }

    /// Adds local memory to an existing placement (QoS mitigation converting
    /// pool memory to local memory). Memory growth never changes a server's
    /// free cores, so the placement index needs no update.
    pub fn grow_local(&mut self, server: usize, vm: u64, amount: Bytes) -> bool {
        self.servers.get_mut(server).is_some_and(|s| s.grow_local(vm, amount))
    }

    /// Total and used cores across the cluster.
    pub fn core_usage(&self) -> (u64, u64) {
        let total = self.servers.iter().map(|s| s.total_cores() as u64).sum();
        let used = self.servers.iter().map(|s| s.used_cores() as u64).sum();
        (used, total)
    }

    /// Sum of stranded memory across all servers.
    pub fn stranded_memory(&self, min_cores: u32) -> Bytes {
        self.servers.iter().map(|s| s.stranded_memory(min_cores)).sum()
    }

    /// Sum of used (pinned local) memory across all servers.
    pub fn used_memory(&self) -> Bytes {
        self.servers.iter().map(|s| s.used_memory()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CustomerId, GuestOs, VmType};
    use proptest::prelude::*;

    fn request(id: u64, cores: u32, gib: u64) -> VmRequest {
        VmRequest {
            id,
            arrival: 0,
            lifetime: 100,
            cores,
            memory: Bytes::from_gib(gib),
            customer: CustomerId(0),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 0.5,
        }
    }

    #[test]
    fn all_local_assigns_no_pool_memory() {
        let mut policy = AllLocal;
        assert_eq!(policy.pool_memory(&request(1, 4, 32)), Bytes::ZERO);
        assert_eq!(policy.name(), "all-local");
    }

    #[test]
    fn fixed_fraction_scales_with_vm_memory() {
        let mut policy = FixedPoolFraction::new(0.5);
        assert_eq!(policy.pool_memory(&request(1, 4, 32)), Bytes::from_gib(16));
        assert_eq!(policy.fraction(), 0.5);
        // Default observe_outcome is a no-op and must not panic.
        policy.observe_outcome(&request(1, 4, 32), 0.3, true);
    }

    #[test]
    #[should_panic(expected = "pool fraction")]
    fn fixed_fraction_rejects_out_of_range() {
        let _ = FixedPoolFraction::new(1.5);
    }

    #[test]
    fn align_pool_memory_rounds_down_and_clamps() {
        let r = request(1, 4, 8);
        assert_eq!(align_pool_memory(&r, Bytes::from_mib(3500)), Bytes::from_gib(3));
        assert_eq!(align_pool_memory(&r, Bytes::from_gib(100)), Bytes::from_gib(8));
        assert_eq!(align_pool_memory(&r, Bytes::ZERO), Bytes::ZERO);
    }

    #[test]
    fn engine_places_with_best_fit() {
        let mut engine = PlacementEngine::new(3, 48, Bytes::from_gib(384), true);
        // Pre-load server 0 so it becomes the tightest fit.
        let (s0, _) = engine.place(&request(1, 20, 10), Bytes::from_gib(10)).unwrap();
        let (s1, _) = engine.place(&request(2, 4, 10), Bytes::from_gib(10)).unwrap();
        assert_eq!(s0, s1, "small VM should pack onto the already-loaded server");
        let (used, total) = engine.core_usage();
        assert_eq!(used, 24);
        assert_eq!(total, 3 * 48);
    }

    #[test]
    fn equal_core_tightness_breaks_ties_on_free_dram() {
        let mut engine = PlacementEngine::new(3, 8, Bytes::from_gib(64), true);
        // Load servers 0 and 1 to the same core usage but different memory
        // usage; server 2 stays empty (loosest fit, never preferred).
        engine.place(&request(1, 4, 30), Bytes::from_gib(30)).unwrap();
        engine.place(&request(2, 4, 4), Bytes::from_gib(4)).unwrap();
        let s0_key = host_selection_key(4, Bytes::from_gib(34), 0);
        let s1_key = host_selection_key(4, Bytes::from_gib(60), 1);
        assert!(s1_key < s0_key, "more free DRAM wins at equal core tightness");
        // Both loaded servers have 4 free cores; the one with more free DRAM
        // (server 1, which took the 4 GiB VM) must win the tie.
        let (server, _) = engine.place(&request(3, 2, 2), Bytes::from_gib(2)).unwrap();
        assert_eq!(server, 1);
        // At fully equal keys, the lowest index wins.
        let mut fresh = PlacementEngine::new(2, 8, Bytes::from_gib(64), true);
        let (server, _) = fresh.place(&request(4, 2, 2), Bytes::from_gib(2)).unwrap();
        assert_eq!(server, 0);
    }

    #[test]
    fn engine_rejects_when_full() {
        let mut engine = PlacementEngine::new(1, 8, Bytes::from_gib(32), true);
        assert!(engine.place(&request(1, 4, 8), Bytes::from_gib(8)).is_some());
        assert!(engine.place(&request(2, 4, 8), Bytes::from_gib(8)).is_some());
        assert!(engine.place(&request(3, 1, 1), Bytes::from_gib(1)).is_none());
        // Removal opens capacity again.
        engine.remove(0, 1, 4).unwrap();
        assert!(engine.place(&request(4, 4, 8), Bytes::from_gib(8)).is_some());
    }

    #[test]
    fn stranded_memory_aggregates_across_servers() {
        let mut engine = PlacementEngine::new(2, 8, Bytes::from_gib(64), true);
        // Fill one server's cores (4 per NUMA node) with memory-light VMs.
        engine.place(&request(1, 4, 4), Bytes::from_gib(4)).unwrap();
        engine.place(&request(2, 4, 4), Bytes::from_gib(4)).unwrap();
        assert_eq!(engine.stranded_memory(2), Bytes::from_gib(56));
        assert_eq!(engine.used_memory(), Bytes::from_gib(8));
    }

    #[test]
    fn single_node_placement_prefers_the_tightest_numa_node() {
        use crate::server::Server;
        // 8 cores -> 4 per NUMA node, 32 GiB -> 16 per node.
        let mut server = Server::new(0, 8, Bytes::from_gib(32), true);
        let p1 = server.try_place(&request(1, 3, 8), Bytes::from_gib(8)).unwrap();
        assert!(!p1.spans_numa());
        assert_eq!(p1.local_on_other_node, Bytes::ZERO);
        // The node hosting VM 1 has one free core left: best fit must pack
        // the 1-core VM there rather than opening the empty node.
        let p2 = server.try_place(&request(2, 1, 2), Bytes::from_gib(2)).unwrap();
        assert!(!p2.spans_numa());
        assert_eq!(p2.core_node, p1.core_node);
    }

    #[test]
    fn spanning_fallback_splits_memory_across_nodes() {
        use crate::server::Server;
        let mut server = Server::new(0, 8, Bytes::from_gib(32), true);
        // Load one node with 10 GiB so no single node can hold 18 GiB.
        let first = server.try_place(&request(1, 2, 10), Bytes::from_gib(10)).unwrap();
        assert!(!first.spans_numa());
        // 4 cores fit only on the empty node; 18 GiB exceeds its 16 GiB, so
        // the placement spans: cores + 16 GiB on one node, 2 GiB on the other.
        let spanning = server.try_place(&request(2, 4, 18), Bytes::from_gib(18)).unwrap();
        assert!(spanning.spans_numa());
        assert_eq!(spanning.local_on_core_node + spanning.local_on_other_node, Bytes::from_gib(18));
        assert_eq!(server.used_memory(), Bytes::from_gib(28));
    }

    proptest! {
        /// Best-fit placement never oversubscribes any server's cores, and
        /// with memory enforcement on, never its DRAM either — across
        /// arbitrary interleavings of placements and departures.
        #[test]
        fn placement_never_oversubscribes(
            ops in proptest::collection::vec(
                (1u64..40, 1u32..24, 1u64..96, proptest::bool::ANY),
                0..80
            )
        ) {
            let mut engine = PlacementEngine::new(4, 16, Bytes::from_gib(64), true);
            let mut live: std::collections::BTreeMap<u64, (usize, u32)> = Default::default();
            for (id, cores, gib, remove) in ops {
                if remove {
                    if let Some((server, c)) = live.remove(&id) {
                        engine.remove(server, id, c).expect("live VM must be removable");
                    }
                } else if let std::collections::btree_map::Entry::Vacant(entry) = live.entry(id) {
                    let r = request(id, cores, gib);
                    if let Some((server, _)) = engine.place(&r, r.memory) {
                        entry.insert((server, cores));
                    }
                }
                for s in engine.servers() {
                    prop_assert!(s.used_cores() <= s.total_cores());
                    prop_assert!(s.used_memory() <= s.total_memory());
                }
            }
        }
    }
}
