//! DRAM-requirement analysis across pool sizes (Figures 3 and 21).
//!
//! Pooling saves DRAM through statistical multiplexing: a server's local DRAM
//! only needs to cover its *local* peak, and the shared pool only needs to
//! cover the *group's* combined pool peak, which is smaller than the sum of
//! the individual peaks. This module sweeps pool sizes and policies and
//! reports the relative DRAM requirement the paper plots.

use crate::scheduler::MemoryPolicy;
use crate::simulation::{Simulation, SimulationConfig, SimulationOutcome};
use crate::sweep;
use crate::trace::ClusterTrace;
use serde::{Deserialize, Serialize};

/// The result of one (pool size, policy) evaluation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSizePoint {
    /// Pool size in CPU sockets.
    pub pool_sockets: u16,
    /// Required DRAM relative to the pool-less baseline (1.0 = 100%).
    pub required_dram_fraction: f64,
    /// Fraction of VM memory GiB-hours served from the pool.
    pub pool_dram_fraction: f64,
    /// Fraction of VMs whose slowdown exceeded the PDM.
    pub violation_fraction: f64,
    /// Fraction of violating VMs the QoS monitor reconfigured to all-local
    /// memory (0 when mitigation is disabled or nothing violated).
    pub mitigation_fraction: f64,
}

/// The per-run metrics a sweep reduces over (one simulation's contribution).
#[derive(Debug, Clone, Copy)]
struct RunMetrics {
    required: f64,
    pool_fraction: f64,
    violations: f64,
    mitigations: f64,
}

impl RunMetrics {
    fn of(outcome: &SimulationOutcome) -> Self {
        RunMetrics {
            required: outcome.required_dram_fraction(),
            pool_fraction: outcome.pool_dram_fraction(),
            violations: outcome.violation_fraction(),
            mitigations: if outcome.violations == 0 {
                0.0
            } else {
                outcome.mitigations as f64 / outcome.violations as f64
            },
        }
    }
}

/// Runs one simulation point of a sweep grid.
fn run_point<P: MemoryPolicy>(
    trace: &ClusterTrace,
    pool_sockets: u16,
    base_config: &SimulationConfig,
    policy: P,
) -> RunMetrics {
    let config = SimulationConfig { pool_size_sockets: pool_sockets, ..base_config.clone() };
    RunMetrics::of(&Simulation::new(config, policy).run(trace))
}

/// Sweeps pool sizes for a fixed policy factory, averaging the relative DRAM
/// requirement across the provided traces.
///
/// The (pool size × trace) grid runs in parallel on the [`sweep`] runner;
/// results are reduced in (pool size, trace) order, so every `PoolSizePoint`
/// is bit-identical to what [`pool_size_sweep_serial`] produces.
///
/// `make_policy` is called once per (trace, pool size) pair — possibly from
/// several threads at once — so stateful policies start fresh for every
/// simulation.
pub fn pool_size_sweep<P, F>(
    traces: &[ClusterTrace],
    pool_sizes: &[u16],
    base_config: &SimulationConfig,
    make_policy: F,
) -> Vec<PoolSizePoint>
where
    P: MemoryPolicy,
    F: Fn() -> P + Sync,
{
    let grid: Vec<(u16, &ClusterTrace)> = pool_sizes
        .iter()
        .flat_map(|&sockets| traces.iter().map(move |trace| (sockets, trace)))
        .collect();
    let metrics = sweep::parallel_map(&grid, |_, &(sockets, trace)| {
        run_point(trace, sockets, base_config, make_policy())
    });
    reduce_points(pool_sizes, traces.len(), &metrics)
}

/// The serial reference implementation of [`pool_size_sweep`]: one thread,
/// simulations in (pool size, trace) order. Kept as the ground truth the
/// parallel runner is tested bit-identical against.
pub fn pool_size_sweep_serial<P, F>(
    traces: &[ClusterTrace],
    pool_sizes: &[u16],
    base_config: &SimulationConfig,
    mut make_policy: F,
) -> Vec<PoolSizePoint>
where
    P: MemoryPolicy,
    F: FnMut() -> P,
{
    let metrics: Vec<RunMetrics> = pool_sizes
        .iter()
        .flat_map(|&sockets| {
            traces
                .iter()
                .map(|trace| run_point(trace, sockets, base_config, make_policy()))
                .collect::<Vec<_>>()
        })
        .collect();
    reduce_points(pool_sizes, traces.len(), &metrics)
}

/// Folds a row-major (pool size × trace) metrics grid into per-pool-size
/// points, accumulating in trace order within each pool size.
fn reduce_points(pool_sizes: &[u16], traces: usize, metrics: &[RunMetrics]) -> Vec<PoolSizePoint> {
    pool_sizes
        .iter()
        .enumerate()
        .map(|(row, &pool_sockets)| {
            let mut required = 0.0;
            let mut pool_fraction = 0.0;
            let mut violations = 0.0;
            let mut mitigations = 0.0;
            for point in &metrics[row * traces..(row + 1) * traces] {
                required += point.required;
                pool_fraction += point.pool_fraction;
                violations += point.violations;
                mitigations += point.mitigations;
            }
            let n = traces.max(1) as f64;
            PoolSizePoint {
                pool_sockets,
                required_dram_fraction: required / n,
                pool_dram_fraction: pool_fraction / n,
                violation_fraction: violations / n,
                mitigation_fraction: mitigations / n,
            }
        })
        .collect()
}

/// Averages outcomes of a policy over several traces at a fixed pool size.
///
/// Traces run in parallel on the [`sweep`] runner; the reduction happens in
/// trace order, bit-identical to a serial loop.
pub fn average_outcome<P, F>(
    traces: &[ClusterTrace],
    config: &SimulationConfig,
    make_policy: F,
) -> AveragedOutcome
where
    P: MemoryPolicy,
    F: Fn() -> P + Sync,
{
    let metrics = sweep::parallel_map(traces, |_, trace| {
        run_point(trace, config.pool_size_sockets, config, make_policy())
    });
    let mut acc = AveragedOutcome::default();
    for point in &metrics {
        acc.required_dram_fraction += point.required;
        acc.pool_dram_fraction += point.pool_fraction;
        acc.violation_fraction += point.violations;
        acc.mitigation_fraction += point.mitigations;
    }
    acc.finalize(traces.len());
    acc
}

/// Averages of the headline metrics across clusters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AveragedOutcome {
    /// Mean relative DRAM requirement.
    pub required_dram_fraction: f64,
    /// Mean fraction of memory GB-hours on the pool.
    pub pool_dram_fraction: f64,
    /// Mean fraction of VMs violating the PDM.
    pub violation_fraction: f64,
    /// Mean fraction of violating VMs that were mitigated.
    pub mitigation_fraction: f64,
}

impl AveragedOutcome {
    fn finalize(&mut self, n: usize) {
        let n = n.max(1) as f64;
        self.required_dram_fraction /= n;
        self.pool_dram_fraction /= n;
        self.violation_fraction /= n;
        self.mitigation_fraction /= n;
    }

    /// DRAM savings relative to the pool-less baseline.
    pub fn dram_savings_fraction(&self) -> f64 {
        1.0 - self.required_dram_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FixedPoolFraction;
    use crate::tracegen::{ClusterConfig, TraceGenerator};
    use cxl_hw::latency::LatencyScenario;

    fn traces(n: u32) -> Vec<ClusterTrace> {
        TraceGenerator::new(ClusterConfig::small(), n).generate_all()
    }

    fn config() -> SimulationConfig {
        SimulationConfig {
            scenario: LatencyScenario::Increase182,
            qos_mitigation: false,
            ..Default::default()
        }
    }

    #[test]
    fn savings_grow_with_pool_size_and_saturate() {
        // Figure 3's qualitative shape: bigger pools help, with diminishing
        // returns.
        let traces = traces(2);
        let points = pool_size_sweep(&traces, &[2, 8, 16, 32, 64], &config(), || {
            FixedPoolFraction::new(0.5)
        });
        assert_eq!(points.len(), 5);
        for pair in points.windows(2) {
            assert!(
                pair[1].required_dram_fraction <= pair[0].required_dram_fraction + 1e-9,
                "requirement must not grow with pool size: {points:?}"
            );
        }
        // Savings at 64 sockets should be visible but below the 50% pool share.
        let savings_64 = 1.0 - points.last().unwrap().required_dram_fraction;
        assert!(savings_64 > 0.02, "savings at 64 sockets: {savings_64}");
        assert!(savings_64 < 0.5);
        // Diminishing returns: the step from 32 to 64 is smaller than from 2 to 8.
        let step_small = points[0].required_dram_fraction - points[1].required_dram_fraction;
        let step_large = points[3].required_dram_fraction - points[4].required_dram_fraction;
        assert!(step_large <= step_small + 1e-9);
    }

    #[test]
    fn higher_pool_fractions_save_more_dram() {
        // Figure 3 compares 10%/30%/50% pool percentages.
        let traces = traces(1);
        let mut previous = 1.0;
        for fraction in [0.1, 0.3, 0.5] {
            let points =
                pool_size_sweep(&traces, &[16], &config(), || FixedPoolFraction::new(fraction));
            let required = points[0].required_dram_fraction;
            assert!(
                required <= previous + 1e-9,
                "{fraction} pool should need no more DRAM than smaller fractions"
            );
            previous = required;
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_the_serial_path() {
        let traces = traces(3);
        let pool_sizes = [2u16, 16, 64];
        let parallel =
            pool_size_sweep(&traces, &pool_sizes, &config(), || FixedPoolFraction::new(0.3));
        let serial =
            pool_size_sweep_serial(&traces, &pool_sizes, &config(), || FixedPoolFraction::new(0.3));
        // PartialEq on PoolSizePoint compares the f64 fields exactly: the
        // parallel runner must reproduce the serial accumulation bit for bit.
        assert_eq!(parallel, serial);
    }

    #[test]
    fn averaged_outcome_accumulates() {
        let traces = traces(2);
        let avg = average_outcome(&traces, &config(), || FixedPoolFraction::new(0.5));
        assert!(avg.required_dram_fraction > 0.5 && avg.required_dram_fraction <= 1.0);
        assert!(avg.pool_dram_fraction > 0.1);
        assert!(avg.violation_fraction > 0.0);
        assert_eq!(avg.mitigation_fraction, 0.0, "mitigation disabled in this config");
        assert!((avg.dram_savings_fraction() - (1.0 - avg.required_dram_fraction)).abs() < 1e-12);
    }
}
