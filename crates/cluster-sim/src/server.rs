//! Dual-socket servers with per-NUMA-node core and memory accounting.
//!
//! The hypervisor schedules VMs so that cores and memory come from the same
//! NUMA node whenever possible (§3.1 reports NUMA spanning for only 2-3% of
//! VMs). Pool memory does not consume server DRAM — it is accounted against
//! the pool the server's sockets belong to.

use crate::trace::VmRequest;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of a NUMA node within a server (0 or 1 for dual-socket servers).
pub type NodeIndex = usize;

/// Resources of one NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct NumaNode {
    cores_total: u32,
    cores_used: u32,
    memory_total: Bytes,
    memory_used: Bytes,
}

impl NumaNode {
    fn free_cores(&self) -> u32 {
        self.cores_total - self.cores_used
    }
    fn free_memory(&self) -> Bytes {
        self.memory_total.saturating_sub(self.memory_used)
    }
}

/// A placement decision for one VM on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// NUMA node holding the VM's cores.
    pub core_node: NodeIndex,
    /// Local memory taken from the core node.
    pub local_on_core_node: Bytes,
    /// Local memory spilled to the other node (NUMA spanning, rare).
    pub local_on_other_node: Bytes,
}

impl Placement {
    /// Whether the placement spans NUMA nodes.
    pub fn spans_numa(&self) -> bool {
        !self.local_on_other_node.is_zero()
    }

    /// Total local memory pinned by the placement.
    pub fn local_total(&self) -> Bytes {
        self.local_on_core_node + self.local_on_other_node
    }
}

/// One dual-socket server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    id: u32,
    nodes: [NumaNode; 2],
    placements: BTreeMap<u64, Placement>,
    enforce_memory: bool,
}

impl Server {
    /// Creates a server with `cores` and `memory` split evenly across two
    /// NUMA nodes. When `enforce_memory` is false the server behaves as if it
    /// had unbounded DRAM (used for DRAM-requirement analysis where the
    /// question is how much DRAM *would* be needed).
    pub fn new(id: u32, cores: u32, memory: Bytes, enforce_memory: bool) -> Self {
        let node = NumaNode {
            cores_total: cores / 2,
            cores_used: 0,
            memory_total: Bytes::new(memory.as_u64() / 2),
            memory_used: Bytes::ZERO,
        };
        Server { id, nodes: [node, node], placements: BTreeMap::new(), enforce_memory }
    }

    /// The server's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Total cores across both sockets.
    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores_total).sum()
    }

    /// Cores currently allocated to VMs.
    pub fn used_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores_used).sum()
    }

    /// Free cores across both sockets.
    pub fn free_cores(&self) -> u32 {
        self.total_cores() - self.used_cores()
    }

    /// Total DRAM across both sockets.
    pub fn total_memory(&self) -> Bytes {
        self.nodes.iter().map(|n| n.memory_total).sum()
    }

    /// DRAM currently pinned for VMs (local memory only).
    pub fn used_memory(&self) -> Bytes {
        self.nodes.iter().map(|n| n.memory_used).sum()
    }

    /// Free DRAM across both sockets.
    pub fn free_memory(&self) -> Bytes {
        self.total_memory().saturating_sub(self.used_memory())
    }

    /// Number of VMs on the server.
    pub fn vm_count(&self) -> usize {
        self.placements.len()
    }

    /// Stranded memory: DRAM that cannot be rented because the server's
    /// cores are (effectively) exhausted. `min_cores` is the smallest VM the
    /// cluster sells; a server with fewer free cores than that cannot host
    /// anything new.
    pub fn stranded_memory(&self, min_cores: u32) -> Bytes {
        if self.free_cores() < min_cores.max(1) {
            self.free_memory()
        } else {
            Bytes::ZERO
        }
    }

    /// Whether the VM could be placed entirely on one node right now, and on
    /// which node.
    fn fit_node(&self, cores: u32, local_memory: Bytes) -> Option<NodeIndex> {
        // Prefer the node where the VM fits entirely (cores + memory); pick
        // the one with less free capacity (best fit) to keep the other node
        // open for large VMs. Physical node DRAM bounds the fit in both
        // capacity modes — with enforcement off a VM that exceeds every
        // node's free DRAM still places (via the spanning fallback), it just
        // cannot pretend its memory is NUMA-local.
        let mut best: Option<(NodeIndex, u32)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if node.free_cores() >= cores && node.free_memory() >= local_memory {
                let leftover = node.free_cores() - cores;
                if best.is_none_or(|(_, b)| leftover < b) {
                    best = Some((i, leftover));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// The node a NUMA-spanning placement puts its cores on: the tightest
    /// core fit among the nodes with enough free cores — the same best-fit
    /// rule the single-node path uses.
    fn spanning_core_node(&self, cores: u32) -> Option<NodeIndex> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].free_cores() >= cores)
            .min_by_key(|&i| self.nodes[i].free_cores() - cores)
    }

    /// Attempts to place a VM with `cores` and `local_memory` on this server.
    ///
    /// Placement prefers a single NUMA node; if no node can hold both the
    /// cores and the memory, it falls back to NUMA spanning — cores on the
    /// tightest-fitting node, memory filling that node's free DRAM first and
    /// spilling the remainder onto the other node — which the paper observes
    /// for 2-3% of VMs. The split rule is the same in both capacity modes;
    /// `enforce_memory: false` only stops the server-wide capacity check from
    /// rejecting the VM.
    ///
    /// Returns `None` (leaving the server untouched) when the VM cannot fit.
    pub fn try_place(&mut self, request: &VmRequest, local_memory: Bytes) -> Option<Placement> {
        if self.placements.contains_key(&request.id) {
            return None;
        }
        // Single-node placement.
        if let Some(node) = self.fit_node(request.cores, local_memory) {
            let placement = Placement {
                core_node: node,
                local_on_core_node: local_memory,
                local_on_other_node: Bytes::ZERO,
            };
            self.apply(request.id, request.cores, placement);
            return Some(placement);
        }
        // NUMA-spanning fallback: cores on the tightest-fitting node, memory
        // split across both nodes.
        let core_node = self.spanning_core_node(request.cores)?;
        if self.enforce_memory && self.free_memory() < local_memory {
            return None;
        }
        let on_core = local_memory.min(self.nodes[core_node].free_memory());
        let placement = Placement {
            core_node,
            local_on_core_node: on_core,
            local_on_other_node: local_memory - on_core,
        };
        self.apply(request.id, request.cores, placement);
        Some(placement)
    }

    fn apply(&mut self, vm: u64, cores: u32, placement: Placement) {
        self.nodes[placement.core_node].cores_used += cores;
        self.nodes[placement.core_node].memory_used += placement.local_on_core_node;
        self.nodes[1 - placement.core_node].memory_used += placement.local_on_other_node;
        self.placements.insert(vm, placement);
    }

    /// Removes a VM, returning its placement (or `None` if it was not here).
    pub fn remove(&mut self, vm: u64, cores: u32) -> Option<Placement> {
        let placement = self.placements.remove(&vm)?;
        self.nodes[placement.core_node].cores_used -= cores;
        self.nodes[placement.core_node].memory_used -= placement.local_on_core_node;
        self.nodes[1 - placement.core_node].memory_used -= placement.local_on_other_node;
        Some(placement)
    }

    /// Adds local memory to an existing placement (used when a QoS mitigation
    /// converts pool memory to local memory). Ignores memory-capacity limits:
    /// the mitigation path only runs when the host has local headroom, and in
    /// requirement-analysis mode capacity is unbounded anyway.
    pub fn grow_local(&mut self, vm: u64, amount: Bytes) -> bool {
        match self.placements.get_mut(&vm) {
            Some(p) => {
                p.local_on_core_node += amount;
                let node = p.core_node;
                self.nodes[node].memory_used += amount;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CustomerId, GuestOs, VmType};
    use proptest::prelude::*;

    fn request(id: u64, cores: u32, gib: u64) -> VmRequest {
        VmRequest {
            id,
            arrival: 0,
            lifetime: 100,
            cores,
            memory: Bytes::from_gib(gib),
            customer: CustomerId(0),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 0.5,
        }
    }

    fn server() -> Server {
        Server::new(0, 48, Bytes::from_gib(384), true)
    }

    #[test]
    fn placement_prefers_a_single_numa_node() {
        let mut s = server();
        let r = request(1, 8, 64);
        let p = s.try_place(&r, Bytes::from_gib(64)).unwrap();
        assert!(!p.spans_numa());
        assert_eq!(p.local_total(), Bytes::from_gib(64));
        assert_eq!(s.used_cores(), 8);
        assert_eq!(s.used_memory(), Bytes::from_gib(64));
        assert_eq!(s.vm_count(), 1);
    }

    #[test]
    fn best_fit_packs_the_fuller_node_first() {
        let mut s = server();
        // Fill node 0 partially.
        s.try_place(&request(1, 20, 10), Bytes::from_gib(10)).unwrap();
        // The next small VM should land on the same (fuller) node.
        let p = s.try_place(&request(2, 2, 10), Bytes::from_gib(10)).unwrap();
        assert_eq!(p.core_node, 0);
    }

    #[test]
    fn numa_spanning_happens_only_when_memory_forces_it() {
        let mut s = server();
        // Consume most of node 0's memory but few cores.
        s.try_place(&request(1, 2, 180), Bytes::from_gib(180)).unwrap();
        s.try_place(&request(2, 2, 180), Bytes::from_gib(180)).unwrap();
        // Next VM needs 20 GiB but both nodes have only 12 GiB free each;
        // spanning splits it across nodes.
        let p = s.try_place(&request(3, 4, 20), Bytes::from_gib(20)).unwrap();
        assert!(p.spans_numa());
        assert_eq!(p.local_total(), Bytes::from_gib(20));
    }

    #[test]
    fn placement_fails_when_cores_or_memory_exhausted() {
        let mut s = server();
        assert!(
            s.try_place(&request(1, 48, 10), Bytes::from_gib(10)).is_none(),
            "one node has only 24 cores"
        );
        s.try_place(&request(2, 24, 10), Bytes::from_gib(10)).unwrap();
        s.try_place(&request(3, 24, 10), Bytes::from_gib(10)).unwrap();
        assert_eq!(s.free_cores(), 0);
        assert!(s.try_place(&request(4, 1, 1), Bytes::from_gib(1)).is_none());
        // Memory exhaustion.
        let mut s2 = server();
        assert!(s2.try_place(&request(5, 4, 500), Bytes::from_gib(500)).is_none());
    }

    #[test]
    fn unenforced_memory_never_blocks_placement() {
        let mut s = Server::new(0, 48, Bytes::from_gib(4), false);
        let p = s.try_place(&request(1, 4, 500), Bytes::from_gib(500)).unwrap();
        assert_eq!(p.local_total(), Bytes::from_gib(500));
        assert_eq!(s.used_memory(), Bytes::from_gib(500));
    }

    /// Regression: when both nodes have enough free cores but neither has the
    /// memory, the spanning fallback must put the cores on the tightest node
    /// (best fit), not blindly on node 0.
    #[test]
    fn spanning_puts_cores_on_the_tightest_node() {
        // 24 cores / 16 GiB per node, memory enforced.
        let mut s = Server::new(0, 48, Bytes::from_gib(32), true);
        s.try_place(&request(1, 4, 14), Bytes::from_gib(14)).unwrap(); // node 0
        let second = s.try_place(&request(2, 6, 14), Bytes::from_gib(14)).unwrap();
        assert_eq!(second.core_node, 1, "node 0 has only 2 GiB free");
        // Neither node has 3 GiB free; both have >= 2 free cores. Node 1 is
        // the tighter core fit (18 free vs. 20 free).
        let spanning = s.try_place(&request(3, 2, 3), Bytes::from_gib(3)).unwrap();
        assert!(spanning.spans_numa());
        assert_eq!(spanning.core_node, 1);
        assert_eq!(spanning.local_on_core_node, Bytes::from_gib(2));
        assert_eq!(spanning.local_on_other_node, Bytes::from_gib(1));
        assert_eq!(s.used_memory(), Bytes::from_gib(31));
    }

    /// Regression: with memory enforcement off, a spanning placement uses the
    /// same split rule as the enforced path — fill the core node's physical
    /// DRAM, spill the remainder to the other node — instead of charging
    /// everything to the core node.
    #[test]
    fn unenforced_spanning_splits_by_physical_capacity() {
        // 4 cores / 16 GiB per node, memory NOT enforced.
        let mut s = Server::new(0, 8, Bytes::from_gib(32), false);
        let p = s.try_place(&request(1, 2, 30), Bytes::from_gib(30)).unwrap();
        assert!(p.spans_numa(), "no single node holds 30 GiB");
        assert_eq!(p.local_on_core_node, Bytes::from_gib(16));
        assert_eq!(p.local_on_other_node, Bytes::from_gib(14));
        assert_eq!(s.used_memory(), Bytes::from_gib(30));
        // Removal unwinds both nodes' shares.
        s.remove(1, 2).unwrap();
        assert_eq!(s.used_memory(), Bytes::ZERO);
    }

    #[test]
    fn remove_restores_capacity() {
        let mut s = server();
        let r = request(1, 8, 64);
        s.try_place(&r, Bytes::from_gib(64)).unwrap();
        let p = s.remove(1, 8).unwrap();
        assert_eq!(p.local_total(), Bytes::from_gib(64));
        assert_eq!(s.used_cores(), 0);
        assert_eq!(s.used_memory(), Bytes::ZERO);
        assert!(s.remove(1, 8).is_none());
    }

    #[test]
    fn stranding_requires_core_exhaustion() {
        let mut s = server();
        s.try_place(&request(1, 24, 50), Bytes::from_gib(50)).unwrap();
        assert_eq!(s.stranded_memory(2), Bytes::ZERO, "cores still available");
        s.try_place(&request(2, 23, 50), Bytes::from_gib(50)).unwrap();
        // 1 free core < 2 minimum: the remaining memory is stranded.
        assert_eq!(s.stranded_memory(2), Bytes::from_gib(284));
        assert_eq!(s.stranded_memory(1), Bytes::ZERO, "a 1-core VM could still land");
    }

    #[test]
    fn grow_local_extends_an_existing_placement() {
        let mut s = server();
        s.try_place(&request(1, 4, 16), Bytes::from_gib(16)).unwrap();
        assert!(s.grow_local(1, Bytes::from_gib(8)));
        assert_eq!(s.used_memory(), Bytes::from_gib(24));
        assert!(!s.grow_local(99, Bytes::from_gib(8)));
    }

    #[test]
    fn duplicate_placement_is_rejected() {
        let mut s = server();
        let r = request(1, 4, 16);
        assert!(s.try_place(&r, Bytes::from_gib(16)).is_some());
        assert!(s.try_place(&r, Bytes::from_gib(16)).is_none());
    }

    proptest! {
        /// Core and memory accounting is conserved across arbitrary
        /// place/remove sequences.
        #[test]
        fn accounting_is_conserved(ops in proptest::collection::vec((1u64..20, 1u32..16, 1u64..64, proptest::bool::ANY), 0..60)) {
            let mut s = server();
            let mut live: std::collections::BTreeMap<u64, u32> = Default::default();
            for (id, cores, gib, remove) in ops {
                if remove {
                    if let Some(c) = live.remove(&id) {
                        s.remove(id, c);
                    }
                } else if let std::collections::btree_map::Entry::Vacant(entry) = live.entry(id) {
                    let r = request(id, cores, gib);
                    if s.try_place(&r, Bytes::from_gib(gib)).is_some() {
                        entry.insert(cores);
                    }
                }
                let expected_cores: u32 = live.values().sum();
                prop_assert_eq!(s.used_cores(), expected_cores);
                prop_assert!(s.used_cores() <= s.total_cores());
                prop_assert!(s.used_memory() <= s.total_memory());
                prop_assert_eq!(s.vm_count(), live.len());
            }
        }
    }
}
