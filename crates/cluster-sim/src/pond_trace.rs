//! A dependency-free reader for Azure-packing-style CSV traces (feature
//! `azure-trace`).
//!
//! The public Azure packing traces ship a `vm` table
//! (`vmId,tenantId,vmTypeId,priority,starttime,endtime`) and a `vmType`
//! table carrying each type's core and memory shape. [`AzureTraceReader`]
//! consumes the *joined* form — one CSV row per VM with the type columns
//! folded in:
//!
//! ```csv
//! vmId,tenantId,vmTypeId,priority,starttime,endtime,core,memory
//! 1,42,3,0,0.0,0.25,4,16
//! 2,42,3,0,0.01,,8,32
//! ```
//!
//! * `starttime`/`endtime` are fractional **days** from trace start (the
//!   packing-trace convention). A negative `starttime` means the VM was
//!   already running at the window start (arrival clamps to 0); an empty
//!   `endtime` means it outlives the window (it departs one second past the
//!   horizon, so the replay still drains it).
//! * `core` is the VM's core count; `memory` is GiB (fractional allowed).
//! * `priority` is parsed for format compatibility and ignored — the
//!   simulator has no eviction tier.
//!
//! The trace's metadata features the models need but the packing format
//! lacks — guest OS, region, workload, untouched fraction — are synthesized
//! **deterministically** from the tenant and VM ids with a splitmix64-style
//! mixer, preserving the tenant-correlated structure Pond's predictors rely
//! on (§4.4): all of a tenant's VMs share an OS, a region, a small workload
//! set, and an untouched-memory mean.
//!
//! The reader streams in O(1) memory with buffered line parsing and
//! validates as it goes: rows must be pre-sorted by `starttime` (bounded
//! memory is impossible otherwise — sort the file first), every request
//! must pass [`VmRequest::validate`], and arrivals must not exceed the
//! supplied header's duration. Duplicate `vmId` detection needs memory
//! proportional to the whole trace, so it is *not* performed here; run
//! [`crate::trace::ClusterTrace::validate`] on a materialized copy when you
//! need that check.

use crate::source::{ArrivalSource, SourceError, TraceHeader};
use crate::trace::{CustomerId, GuestOs, VmRequest, VmType};
use cxl_hw::units::Bytes;
use std::fs::File;
use std::io::{BufRead, BufReader, Lines};
use std::path::Path;

/// Columns of the joined packing-format row, in order.
const COLUMNS: [&str; 8] =
    ["vmId", "tenantId", "vmTypeId", "priority", "starttime", "endtime", "core", "memory"];

/// Seconds per fractional-day time unit.
const DAY_SECS: f64 = 86_400.0;

/// splitmix64: a tiny, well-mixed deterministic hash for synthesizing the
/// metadata features the packing format does not carry.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `mix` folded to a uniform fraction in `[0, 1)`.
fn mix_fraction(x: u64) -> f64 {
    (mix(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Streams a joined Azure-packing-format CSV file as an [`ArrivalSource`].
///
/// The caller supplies the [`TraceHeader`] (the packing format carries no
/// cluster shape); the file must be sorted by `starttime`.
#[derive(Debug)]
pub struct AzureTraceReader {
    header: TraceHeader,
    lines: Lines<BufReader<File>>,
    line_no: u64,
    last_arrival: u64,
    done: bool,
}

impl AzureTraceReader {
    /// Opens `path` for streaming against the given cluster shape. An
    /// optional leading header row (starting with `vmId`) is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`SourceError::Io`] when the file cannot be opened.
    pub fn open(path: impl AsRef<Path>, header: TraceHeader) -> Result<Self, SourceError> {
        let file = File::open(path.as_ref()).map_err(|e| {
            SourceError::Io(format!("cannot open {}: {e}", path.as_ref().display()))
        })?;
        Ok(AzureTraceReader {
            header,
            lines: BufReader::new(file).lines(),
            line_no: 0,
            last_arrival: 0,
            done: false,
        })
    }

    fn malformed(&self, detail: impl std::fmt::Display) -> SourceError {
        SourceError::Malformed(format!("line {}: {detail}", self.line_no))
    }

    /// Parses one non-empty data row into a request.
    fn parse_row(&self, line: &str) -> Result<VmRequest, SourceError> {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != COLUMNS.len() {
            return Err(self.malformed(format_args!(
                "expected {} comma-separated fields ({}), got {}",
                COLUMNS.len(),
                COLUMNS.join(","),
                fields.len()
            )));
        }
        let id: u64 = fields[0].parse().map_err(|e| self.malformed(format_args!("vmId: {e}")))?;
        let tenant: u64 =
            fields[1].parse().map_err(|e| self.malformed(format_args!("tenantId: {e}")))?;
        let vm_type_id: u64 =
            fields[2].parse().map_err(|e| self.malformed(format_args!("vmTypeId: {e}")))?;
        // `priority` is validated as numeric but otherwise unused.
        let _priority: i64 =
            fields[3].parse().map_err(|e| self.malformed(format_args!("priority: {e}")))?;
        let start_days: f64 =
            fields[4].parse().map_err(|e| self.malformed(format_args!("starttime: {e}")))?;
        let cores: u32 =
            fields[6].parse().map_err(|e| self.malformed(format_args!("core: {e}")))?;
        let memory_gib: f64 =
            fields[7].parse().map_err(|e| self.malformed(format_args!("memory: {e}")))?;
        if !memory_gib.is_finite() || memory_gib < 0.0 {
            return Err(self.malformed(format_args!("memory: {memory_gib} GiB")));
        }

        // Times: fractional days, clamped so pre-window VMs arrive at 0 and
        // VMs without an end outlive the horizon by one second.
        let arrival = (start_days.max(0.0) * DAY_SECS).round() as u64;
        let departure = if fields[5].is_empty() {
            self.header.duration.saturating_add(1)
        } else {
            let end_days: f64 =
                fields[5].parse().map_err(|e| self.malformed(format_args!("endtime: {e}")))?;
            let end = (end_days.max(0.0) * DAY_SECS).round() as u64;
            if end <= arrival {
                return Err(self
                    .malformed(format_args!("endtime {end}s is not after starttime {arrival}s")));
            }
            end
        };

        // Tenant-correlated synthesized metadata (see the module docs).
        let tenant_hash = mix(tenant);
        let guest_os = if tenant_hash & 1 == 0 { GuestOs::Linux } else { GuestOs::Windows };
        let region = ((tenant_hash >> 8) % 8) as u8;
        // Each tenant runs a small set of 3 workloads; the VM id picks one.
        let workload_index = ((tenant_hash >> 16).wrapping_add(mix(id) % 3) % 158) as usize;
        // Tenant untouched-memory means spread over [0.15, 0.85) with ±0.1
        // per-VM jitter, echoing the generator's production-like shape.
        let tenant_untouched = 0.15 + 0.7 * mix_fraction(tenant ^ 0xA5A5);
        let untouched_fraction =
            (tenant_untouched + 0.2 * (mix_fraction(id ^ 0x5A5A) - 0.5)).clamp(0.0, 0.98);

        Ok(VmRequest {
            id,
            arrival,
            lifetime: departure - arrival,
            cores,
            memory: Bytes::new((memory_gib * Bytes::GIB.as_u64() as f64).round() as u64),
            customer: CustomerId((tenant % u32::MAX as u64) as u32),
            vm_type: VmType::ALL[(vm_type_id % VmType::ALL.len() as u64) as usize],
            guest_os,
            region,
            workload_index,
            untouched_fraction,
        })
    }
}

impl ArrivalSource for AzureTraceReader {
    fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn next_request(&mut self) -> Result<Option<VmRequest>, SourceError> {
        if self.done {
            return Ok(None);
        }
        loop {
            let Some(line) = self.lines.next() else {
                self.done = true;
                return Ok(None);
            };
            self.line_no += 1;
            let line = line.map_err(|e| {
                SourceError::Io(format!("read error at line {}: {e}", self.line_no))
            })?;
            let trimmed = line.trim();
            if trimmed.is_empty() || (self.line_no == 1 && trimmed.starts_with("vmId")) {
                continue;
            }
            let request = self.parse_row(trimmed)?;
            request.validate().map_err(|e| self.malformed(e))?;
            if request.arrival < self.last_arrival {
                return Err(self.malformed(format_args!(
                    "vm {} arrives at {}s, before the previous arrival at {}s — the file \
                     must be sorted by starttime (bounded-memory streaming requires it)",
                    request.id, request.arrival, self.last_arrival
                )));
            }
            if request.arrival > self.header.duration {
                return Err(self.malformed(format_args!(
                    "vm {} arrives at {}s, past the trace duration {}s",
                    request.id, request.arrival, self.header.duration
                )));
            }
            self.last_arrival = request.arrival;
            return Ok(Some(request));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn header(duration: u64) -> TraceHeader {
        TraceHeader {
            cluster_id: 0,
            servers: 4,
            cores_per_server: 48,
            dram_per_server: Bytes::from_gib(384),
            duration,
        }
    }

    fn write_csv(name: &str, contents: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("pond-azure-{name}-{}.csv", std::process::id()));
        let mut file = File::create(&path).unwrap();
        file.write_all(contents.as_bytes()).unwrap();
        path
    }

    fn drain(reader: &mut AzureTraceReader) -> Result<Vec<VmRequest>, SourceError> {
        let mut out = Vec::new();
        while let Some(request) = reader.next_request()? {
            out.push(request);
        }
        Ok(out)
    }

    #[test]
    fn reads_a_joined_packing_trace() {
        let path = write_csv(
            "ok",
            "vmId,tenantId,vmTypeId,priority,starttime,endtime,core,memory\n\
             1,42,0,0,-0.5,0.25,4,16\n\
             2,42,1,0,0.0,0.5,8,32.5\n\
             \n\
             3,7,2,1,0.25,,2,8\n",
        );
        let mut reader = AzureTraceReader::open(&path, header(86_400)).unwrap();
        let requests = drain(&mut reader).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(requests.len(), 3);

        // Pre-window start clamps to 0; 0.25 days = 21 600 s.
        assert_eq!(requests[0].arrival, 0);
        assert_eq!(requests[0].lifetime, 21_600);
        assert_eq!(requests[0].cores, 4);
        assert_eq!(requests[0].memory, Bytes::from_gib(16));
        assert_eq!(requests[0].vm_type, VmType::GeneralPurpose);

        // Fractional memory survives.
        assert_eq!(requests[1].memory, Bytes::from_gib(32) + Bytes::from_mib(512));
        assert_eq!(requests[1].vm_type, VmType::MemoryOptimized);

        // Empty endtime: departs one second past the horizon.
        assert_eq!(requests[2].arrival, 21_600);
        assert_eq!(requests[2].departure(), 86_401);

        // Tenant-correlated synthesized metadata: same tenant, same OS and
        // region; every request validates.
        assert_eq!(requests[0].guest_os, requests[1].guest_os);
        assert_eq!(requests[0].region, requests[1].region);
        for r in &requests {
            assert_eq!(r.validate(), Ok(()));
            assert!(r.workload_index < 158);
        }
    }

    #[test]
    fn synthesized_metadata_is_deterministic() {
        let csv = "1,42,0,0,0.0,0.25,4,16\n2,43,1,0,0.1,0.5,8,32\n";
        let a_path = write_csv("det-a", csv);
        let b_path = write_csv("det-b", csv);
        let a = drain(&mut AzureTraceReader::open(&a_path, header(86_400)).unwrap()).unwrap();
        let b = drain(&mut AzureTraceReader::open(&b_path, header(86_400)).unwrap()).unwrap();
        std::fs::remove_file(&a_path).ok();
        std::fs::remove_file(&b_path).ok();
        assert_eq!(a, b);
    }

    #[test]
    fn unsorted_files_are_rejected() {
        let path = write_csv("unsorted", "1,1,0,0,0.5,0.6,2,8\n2,1,0,0,0.25,0.6,2,8\n");
        let mut reader = AzureTraceReader::open(&path, header(86_400)).unwrap();
        let err = drain(&mut reader).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("must be sorted"), "{err}");
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        for (name, row, needle) in [
            ("fields", "1,2,3\n", "comma-separated"),
            ("vmid", "x,1,0,0,0.0,0.5,2,8\n", "vmId"),
            ("endtime", "1,1,0,0,0.5,0.5,2,8\n", "not after"),
            ("cores", "1,1,0,0,0.0,0.5,0,8\n", "zero cores"),
            ("pasthorizon", "1,1,0,0,2.0,2.5,2,8\n", "past the trace duration"),
        ] {
            let path = write_csv(name, row);
            let mut reader = AzureTraceReader::open(&path, header(86_400)).unwrap();
            let err = drain(&mut reader).unwrap_err();
            std::fs::remove_file(&path).ok();
            let text = err.to_string();
            assert!(text.contains("line 1"), "{name}: {text}");
            assert!(text.contains(needle), "{name}: {text}");
        }
    }

    #[test]
    fn missing_files_surface_an_io_error() {
        let missing = std::env::temp_dir().join("pond-azure-definitely-missing.csv");
        assert!(matches!(
            AzureTraceReader::open(&missing, header(86_400)),
            Err(SourceError::Io(_))
        ));
    }
}
