//! Stranded-memory analysis (Figure 2 and §3.1).
//!
//! Figure 2a buckets cluster-days by scheduled-core percentage and reports
//! the mean, 5th, and 95th percentile of stranded memory in each bucket.
//! Figure 2b shows stranding over time for individual racks.

use crate::simulation::StrandingSample;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};

/// Aggregate stranding statistics for one scheduled-cores bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrandingBucket {
    /// Lower edge of the bucket (fraction of cores scheduled, inclusive).
    pub cores_from: f64,
    /// Upper edge of the bucket (exclusive).
    pub cores_to: f64,
    /// Number of samples in the bucket.
    pub samples: usize,
    /// Mean stranded-memory fraction.
    pub mean: f64,
    /// 5th percentile of the stranded-memory fraction.
    pub p5: f64,
    /// 95th percentile of the stranded-memory fraction.
    pub p95: f64,
    /// Maximum observed stranded-memory fraction (outliers).
    pub max: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[pos]
}

/// Buckets stranding samples by scheduled-core fraction (Figure 2a).
///
/// `bucket_edges` are the lower edges of the buckets, e.g. `[0.6, 0.7, 0.8, 0.9]`
/// reproduces the paper's 60/70/80/90% buckets. Samples below the first edge
/// are ignored; the last bucket is open-ended.
pub fn bucket_by_scheduled_cores(
    samples: &[StrandingSample],
    bucket_edges: &[f64],
) -> Vec<StrandingBucket> {
    bucket_edges
        .iter()
        .enumerate()
        .map(|(i, &from)| {
            let to = bucket_edges.get(i + 1).copied().unwrap_or(1.01);
            let mut values: Vec<f64> = samples
                .iter()
                .filter(|s| s.scheduled_cores_fraction >= from && s.scheduled_cores_fraction < to)
                .map(|s| s.stranded_fraction)
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mean = if values.is_empty() {
                0.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            StrandingBucket {
                cores_from: from,
                cores_to: to,
                samples: values.len(),
                mean,
                p5: percentile(&values, 0.05),
                p95: percentile(&values, 0.95),
                max: values.last().copied().unwrap_or(0.0),
            }
        })
        .collect()
}

/// Stranding time series for one rack (Figure 2b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackSeries {
    /// Rack index.
    pub rack: usize,
    /// `(time in seconds, stranded fraction of the rack's DRAM)` points.
    pub points: Vec<(u64, f64)>,
}

/// Aggregates per-server stranded memory into racks of `servers_per_rack`
/// servers and returns one time series per rack.
///
/// # Panics
///
/// Panics if `servers_per_rack` is zero or `dram_per_server` is zero.
pub fn rack_time_series(
    samples: &[StrandingSample],
    servers_per_rack: usize,
    dram_per_server: Bytes,
) -> Vec<RackSeries> {
    assert!(servers_per_rack > 0, "a rack needs at least one server");
    assert!(!dram_per_server.is_zero(), "servers need DRAM");
    let Some(first) = samples.first() else {
        return Vec::new();
    };
    let racks = first.per_server_stranded.len().div_ceil(servers_per_rack);
    (0..racks)
        .map(|rack| {
            let lo = rack * servers_per_rack;
            let points = samples
                .iter()
                .map(|s| {
                    let hi = ((rack + 1) * servers_per_rack).min(s.per_server_stranded.len());
                    let stranded: Bytes = s.per_server_stranded[lo..hi].iter().copied().sum();
                    let capacity = dram_per_server.as_u64() * (hi - lo).max(1) as u64;
                    (s.time, stranded.as_u64() as f64 / capacity as f64)
                })
                .collect();
            RackSeries { rack, points }
        })
        .collect()
}

/// Drops the warm-up prefix of a sample series (the paper's clusters are in
/// steady state; ours start warm but the first day still ramps packing).
pub fn skip_warmup(samples: &[StrandingSample], warmup_secs: u64) -> Vec<StrandingSample> {
    samples.iter().filter(|s| s.time >= warmup_secs).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(time: u64, cores: f64, stranded: f64, per_server: Vec<u64>) -> StrandingSample {
        StrandingSample {
            time,
            scheduled_cores_fraction: cores,
            stranded_fraction: stranded,
            per_server_stranded: per_server.into_iter().map(Bytes::from_gib).collect(),
        }
    }

    #[test]
    fn bucketing_partitions_by_core_utilization() {
        let samples = vec![
            sample(0, 0.65, 0.02, vec![]),
            sample(1, 0.75, 0.06, vec![]),
            sample(2, 0.78, 0.08, vec![]),
            sample(3, 0.92, 0.20, vec![]),
        ];
        let buckets = bucket_by_scheduled_cores(&samples, &[0.6, 0.7, 0.8, 0.9]);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].samples, 1);
        assert_eq!(buckets[1].samples, 2);
        assert_eq!(buckets[2].samples, 0);
        assert_eq!(buckets[3].samples, 1);
        assert!((buckets[1].mean - 0.07).abs() < 1e-12);
        assert_eq!(buckets[3].max, 0.20);
        // Empty bucket reports zeros rather than NaN.
        assert_eq!(buckets[2].mean, 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples: Vec<StrandingSample> =
            (0..100).map(|i| sample(i, 0.85, i as f64 / 500.0, vec![])).collect();
        let buckets = bucket_by_scheduled_cores(&samples, &[0.8]);
        let b = &buckets[0];
        assert!(b.p5 <= b.mean);
        assert!(b.mean <= b.p95);
        assert!(b.p95 <= b.max);
    }

    #[test]
    fn rack_series_groups_servers() {
        let samples = vec![
            sample(0, 0.8, 0.1, vec![10, 0, 20, 0]),
            sample(86400, 0.8, 0.1, vec![0, 0, 40, 40]),
        ];
        let racks = rack_time_series(&samples, 2, Bytes::from_gib(100));
        assert_eq!(racks.len(), 2);
        // Rack 0 = servers 0-1: 10/200 then 0/200.
        assert!((racks[0].points[0].1 - 0.05).abs() < 1e-12);
        assert!((racks[0].points[1].1 - 0.0).abs() < 1e-12);
        // Rack 1 = servers 2-3: 20/200 then 80/200.
        assert!((racks[1].points[1].1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rack_series_handles_empty_input() {
        assert!(rack_time_series(&[], 2, Bytes::from_gib(100)).is_empty());
    }

    #[test]
    fn skip_warmup_drops_early_samples() {
        let samples = vec![sample(0, 0.5, 0.0, vec![]), sample(200_000, 0.8, 0.1, vec![])];
        let filtered = skip_warmup(&samples, 86_400);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].time, 200_000);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rack_series_rejects_zero_rack_size() {
        let _ = rack_time_series(&[sample(0, 0.5, 0.0, vec![1])], 0, Bytes::from_gib(1));
    }
}
