//! # cluster-sim
//!
//! The datacenter-scale substrate of the Pond reproduction (ASPLOS '23,
//! §3.1, §6.1 "Simulations", §6.5). The paper's end-to-end results come from
//! replaying 75 days of VM arrivals from 100 production clusters; we cannot
//! access those traces, so this crate provides:
//!
//! * [`trace`] / [`tracegen`] — a statistical VM-trace generator calibrated
//!   to the distributions the paper reports (VM shapes, lifetimes, per-cluster
//!   utilization, customer-correlated untouched memory with a ~50% median).
//! * [`server`] — dual-socket servers with per-NUMA-node core/memory
//!   accounting.
//! * [`scheduler`] — a NUMA-aware best-fit bin-packing VM scheduler with a
//!   pluggable [`scheduler::MemoryPolicy`] that decides each VM's local/pool
//!   split (the hook `pond-core` uses to plug in the full Pond policy). The
//!   [`scheduler::PlacementEngine`] selects candidates through an
//!   incrementally maintained free-core bucket index in O(log n) per arrival.
//! * [`source`] — the [`source::ArrivalSource`] streaming layer: time-sorted
//!   arrivals behind a [`source::TraceHeader`], so replays hold O(live VMs)
//!   memory instead of the whole trace. In-memory ([`source::TraceCursor`]),
//!   lazily generated ([`tracegen::GeneratorSource`]), and (behind the
//!   `azure-trace` feature) CSV-file-backed implementations.
//! * [`event`] — the time-ordered event core: arrivals, departures,
//!   asynchronous pool-release completions, and snapshot ticks merged into
//!   one deterministic stream (departures before releases before snapshots
//!   before arrivals at equal times). `pond-core`'s fleet replay drives the
//!   full control plane on this stream for the Figure 19/20 experiments.
//! * [`simulation`] — the event-driven cluster simulator: placement,
//!   per-server and per-pool peak tracking, QoS outcomes, pool releases,
//!   driven by the [`event`] stream.
//! * [`stranding`] — stranded-memory measurement (Figure 2).
//! * [`pooling`] — DRAM-requirement analysis across pool sizes (Figures 3
//!   and 21), with serial-reference and bit-identical parallel paths.
//! * [`sweep`] — the scoped-thread parallel runner the sweeps (and the
//!   figure binaries) fan their simulation grids out on.
//!
//! # Example
//!
//! ```
//! use cluster_sim::tracegen::{TraceGenerator, ClusterConfig};
//! use cluster_sim::simulation::{Simulation, SimulationConfig};
//! use cluster_sim::scheduler::FixedPoolFraction;
//!
//! let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
//! let mut sim = Simulation::new(SimulationConfig::default(), FixedPoolFraction::new(0.3));
//! let outcome = sim.run(&trace);
//! assert!(outcome.scheduled_vms > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
#[cfg(feature = "azure-trace")]
pub mod pond_trace;
pub mod pooling;
pub mod scheduler;
pub mod server;
pub mod simulation;
pub mod source;
pub mod stranding;
pub mod sweep;
pub mod trace;
pub mod tracegen;

#[cfg(feature = "azure-trace")]
pub use pond_trace::AzureTraceReader;
pub use scheduler::{AllLocal, FixedPoolFraction, MemoryPolicy};
pub use simulation::{Simulation, SimulationConfig, SimulationOutcome};
pub use source::{
    clipped_core_seconds, mean_core_utilization, ArrivalSource, SourceError, TraceCursor,
    TraceHeader, TraceSummary, Validated,
};
pub use trace::{ClusterTrace, VmRequest};
pub use tracegen::{ClusterConfig, GeneratorSource, TraceGenerator};
