//! The QoS mitigation path: one-time reconfiguration to all-local memory
//! (§4.2 "Reconfiguration of memory allocation", §4.3 B).
//!
//! When the QoS monitor decides a VM is suffering because too much of its
//! working set sits on pool memory, the hypervisor temporarily disables the
//! virtualization accelerator, copies the VM's pool memory into local DRAM
//! (about 50 ms per GiB), re-enables the accelerator, and releases the pool
//! capacity back to the Pool Manager.

use crate::host::{HostMemory, HostMemoryError};
use crate::vm::VirtualMachine;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The result of one reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigurationReport {
    /// Pool memory that was copied into local DRAM.
    pub moved: Bytes,
    /// Time the copy took (the VM runs degraded, not paused, during this).
    pub copy_duration: Duration,
    /// Whether the virtualization accelerator had to be toggled.
    pub accelerator_toggled: bool,
}

/// Executes reconfigurations and tracks how many were performed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurationEngine {
    /// Copy cost per GiB of pool memory (the paper's "50 ms per GB").
    pub copy_cost_per_gib: Duration,
    performed: u64,
    total_copy_time: Duration,
}

impl Default for ReconfigurationEngine {
    fn default() -> Self {
        ReconfigurationEngine::new(Duration::from_millis(50))
    }
}

impl ReconfigurationEngine {
    /// Creates an engine with a custom per-GiB copy cost.
    pub fn new(copy_cost_per_gib: Duration) -> Self {
        ReconfigurationEngine { copy_cost_per_gib, performed: 0, total_copy_time: Duration::ZERO }
    }

    /// Number of reconfigurations performed so far.
    pub fn performed(&self) -> u64 {
        self.performed
    }

    /// Total time spent copying pool memory to local DRAM across all
    /// reconfigurations — the degraded-mode time the mitigations charged to
    /// the event timeline.
    pub fn total_copy_time(&self) -> Duration {
        self.total_copy_time
    }

    /// Charges a memory copy of `amount` at the engine's per-GiB rate
    /// without touching host state — the failure-evacuation path, where the
    /// copy runs between *different* hosts (the dying pod's host streams the
    /// VM to its new home) so there is no single `HostMemory` to convert.
    /// Counts toward [`ReconfigurationEngine::performed`] and
    /// [`ReconfigurationEngine::total_copy_time`] like any other
    /// reconfiguration copy, and returns the copy duration to charge on the
    /// event timeline.
    pub fn charge_copy(&mut self, amount: Bytes) -> Duration {
        let copy_duration = self.copy_cost_per_gib * amount.slices_ceil() as u32;
        self.performed += 1;
        self.total_copy_time += copy_duration;
        copy_duration
    }

    /// Moves a VM entirely onto local DRAM.
    ///
    /// The host-side allocation is converted first; only if that succeeds is
    /// the VM's own configuration updated, so a failure leaves both sides
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`HostMemoryError`] when the host lacks local DRAM or does
    /// not know the VM.
    pub fn reconfigure(
        &mut self,
        host: &mut HostMemory,
        vm: &mut VirtualMachine,
    ) -> Result<ReconfigurationReport, HostMemoryError> {
        let moved = host.convert_pool_to_local(vm.id())?;
        if moved.is_zero() {
            // Nothing to move: either the VM was all-local already or a
            // previous mitigation ran. No accelerator toggle needed.
            return Ok(ReconfigurationReport {
                moved,
                copy_duration: Duration::ZERO,
                accelerator_toggled: false,
            });
        }
        vm.mark_reconfigured();
        self.performed += 1;
        let copy_duration = self.copy_cost_per_gib * moved.slices_ceil() as u32;
        self.total_copy_time += copy_duration;
        Ok(ReconfigurationReport { moved, copy_duration, accelerator_toggled: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{VmConfig, VmId};
    use workload_model::WorkloadSuite;

    fn setup(pool_gib: u64, host_local_gib: u64) -> (HostMemory, VirtualMachine) {
        let suite = WorkloadSuite::standard();
        let workload = suite.get("voltdb/tpcc").unwrap().clone();
        let memory = workload.footprint + Bytes::from_gib(pool_gib);
        let vm = VirtualMachine::launch(
            11,
            VmConfig { cores: 8, memory, pool_memory: Bytes::from_gib(pool_gib) },
            workload,
        );
        let mut host = HostMemory::new(Bytes::from_gib(host_local_gib), Bytes::from_gib(4));
        host.online_pool(Bytes::from_gib(pool_gib));
        host.pin_vm(VmId(11), vm.config().local_memory(), vm.config().pool_memory).unwrap();
        (host, vm)
    }

    #[test]
    fn reconfiguration_moves_pool_memory_local() {
        let (mut host, mut vm) = setup(16, 512);
        let mut engine = ReconfigurationEngine::default();
        let report = engine.reconfigure(&mut host, &mut vm).unwrap();
        assert_eq!(report.moved, Bytes::from_gib(16));
        assert!(report.accelerator_toggled);
        // 16 GiB at 50 ms/GiB = 800 ms.
        assert_eq!(report.copy_duration, Duration::from_millis(800));
        assert_eq!(engine.total_copy_time(), Duration::from_millis(800));
        assert!(vm.is_reconfigured());
        assert_eq!(vm.pool_memory(), Bytes::ZERO);
        assert_eq!(engine.performed(), 1);
        // The pool capacity is free on the host afterwards.
        assert_eq!(host.pool_free(), Bytes::from_gib(16));
    }

    #[test]
    fn reconfiguring_an_all_local_vm_is_a_noop() {
        let (mut host, mut vm) = setup(0, 512);
        let mut engine = ReconfigurationEngine::default();
        let report = engine.reconfigure(&mut host, &mut vm).unwrap();
        assert_eq!(report.moved, Bytes::ZERO);
        assert!(!report.accelerator_toggled);
        assert!(!vm.is_reconfigured());
        assert_eq!(engine.performed(), 0);
    }

    #[test]
    fn reconfiguration_fails_cleanly_without_local_headroom() {
        // Host local DRAM barely fits the VM's local share; the pool share
        // cannot be absorbed.
        let suite = WorkloadSuite::standard();
        let workload = suite.get("voltdb/tpcc").unwrap().clone();
        let local_needed = workload.footprint;
        let mut host = HostMemory::new(local_needed + Bytes::from_gib(6), Bytes::from_gib(2));
        host.online_pool(Bytes::from_gib(16));
        let vm_memory = workload.footprint + Bytes::from_gib(16);
        let mut vm = VirtualMachine::launch(
            12,
            VmConfig { cores: 8, memory: vm_memory, pool_memory: Bytes::from_gib(16) },
            workload,
        );
        host.pin_vm(VmId(12), vm.config().local_memory(), vm.config().pool_memory).unwrap();

        let mut engine = ReconfigurationEngine::default();
        let err = engine.reconfigure(&mut host, &mut vm).unwrap_err();
        assert!(matches!(err, HostMemoryError::InsufficientLocal { .. }));
        // Nothing changed.
        assert!(!vm.is_reconfigured());
        assert_eq!(vm.pool_memory(), Bytes::from_gib(16));
        assert_eq!(engine.performed(), 0);
    }

    #[test]
    fn charge_copy_uses_the_engine_rate_without_a_host() {
        let mut engine = ReconfigurationEngine::default();
        // 8 GiB at the default 50 ms/GiB.
        assert_eq!(engine.charge_copy(Bytes::from_gib(8)), Duration::from_millis(400));
        assert_eq!(engine.performed(), 1);
        assert_eq!(engine.total_copy_time(), Duration::from_millis(400));
    }

    #[test]
    fn custom_copy_cost_is_applied() {
        let (mut host, mut vm) = setup(4, 512);
        let mut engine = ReconfigurationEngine::new(Duration::from_millis(100));
        let report = engine.reconfigure(&mut host, &mut vm).unwrap();
        assert_eq!(report.copy_duration, Duration::from_millis(400));
    }
}
