//! Hypervisor telemetry for opaque VMs (§4.2 "Telemetry for opaque VMs", §5).
//!
//! Two kinds of signals feed Pond's models:
//!
//! * **core-PMU / TMA counters**, sampled once per second per VM (1 ms each),
//!   re-exported here from `workload-model`'s sampler and associated with a
//!   VM instead of a bare workload;
//! * **untouched-memory telemetry**: the guest-committed-memory counter
//!   (which overestimates real usage) and hypervisor page-table access-bit
//!   scans every 30 minutes (10 s each), which together bound how much of the
//!   rented memory a VM has actually touched.

use crate::vm::VirtualMachine;
use cxl_hw::units::Bytes;
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use workload_model::telemetry::{TelemetrySampler, TmaCounters};

/// One access-bit scan result for a VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessScan {
    /// Time since VM start at which the scan completed.
    pub at: Duration,
    /// Memory whose access bits were set since VM start (monotonically
    /// non-decreasing across scans).
    pub touched: Bytes,
    /// Rented memory that has never had its access bit set.
    pub untouched: Bytes,
}

/// Periodic hypervisor page-table access-bit scanning.
///
/// Because Pond only needs *untouched* pages, access bits are scanned but
/// rarely reset, which keeps the overhead at one 10-second scan per half hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessBitScanner {
    /// Interval between scans (default 30 minutes).
    pub scan_interval: Duration,
    /// Wall-clock cost of one scan (default 10 seconds).
    pub scan_cost: Duration,
}

impl Default for AccessBitScanner {
    fn default() -> Self {
        AccessBitScanner {
            scan_interval: Duration::from_secs(30 * 60),
            scan_cost: Duration::from_secs(10),
        }
    }
}

impl AccessBitScanner {
    /// Simulates the scan series over a VM's lifetime.
    ///
    /// The workload's footprint is touched progressively: most pages are
    /// touched early (warm-up), the rest over the first part of the lifetime,
    /// so the untouched-memory estimate shrinks towards its final value.
    pub fn scan_series(
        &self,
        vm: &VirtualMachine,
        lifetime: Duration,
        seed: u64,
    ) -> Vec<AccessScan> {
        let scans = (lifetime.as_secs() / self.scan_interval.as_secs().max(1)) as usize;
        let footprint = vm.touched_memory();
        let rented = vm.config().memory;
        let mut rng = Pcg64::seed_from_u64(seed ^ vm.id().0);
        // Fraction of the footprint touched by the first scan.
        let warmup: f64 = rng.gen_range(0.6..0.95);
        (1..=scans.max(1))
            .map(|i| {
                let progress = i as f64 / scans.max(1) as f64;
                // Touched fraction approaches 1.0 along a saturating curve.
                let fraction = warmup + (1.0 - warmup) * (1.0 - (-3.0 * progress).exp());
                let touched = footprint.scaled(fraction.min(1.0));
                AccessScan {
                    at: self.scan_interval * i as u32,
                    touched,
                    untouched: rented.saturating_sub(touched),
                }
            })
            .collect()
    }

    /// The minimum untouched memory observed across a scan series — the label
    /// used to train the untouched-memory model (Figure 14).
    pub fn min_untouched(&self, scans: &[AccessScan]) -> Bytes {
        scans.iter().map(|s| s.untouched).min().unwrap_or(Bytes::ZERO)
    }

    /// Total scanning overhead over a VM lifetime.
    pub fn overhead(&self, lifetime: Duration) -> Duration {
        let scans = (lifetime.as_secs() / self.scan_interval.as_secs().max(1)) as u32;
        self.scan_cost * scans
    }
}

/// A telemetry record the control plane receives for one VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmTelemetryRecord {
    /// Aggregated core-PMU counters for the VM.
    pub counters: TmaCounters,
    /// Guest-committed memory reported by the existing hypervisor counter.
    /// Overestimates actual usage (the paper notes it is an upper bound) and
    /// is available for ~98% of VMs.
    pub guest_committed: Option<Bytes>,
    /// Minimum untouched memory observed by access-bit scanning.
    pub min_untouched: Bytes,
}

/// Hypervisor telemetry pipeline: PMU sampling plus untouched-memory tracking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypervisorTelemetry {
    /// PMU sampler (per-workload TMA counters with sampling noise).
    pub pmu: TelemetrySampler,
    /// Access-bit scanner configuration.
    pub scanner: AccessBitScanner,
    /// Interval between PMU samples (default 1 second).
    pub pmu_interval: Duration,
    /// Cost of one PMU sample (default 1 millisecond).
    pub pmu_cost: Duration,
    /// Fraction of VMs for which the guest-committed counter is available
    /// (0.98 at Azure).
    pub committed_counter_coverage: f64,
}

impl Default for HypervisorTelemetry {
    fn default() -> Self {
        HypervisorTelemetry {
            pmu: TelemetrySampler::default(),
            scanner: AccessBitScanner::default(),
            pmu_interval: Duration::from_secs(1),
            pmu_cost: Duration::from_millis(1),
            committed_counter_coverage: 0.98,
        }
    }
}

impl HypervisorTelemetry {
    /// Produces the telemetry record for a VM over its lifetime.
    pub fn record(&self, vm: &VirtualMachine, lifetime: Duration, seed: u64) -> VmTelemetryRecord {
        let counters = self.pmu.sample_mean(vm.workload(), seed, 16);
        let scans = self.scanner.scan_series(vm, lifetime, seed);
        let min_untouched = self.scanner.min_untouched(&scans);
        let mut rng = Pcg64::seed_from_u64(seed.wrapping_add(vm.id().0));
        let guest_committed = if rng.gen::<f64>() < self.committed_counter_coverage {
            // Committed memory overestimates the true footprint by 5-30%.
            let overestimate = 1.0 + rng.gen_range(0.05..0.30);
            Some(Bytes::new((vm.touched_memory().as_u64() as f64 * overestimate) as u64))
        } else {
            None
        };
        VmTelemetryRecord { counters, guest_committed, min_untouched }
    }

    /// Relative CPU overhead of PMU sampling (cost per sample over the
    /// sampling interval). The paper reports this is negligible; with the
    /// defaults it is 0.1%.
    pub fn pmu_overhead_fraction(&self) -> f64 {
        self.pmu_cost.as_secs_f64() / self.pmu_interval.as_secs_f64()
    }

    /// Relative overhead of access-bit scanning (scan cost over the scan
    /// interval); about 0.6% with the defaults.
    pub fn scan_overhead_fraction(&self) -> f64 {
        self.scanner.scan_cost.as_secs_f64() / self.scanner.scan_interval.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use workload_model::WorkloadSuite;

    fn sample_vm(slack_gib: u64) -> VirtualMachine {
        let suite = WorkloadSuite::standard();
        let workload = suite.get("proprietary/P3").unwrap().clone();
        let memory = workload.footprint + Bytes::from_gib(slack_gib);
        VirtualMachine::launch(7, VmConfig::all_local(8, memory), workload)
    }

    #[test]
    fn scan_series_is_monotone_and_bounded() {
        let vm = sample_vm(20);
        let scanner = AccessBitScanner::default();
        let scans = scanner.scan_series(&vm, Duration::from_secs(48 * 3600), 1);
        assert!(scans.len() >= 90, "48h of 30-minute scans");
        for pair in scans.windows(2) {
            assert!(pair[1].touched >= pair[0].touched, "touched memory only grows");
            assert!(pair[1].untouched <= pair[0].untouched);
        }
        for scan in &scans {
            assert!(scan.touched <= vm.config().memory);
            assert_eq!(scan.touched + scan.untouched, vm.config().memory);
        }
    }

    #[test]
    fn min_untouched_reflects_the_slack() {
        let vm = sample_vm(20);
        let scanner = AccessBitScanner::default();
        let scans = scanner.scan_series(&vm, Duration::from_secs(24 * 3600), 2);
        let min = scanner.min_untouched(&scans);
        // The VM never touches less than its 20 GiB of slack.
        assert!(min >= Bytes::from_gib(19), "min untouched {min}");
        assert_eq!(scanner.min_untouched(&[]), Bytes::ZERO);
    }

    #[test]
    fn scanning_overhead_is_small() {
        let scanner = AccessBitScanner::default();
        let day = Duration::from_secs(24 * 3600);
        let overhead = scanner.overhead(day);
        // 48 scans at 10 s each = 480 s over a day: well under 1%.
        assert!(overhead < Duration::from_secs(600));
        let telemetry = HypervisorTelemetry::default();
        assert!(telemetry.pmu_overhead_fraction() < 0.01);
        assert!(telemetry.scan_overhead_fraction() < 0.01);
    }

    #[test]
    fn record_contains_all_signals() {
        let vm = sample_vm(16);
        let telemetry = HypervisorTelemetry::default();
        let record = telemetry.record(&vm, Duration::from_secs(6 * 3600), 3);
        assert!(record.min_untouched >= Bytes::from_gib(15));
        assert!(record.counters.memory_bound >= record.counters.dram_bound);
        if let Some(committed) = record.guest_committed {
            assert!(committed >= vm.touched_memory(), "committed counter overestimates");
        }
    }

    #[test]
    fn committed_counter_coverage_is_respected() {
        let vm = sample_vm(16);
        let telemetry =
            HypervisorTelemetry { committed_counter_coverage: 0.0, ..Default::default() };
        let record = telemetry.record(&vm, Duration::from_secs(3600), 4);
        assert!(record.guest_committed.is_none());
        let always = HypervisorTelemetry { committed_counter_coverage: 1.0, ..Default::default() };
        assert!(always.record(&vm, Duration::from_secs(3600), 4).guest_committed.is_some());
    }

    #[test]
    fn records_are_deterministic_per_seed() {
        let vm = sample_vm(16);
        let telemetry = HypervisorTelemetry::default();
        let a = telemetry.record(&vm, Duration::from_secs(3600), 5);
        let b = telemetry.record(&vm, Duration::from_secs(3600), 5);
        assert_eq!(a, b);
    }
}
