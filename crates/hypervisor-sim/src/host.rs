//! Host-side physical memory accounting (§4.2).
//!
//! Each host preallocates (pins) every VM's memory at start so virtualization
//! accelerators keep working (G2). The host keeps a hypervisor-private
//! partition for host agents and drivers so their allocations can never
//! fragment the hot-pluggable pool range, and it tracks how much pool
//! capacity is currently onlined from the EMCs.

use crate::vm::VmId;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors raised by host memory management.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HostMemoryError {
    /// Not enough free local DRAM for the requested allocation.
    InsufficientLocal {
        /// Bytes requested.
        requested: Bytes,
        /// Bytes available.
        available: Bytes,
    },
    /// Not enough onlined pool memory for the requested allocation.
    InsufficientPool {
        /// Bytes requested.
        requested: Bytes,
        /// Bytes available.
        available: Bytes,
    },
    /// Host agents exhausted the hypervisor-private partition.
    PrivatePartitionExhausted {
        /// Bytes requested.
        requested: Bytes,
        /// Bytes available.
        available: Bytes,
    },
    /// The VM is already placed on this host.
    VmAlreadyPlaced(VmId),
    /// The VM is not placed on this host.
    UnknownVm(VmId),
    /// Attempted to offline pool memory that is still allocated to VMs.
    PoolMemoryInUse {
        /// Bytes requested to offline.
        requested: Bytes,
        /// Bytes currently free (offline-able).
        free: Bytes,
    },
}

impl fmt::Display for HostMemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostMemoryError::InsufficientLocal { requested, available } => {
                write!(f, "insufficient local DRAM: requested {requested}, available {available}")
            }
            HostMemoryError::InsufficientPool { requested, available } => {
                write!(f, "insufficient onlined pool memory: requested {requested}, available {available}")
            }
            HostMemoryError::PrivatePartitionExhausted { requested, available } => {
                write!(
                    f,
                    "hypervisor-private partition exhausted: requested {requested}, available {available}"
                )
            }
            HostMemoryError::VmAlreadyPlaced(vm) => {
                write!(f, "{vm} is already placed on this host")
            }
            HostMemoryError::UnknownVm(vm) => write!(f, "{vm} is not placed on this host"),
            HostMemoryError::PoolMemoryInUse { requested, free } => {
                write!(f, "cannot offline {requested} of pool memory, only {free} is free")
            }
        }
    }
}

impl Error for HostMemoryError {}

/// Per-VM pinned allocation on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmAllocation {
    /// Local DRAM pinned for the VM.
    pub local: Bytes,
    /// Pool (zNUMA) memory pinned for the VM.
    pub pool: Bytes,
}

/// The physical memory state of one host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostMemory {
    local_total: Bytes,
    private_partition: Bytes,
    private_used: Bytes,
    pool_online: Bytes,
    vm_allocations: BTreeMap<VmId, VmAllocation>,
    // Running sums over `vm_allocations`, so the allocated/free accessors —
    // called on every placement probe and peak sample of a fleet replay —
    // stay O(1) instead of walking the allocation map.
    local_pinned: Bytes,
    pool_pinned: Bytes,
}

impl HostMemory {
    /// Creates a host with `local_total` DRAM, reserving `private_partition`
    /// of it for the hypervisor and host agents.
    ///
    /// # Panics
    ///
    /// Panics if the private partition exceeds the local DRAM.
    pub fn new(local_total: Bytes, private_partition: Bytes) -> Self {
        assert!(private_partition <= local_total, "private partition cannot exceed local DRAM");
        HostMemory {
            local_total,
            private_partition,
            private_used: Bytes::ZERO,
            pool_online: Bytes::ZERO,
            vm_allocations: BTreeMap::new(),
            local_pinned: Bytes::ZERO,
            pool_pinned: Bytes::ZERO,
        }
    }

    /// Total local DRAM installed.
    pub fn local_total(&self) -> Bytes {
        self.local_total
    }

    /// Local DRAM rentable to VMs (total minus the private partition).
    pub fn local_rentable(&self) -> Bytes {
        self.local_total.saturating_sub(self.private_partition)
    }

    /// Local DRAM currently pinned for VMs.
    pub fn local_allocated(&self) -> Bytes {
        debug_assert_eq!(
            self.local_pinned,
            self.vm_allocations.values().map(|a| a.local).sum::<Bytes>()
        );
        self.local_pinned
    }

    /// Local DRAM still free for new VMs.
    pub fn local_free(&self) -> Bytes {
        self.local_rentable().saturating_sub(self.local_allocated())
    }

    /// Pool memory currently onlined on this host.
    pub fn pool_online(&self) -> Bytes {
        self.pool_online
    }

    /// Pool memory pinned for VMs.
    pub fn pool_allocated(&self) -> Bytes {
        debug_assert_eq!(
            self.pool_pinned,
            self.vm_allocations.values().map(|a| a.pool).sum::<Bytes>()
        );
        self.pool_pinned
    }

    /// Onlined pool memory not pinned to any VM.
    pub fn pool_free(&self) -> Bytes {
        self.pool_online.saturating_sub(self.pool_allocated())
    }

    /// Number of VMs placed on the host.
    pub fn vm_count(&self) -> usize {
        self.vm_allocations.len()
    }

    /// The allocation of a specific VM.
    pub fn allocation_of(&self, vm: VmId) -> Option<VmAllocation> {
        self.vm_allocations.get(&vm).copied()
    }

    /// Onlines pool capacity delivered by the Pool Manager (an
    /// `add_capacity` event): the memory becomes available for pinning.
    pub fn online_pool(&mut self, amount: Bytes) {
        self.pool_online += amount;
    }

    /// Offlines free pool capacity (a `release_capacity` flow). Fails if the
    /// requested amount is still pinned to VMs.
    ///
    /// # Errors
    ///
    /// Returns [`HostMemoryError::PoolMemoryInUse`] when `amount` exceeds the
    /// free pool memory.
    pub fn offline_pool(&mut self, amount: Bytes) -> Result<(), HostMemoryError> {
        if amount > self.pool_free() {
            return Err(HostMemoryError::PoolMemoryInUse {
                requested: amount,
                free: self.pool_free(),
            });
        }
        self.pool_online -= amount;
        Ok(())
    }

    /// Allocates memory from the hypervisor-private partition (host agents,
    /// drivers). These allocations can never touch pool memory, which is how
    /// Pond contains fragmentation of the hot-pluggable range.
    ///
    /// # Errors
    ///
    /// Returns [`HostMemoryError::PrivatePartitionExhausted`] when the
    /// partition cannot hold the allocation.
    pub fn allocate_host_agent(&mut self, amount: Bytes) -> Result<(), HostMemoryError> {
        let available = self.private_partition.saturating_sub(self.private_used);
        if amount > available {
            return Err(HostMemoryError::PrivatePartitionExhausted {
                requested: amount,
                available,
            });
        }
        self.private_used += amount;
        Ok(())
    }

    /// Pins a VM's memory: `local` from local DRAM and `pool` from onlined
    /// pool capacity. The whole allocation happens atomically.
    ///
    /// # Errors
    ///
    /// * [`HostMemoryError::VmAlreadyPlaced`] if the VM is already on the host.
    /// * [`HostMemoryError::InsufficientLocal`] / [`HostMemoryError::InsufficientPool`]
    ///   when either side cannot be satisfied (nothing is allocated then).
    pub fn pin_vm(&mut self, vm: VmId, local: Bytes, pool: Bytes) -> Result<(), HostMemoryError> {
        if self.vm_allocations.contains_key(&vm) {
            return Err(HostMemoryError::VmAlreadyPlaced(vm));
        }
        if local > self.local_free() {
            return Err(HostMemoryError::InsufficientLocal {
                requested: local,
                available: self.local_free(),
            });
        }
        if pool > self.pool_free() {
            return Err(HostMemoryError::InsufficientPool {
                requested: pool,
                available: self.pool_free(),
            });
        }
        self.vm_allocations.insert(vm, VmAllocation { local, pool });
        self.local_pinned += local;
        self.pool_pinned += pool;
        Ok(())
    }

    /// Unpins a departing VM's memory and returns its allocation.
    ///
    /// # Errors
    ///
    /// Returns [`HostMemoryError::UnknownVm`] if the VM is not on this host.
    pub fn unpin_vm(&mut self, vm: VmId) -> Result<VmAllocation, HostMemoryError> {
        let allocation = self.vm_allocations.remove(&vm).ok_or(HostMemoryError::UnknownVm(vm))?;
        self.local_pinned -= allocation.local;
        self.pool_pinned -= allocation.pool;
        Ok(allocation)
    }

    /// Converts a VM's pool allocation into a local allocation (the QoS
    /// mitigation path). Fails without changing anything if local DRAM cannot
    /// absorb the VM's pool memory.
    ///
    /// # Errors
    ///
    /// * [`HostMemoryError::UnknownVm`] if the VM is not on this host.
    /// * [`HostMemoryError::InsufficientLocal`] if local DRAM is too tight.
    pub fn convert_pool_to_local(&mut self, vm: VmId) -> Result<Bytes, HostMemoryError> {
        let alloc = *self.vm_allocations.get(&vm).ok_or(HostMemoryError::UnknownVm(vm))?;
        if alloc.pool.is_zero() {
            return Ok(Bytes::ZERO);
        }
        if alloc.pool > self.local_free() {
            return Err(HostMemoryError::InsufficientLocal {
                requested: alloc.pool,
                available: self.local_free(),
            });
        }
        let moved = alloc.pool;
        self.vm_allocations
            .insert(vm, VmAllocation { local: alloc.local + moved, pool: Bytes::ZERO });
        self.local_pinned += moved;
        self.pool_pinned -= moved;
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn host() -> HostMemory {
        HostMemory::new(Bytes::from_gib(128), Bytes::from_gib(8))
    }

    #[test]
    fn new_host_accounting() {
        let h = host();
        assert_eq!(h.local_total(), Bytes::from_gib(128));
        assert_eq!(h.local_rentable(), Bytes::from_gib(120));
        assert_eq!(h.local_free(), Bytes::from_gib(120));
        assert_eq!(h.pool_online(), Bytes::ZERO);
        assert_eq!(h.vm_count(), 0);
    }

    #[test]
    fn pin_and_unpin_round_trip() {
        let mut h = host();
        h.online_pool(Bytes::from_gib(32));
        h.pin_vm(VmId(1), Bytes::from_gib(48), Bytes::from_gib(16)).unwrap();
        assert_eq!(h.local_free(), Bytes::from_gib(72));
        assert_eq!(h.pool_free(), Bytes::from_gib(16));
        assert_eq!(
            h.allocation_of(VmId(1)),
            Some(VmAllocation { local: Bytes::from_gib(48), pool: Bytes::from_gib(16) })
        );
        let freed = h.unpin_vm(VmId(1)).unwrap();
        assert_eq!(freed.pool, Bytes::from_gib(16));
        assert_eq!(h.local_free(), Bytes::from_gib(120));
        assert_eq!(h.pool_free(), Bytes::from_gib(32));
    }

    #[test]
    fn pin_fails_atomically() {
        let mut h = host();
        h.online_pool(Bytes::from_gib(8));
        // Local fits but pool does not: nothing should be allocated.
        let err = h.pin_vm(VmId(1), Bytes::from_gib(16), Bytes::from_gib(16)).unwrap_err();
        assert!(matches!(err, HostMemoryError::InsufficientPool { .. }));
        assert_eq!(h.local_free(), Bytes::from_gib(120));
        assert_eq!(h.vm_count(), 0);
        // Pool fits but local does not.
        let err = h.pin_vm(VmId(1), Bytes::from_gib(500), Bytes::from_gib(4)).unwrap_err();
        assert!(matches!(err, HostMemoryError::InsufficientLocal { .. }));
        assert_eq!(h.pool_free(), Bytes::from_gib(8));
    }

    #[test]
    fn duplicate_and_unknown_vms_are_rejected() {
        let mut h = host();
        h.pin_vm(VmId(1), Bytes::from_gib(8), Bytes::ZERO).unwrap();
        assert!(matches!(
            h.pin_vm(VmId(1), Bytes::from_gib(8), Bytes::ZERO),
            Err(HostMemoryError::VmAlreadyPlaced(_))
        ));
        assert!(matches!(h.unpin_vm(VmId(2)), Err(HostMemoryError::UnknownVm(_))));
        assert!(matches!(h.convert_pool_to_local(VmId(2)), Err(HostMemoryError::UnknownVm(_))));
    }

    #[test]
    fn host_agents_cannot_exhaust_vm_memory() {
        let mut h = host();
        // Host agents are limited to the 8 GiB private partition.
        h.allocate_host_agent(Bytes::from_gib(6)).unwrap();
        let err = h.allocate_host_agent(Bytes::from_gib(4)).unwrap_err();
        assert!(matches!(err, HostMemoryError::PrivatePartitionExhausted { .. }));
        // The rentable capacity is unaffected by agent allocations.
        assert_eq!(h.local_free(), Bytes::from_gib(120));
    }

    #[test]
    fn offline_requires_free_pool_memory() {
        let mut h = host();
        h.online_pool(Bytes::from_gib(16));
        h.pin_vm(VmId(1), Bytes::ZERO, Bytes::from_gib(12)).unwrap();
        assert!(matches!(
            h.offline_pool(Bytes::from_gib(8)),
            Err(HostMemoryError::PoolMemoryInUse { .. })
        ));
        h.offline_pool(Bytes::from_gib(4)).unwrap();
        assert_eq!(h.pool_online(), Bytes::from_gib(12));
    }

    #[test]
    fn convert_pool_to_local_moves_the_allocation() {
        let mut h = host();
        h.online_pool(Bytes::from_gib(16));
        h.pin_vm(VmId(1), Bytes::from_gib(16), Bytes::from_gib(8)).unwrap();
        let moved = h.convert_pool_to_local(VmId(1)).unwrap();
        assert_eq!(moved, Bytes::from_gib(8));
        let alloc = h.allocation_of(VmId(1)).unwrap();
        assert_eq!(alloc.local, Bytes::from_gib(24));
        assert_eq!(alloc.pool, Bytes::ZERO);
        // The pool capacity is now free to be offlined and returned.
        assert_eq!(h.pool_free(), Bytes::from_gib(16));
        // A second conversion is a no-op.
        assert_eq!(h.convert_pool_to_local(VmId(1)).unwrap(), Bytes::ZERO);
    }

    #[test]
    fn convert_fails_when_local_is_tight() {
        let mut h = HostMemory::new(Bytes::from_gib(32), Bytes::ZERO);
        h.online_pool(Bytes::from_gib(16));
        h.pin_vm(VmId(1), Bytes::from_gib(28), Bytes::from_gib(16)).unwrap();
        assert!(matches!(
            h.convert_pool_to_local(VmId(1)),
            Err(HostMemoryError::InsufficientLocal { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "private partition cannot exceed")]
    fn private_partition_bounded_by_local() {
        let _ = HostMemory::new(Bytes::from_gib(8), Bytes::from_gib(16));
    }

    proptest! {
        /// Local allocations never exceed the rentable capacity and pool
        /// allocations never exceed the onlined capacity.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec((0u64..8, 0u64..64, 0u64..32, proptest::bool::ANY), 0..40)) {
            let mut h = HostMemory::new(Bytes::from_gib(256), Bytes::from_gib(8));
            h.online_pool(Bytes::from_gib(64));
            for (vm, local, pool, unpin) in ops {
                let vm = VmId(vm);
                if unpin {
                    let _ = h.unpin_vm(vm);
                } else {
                    let _ = h.pin_vm(vm, Bytes::from_gib(local), Bytes::from_gib(pool));
                }
                prop_assert!(h.local_allocated() <= h.local_rentable());
                prop_assert!(h.pool_allocated() <= h.pool_online());
                prop_assert_eq!(h.local_free() + h.local_allocated(), h.local_rentable());
                prop_assert_eq!(h.pool_free() + h.pool_allocated(), h.pool_online());
            }
        }
    }
}
