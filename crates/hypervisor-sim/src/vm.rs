//! Virtual machines as the hypervisor sees them.

use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use workload_model::WorkloadProfile;

/// Identifier of a VM on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u64);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// The resources requested for a VM plus Pond's local/pool split decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Number of virtual cores.
    pub cores: u32,
    /// Total rented memory.
    pub memory: Bytes,
    /// Portion of `memory` backed by the CXL pool (exposed as zNUMA).
    /// Always GB-aligned by the control plane; must not exceed `memory`.
    pub pool_memory: Bytes,
}

impl VmConfig {
    /// A VM with all of its memory on NUMA-local DRAM.
    pub fn all_local(cores: u32, memory: Bytes) -> Self {
        VmConfig { cores, memory, pool_memory: Bytes::ZERO }
    }

    /// Memory served from NUMA-local DRAM.
    pub fn local_memory(&self) -> Bytes {
        self.memory.saturating_sub(self.pool_memory)
    }

    /// Fraction of the VM's memory that lives on the pool.
    pub fn pool_fraction(&self) -> f64 {
        if self.memory.is_zero() {
            0.0
        } else {
            self.pool_memory.as_u64() as f64 / self.memory.as_u64() as f64
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("a VM needs at least one core".to_string());
        }
        if self.memory.is_zero() {
            return Err("a VM needs a non-zero memory size".to_string());
        }
        if self.pool_memory > self.memory {
            return Err(format!(
                "pool memory ({}) exceeds the VM's memory ({})",
                self.pool_memory, self.memory
            ));
        }
        Ok(())
    }
}

/// A running VM: its configuration, the workload inside it, and whether its
/// memory mapping has been reconfigured by the QoS mitigation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualMachine {
    id: VmId,
    config: VmConfig,
    workload: WorkloadProfile,
    reconfigured: bool,
}

impl VirtualMachine {
    /// Launches a VM with the given configuration and workload.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`VmConfig::validate`]).
    pub fn launch(id: u64, config: VmConfig, workload: WorkloadProfile) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid VM configuration: {reason}");
        }
        VirtualMachine { id: VmId(id), config, workload, reconfigured: false }
    }

    /// The VM's identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The VM's resource configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// The workload running inside the VM.
    pub fn workload(&self) -> &WorkloadProfile {
        &self.workload
    }

    /// Memory the workload actually touches over the VM's lifetime, bounded
    /// by the rented size.
    pub fn touched_memory(&self) -> Bytes {
        Bytes::new(self.workload.footprint.as_u64().min(self.config.memory.as_u64()))
    }

    /// Memory the VM never touches (rented minus footprint).
    pub fn untouched_memory(&self) -> Bytes {
        self.config.memory.saturating_sub(self.workload.footprint)
    }

    /// Fraction of rented memory that is never touched.
    pub fn untouched_fraction(&self) -> f64 {
        self.untouched_memory().as_u64() as f64 / self.config.memory.as_u64() as f64
    }

    /// Whether the QoS mitigation has moved this VM to all-local memory.
    pub fn is_reconfigured(&self) -> bool {
        self.reconfigured
    }

    /// Applies the one-time mitigation: all memory becomes local.
    pub(crate) fn mark_reconfigured(&mut self) {
        self.reconfigured = true;
        self.config.pool_memory = Bytes::ZERO;
    }

    /// Current pool memory (zero after reconfiguration).
    pub fn pool_memory(&self) -> Bytes {
        self.config.pool_memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_model::WorkloadSuite;

    fn workload() -> WorkloadProfile {
        WorkloadSuite::standard().get("tpch/q1").unwrap().clone()
    }

    #[test]
    fn config_accessors() {
        let c = VmConfig { cores: 4, memory: Bytes::from_gib(32), pool_memory: Bytes::from_gib(8) };
        assert_eq!(c.local_memory(), Bytes::from_gib(24));
        assert!((c.pool_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(c.validate(), Ok(()));
        let all_local = VmConfig::all_local(2, Bytes::from_gib(8));
        assert_eq!(all_local.pool_fraction(), 0.0);
        assert_eq!(all_local.local_memory(), Bytes::from_gib(8));
    }

    #[test]
    fn config_validation_catches_errors() {
        assert!(VmConfig { cores: 0, memory: Bytes::from_gib(1), pool_memory: Bytes::ZERO }
            .validate()
            .is_err());
        assert!(VmConfig { cores: 1, memory: Bytes::ZERO, pool_memory: Bytes::ZERO }
            .validate()
            .is_err());
        assert!(VmConfig { cores: 1, memory: Bytes::from_gib(1), pool_memory: Bytes::from_gib(2) }
            .validate()
            .is_err());
    }

    #[test]
    fn untouched_memory_follows_the_footprint() {
        let w = workload();
        let footprint = w.footprint;
        let vm =
            VirtualMachine::launch(1, VmConfig::all_local(4, footprint + Bytes::from_gib(10)), w);
        assert_eq!(vm.untouched_memory(), Bytes::from_gib(10));
        assert_eq!(vm.touched_memory(), footprint);
        assert!(vm.untouched_fraction() > 0.0 && vm.untouched_fraction() < 1.0);
    }

    #[test]
    fn footprint_larger_than_memory_means_nothing_untouched() {
        let w = workload();
        let small = w.footprint.saturating_sub(Bytes::from_gib(1));
        let vm = VirtualMachine::launch(2, VmConfig::all_local(4, small), w);
        assert_eq!(vm.untouched_memory(), Bytes::ZERO);
        assert_eq!(vm.touched_memory(), small);
    }

    #[test]
    fn reconfiguration_clears_pool_memory() {
        let w = workload();
        let mut vm = VirtualMachine::launch(
            3,
            VmConfig { cores: 4, memory: Bytes::from_gib(32), pool_memory: Bytes::from_gib(8) },
            w,
        );
        assert!(!vm.is_reconfigured());
        assert_eq!(vm.pool_memory(), Bytes::from_gib(8));
        vm.mark_reconfigured();
        assert!(vm.is_reconfigured());
        assert_eq!(vm.pool_memory(), Bytes::ZERO);
        assert_eq!(vm.config().local_memory(), Bytes::from_gib(32));
    }

    #[test]
    #[should_panic(expected = "invalid VM configuration")]
    fn launch_rejects_invalid_config() {
        let _ = VirtualMachine::launch(9, VmConfig::all_local(0, Bytes::from_gib(1)), workload());
    }

    #[test]
    fn vm_id_displays() {
        assert_eq!(VmId(7).to_string(), "vm7");
    }
}
