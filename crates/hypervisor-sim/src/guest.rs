//! Guest-OS memory allocation over a zNUMA topology (§4.2, §6.2, §6.3).
//!
//! The guest OS allocates from the local vNUMA node first and only falls back
//! to the zNUMA node once local memory is exhausted, plus a small amount of
//! per-node memory-manager metadata that is always allocated on every node
//! (the paper's explanation for the 0.06–0.38% of accesses that still reach a
//! correctly sized zNUMA node).

use crate::vm::VirtualMachine;
use cxl_hw::latency::LatencyScenario;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use workload_model::spill::SpillModel;

/// The outcome of the guest's NUMA-preferential allocation for one VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuestAllocation {
    footprint: Bytes,
    local_allocated: Bytes,
    znuma_allocated: Bytes,
    znuma_size: Bytes,
    metadata_per_node: Bytes,
}

impl GuestAllocation {
    /// Guest-OS metadata (page structs, per-node caches) explicitly allocated
    /// on every node regardless of the fill order. 64 MiB is a realistic
    /// order of magnitude for a tens-of-GB node.
    pub const DEFAULT_METADATA_PER_NODE: Bytes = Bytes::from_mib(64);

    /// Computes the allocation for a VM: fill the local node, spill the rest
    /// into zNUMA.
    pub fn for_vm(vm: &VirtualMachine) -> Self {
        Self::with_metadata(vm, Self::DEFAULT_METADATA_PER_NODE)
    }

    /// Same as [`GuestAllocation::for_vm`] with an explicit per-node metadata size.
    pub fn with_metadata(vm: &VirtualMachine, metadata_per_node: Bytes) -> Self {
        let footprint = vm.touched_memory();
        let local_size = vm.config().local_memory();
        let znuma_size = vm.pool_memory();

        // The guest's own metadata occupies a slice of every node.
        let metadata_on_znuma = if znuma_size.is_zero() {
            Bytes::ZERO
        } else {
            Bytes::new(metadata_per_node.as_u64().min(znuma_size.as_u64()))
        };

        // The guest fills the local node before touching zNUMA; its small
        // per-node metadata allocation is accounted only on the zNUMA side
        // (that is the part that generates the residual zNUMA traffic).
        let local_allocated = Bytes::new(footprint.as_u64().min(local_size.as_u64()));
        let spilled = footprint.saturating_sub(local_size);
        let znuma_allocated =
            Bytes::new(spilled.as_u64().min(znuma_size.saturating_sub(metadata_on_znuma).as_u64()))
                + metadata_on_znuma;

        GuestAllocation {
            footprint,
            local_allocated,
            znuma_allocated,
            znuma_size,
            metadata_per_node,
        }
    }

    /// The workload footprint the allocation serves.
    pub fn footprint(&self) -> Bytes {
        self.footprint
    }

    /// Bytes allocated on the local vNUMA node.
    pub fn local_allocated(&self) -> Bytes {
        self.local_allocated
    }

    /// Bytes allocated on the zNUMA node (including guest metadata).
    pub fn znuma_allocated(&self) -> Bytes {
        self.znuma_allocated
    }

    /// Size of the zNUMA node.
    pub fn znuma_size(&self) -> Bytes {
        self.znuma_size
    }

    /// Fraction of the footprint that spilled onto the zNUMA node
    /// (excluding guest metadata, which is not part of the footprint).
    pub fn spill_fraction(&self) -> f64 {
        if self.footprint.is_zero() {
            return 0.0;
        }
        let spilled = self.znuma_allocated.saturating_sub(Bytes::new(
            self.metadata_per_node.as_u64().min(self.znuma_size.as_u64()),
        ));
        (spilled.as_u64() as f64 / self.footprint.as_u64() as f64).min(1.0)
    }

    /// Whether the untouched-memory prediction was correct (nothing but
    /// metadata lives on the zNUMA node).
    pub fn prediction_was_correct(&self) -> bool {
        self.spill_fraction() == 0.0
    }
}

/// Performance of a VM given its guest allocation: the slowdown relative to
/// an all-local VM and the share of traffic reaching the zNUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuestPerformance {
    /// Fractional slowdown relative to all-local memory.
    pub slowdown: f64,
    /// Fraction of memory accesses served by the zNUMA node.
    pub znuma_traffic_fraction: f64,
}

impl GuestPerformance {
    /// Evaluates a VM's performance under a latency scenario.
    pub fn evaluate(
        vm: &VirtualMachine,
        allocation: &GuestAllocation,
        scenario: LatencyScenario,
        model: &SpillModel,
    ) -> Self {
        let spill = allocation.spill_fraction();
        let metadata_floor = if allocation.znuma_size().is_zero() {
            0.0
        } else {
            model.znuma_traffic_fraction(vm.workload())
        };
        let access_fraction =
            (model.pool_access_fraction(vm.workload(), spill) + metadata_floor).min(1.0);
        let slowdown =
            model.slowdown.slowdown(vm.workload(), scenario.multiplier(), access_fraction);
        GuestPerformance { slowdown, znuma_traffic_fraction: access_fraction }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use workload_model::WorkloadSuite;

    fn vm_with(footprint_slack_gib: i64, pool_gib: u64) -> VirtualMachine {
        let suite = WorkloadSuite::standard();
        let workload = suite.get("spark/kmeans").unwrap().clone();
        let memory = if footprint_slack_gib >= 0 {
            workload.footprint + Bytes::from_gib(footprint_slack_gib as u64)
        } else {
            workload.footprint.saturating_sub(Bytes::from_gib((-footprint_slack_gib) as u64))
        };
        VirtualMachine::launch(
            1,
            VmConfig { cores: 8, memory, pool_memory: Bytes::from_gib(pool_gib) },
            workload,
        )
    }

    #[test]
    fn correct_prediction_keeps_the_working_set_local() {
        // zNUMA sized to the untouched memory: footprint fits in local.
        let vm = vm_with(10, 10);
        let alloc = GuestAllocation::for_vm(&vm);
        assert!(alloc.prediction_was_correct(), "spill {}", alloc.spill_fraction());
        assert!(alloc.znuma_allocated() <= GuestAllocation::DEFAULT_METADATA_PER_NODE);
        assert_eq!(alloc.footprint(), vm.touched_memory());
    }

    #[test]
    fn overprediction_spills_into_znuma() {
        // zNUMA is larger than the untouched memory, so part of the working
        // set must land there.
        let vm = vm_with(4, 16);
        let alloc = GuestAllocation::for_vm(&vm);
        assert!(!alloc.prediction_was_correct());
        assert!(alloc.spill_fraction() > 0.0);
        assert!(alloc.znuma_allocated() > GuestAllocation::DEFAULT_METADATA_PER_NODE);
        // Local node is filled before zNUMA.
        assert!(alloc.local_allocated() >= vm.config().local_memory() - Bytes::from_gib(1));
    }

    #[test]
    fn all_pool_vm_spills_everything() {
        let suite = WorkloadSuite::standard();
        let workload = suite.get("gapbs/pr-twitter").unwrap().clone();
        let memory = workload.footprint;
        let vm =
            VirtualMachine::launch(2, VmConfig { cores: 8, memory, pool_memory: memory }, workload);
        let alloc = GuestAllocation::for_vm(&vm);
        assert!(alloc.spill_fraction() > 0.9, "spill {}", alloc.spill_fraction());
    }

    #[test]
    fn no_pool_memory_means_no_znuma_traffic() {
        let vm = vm_with(10, 0);
        let alloc = GuestAllocation::for_vm(&vm);
        assert_eq!(alloc.znuma_allocated(), Bytes::ZERO);
        assert_eq!(alloc.znuma_size(), Bytes::ZERO);
        let perf = GuestPerformance::evaluate(
            &vm,
            &alloc,
            LatencyScenario::Increase182,
            &SpillModel::default(),
        );
        assert_eq!(perf.znuma_traffic_fraction, 0.0);
        assert_eq!(perf.slowdown, 0.0);
    }

    #[test]
    fn correct_prediction_has_negligible_slowdown_and_traffic() {
        // Finding 1/2: with a correct prediction, zNUMA traffic is a fraction
        // of a percent and the slowdown is negligible.
        let vm = vm_with(16, 16);
        let alloc = GuestAllocation::for_vm(&vm);
        let perf = GuestPerformance::evaluate(
            &vm,
            &alloc,
            LatencyScenario::Increase182,
            &SpillModel::default(),
        );
        assert!(perf.znuma_traffic_fraction < 0.005, "traffic {}", perf.znuma_traffic_fraction);
        assert!(perf.slowdown < 0.01, "slowdown {}", perf.slowdown);
    }

    #[test]
    fn bigger_spills_hurt_more() {
        // Finding 3: slowdown grows as more of the working set spills.
        let small_spill = vm_with(8, 12);
        let large_spill = vm_with(0, 24);
        let model = SpillModel::default();
        let perf = |vm: &VirtualMachine| {
            let alloc = GuestAllocation::for_vm(vm);
            GuestPerformance::evaluate(vm, &alloc, LatencyScenario::Increase182, &model).slowdown
        };
        assert!(perf(&large_spill) > perf(&small_spill));
    }

    #[test]
    fn metadata_never_exceeds_the_znuma_node() {
        let suite = WorkloadSuite::standard();
        let workload = suite.get("parsec/vips").unwrap().clone();
        let vm = VirtualMachine::launch(
            3,
            VmConfig {
                cores: 2,
                memory: workload.footprint + Bytes::from_mib(32),
                pool_memory: Bytes::from_mib(32),
            },
            workload,
        );
        let alloc = GuestAllocation::for_vm(&vm);
        assert!(alloc.znuma_allocated() <= alloc.znuma_size());
    }
}
