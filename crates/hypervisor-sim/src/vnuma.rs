//! Virtual NUMA topologies and the zero-core zNUMA node (§4.2, Figure 10).
//!
//! Pond exposes a VM's pool memory as a vNUMA node that has memory but no
//! cores, mirroring Linux's CPU-less NUMA support. The hypervisor builds the
//! topology by adding a `node_memblk` entry without a `node_cpuid` entry in
//! the (virtual) SRAT, and advertises the real extra latency in the SLIT
//! distance matrix so a NUMA-aware guest can still make sensible decisions.

use cxl_hw::latency::{Latency, LatencyModel, LatencyScenario};
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};

use crate::vm::VmConfig;

/// One virtual NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VNumaNode {
    /// Node index as seen by the guest.
    pub id: u32,
    /// Virtual CPUs assigned to the node.
    pub cpus: u32,
    /// Memory assigned to the node.
    pub memory: Bytes,
}

impl VNumaNode {
    /// True when the node has memory but no CPUs — a zNUMA node.
    pub fn is_znuma(&self) -> bool {
        self.cpus == 0 && !self.memory.is_zero()
    }
}

/// The full virtual NUMA topology of a VM, including the SLIT-style distance
/// matrix (relative access cost, 10 = local, following ACPI convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VNumaTopology {
    nodes: Vec<VNumaNode>,
    /// `distances[i][j]` is the relative cost for node `i`'s CPUs to reach
    /// node `j`'s memory (ACPI SLIT units, local = 10).
    distances: Vec<Vec<u32>>,
}

impl VNumaTopology {
    /// Builds the topology for a VM: one local node with all vCPUs and the
    /// local memory, plus (if the VM has pool memory) a zNUMA node holding
    /// the pool memory at the latency implied by `scenario`.
    pub fn for_vm(config: &VmConfig, scenario: LatencyScenario) -> Self {
        let mut nodes =
            vec![VNumaNode { id: 0, cpus: config.cores, memory: config.local_memory() }];
        let mut distances = vec![vec![10]];
        if !config.pool_memory.is_zero() {
            nodes.push(VNumaNode { id: 1, cpus: 0, memory: config.pool_memory });
            // SLIT entries scale with the real latency ratio: local = 10, so a
            // 182% latency shows up as 18, 222% as 22 (matching Figure 10's
            // numa_slit output of e.g. "10 28" for larger ratios).
            let remote = (10.0 * scenario.multiplier()).round() as u32;
            distances = vec![vec![10, remote], vec![remote, 10]];
        }
        VNumaTopology { nodes, distances }
    }

    /// Builds a topology from an explicit latency model and pool topology,
    /// instead of one of the two canned emulation scenarios.
    pub fn with_latencies(config: &VmConfig, local: Latency, pool: Latency) -> Self {
        let mut nodes =
            vec![VNumaNode { id: 0, cpus: config.cores, memory: config.local_memory() }];
        let mut distances = vec![vec![10]];
        if !config.pool_memory.is_zero() {
            nodes.push(VNumaNode { id: 1, cpus: 0, memory: config.pool_memory });
            let remote = (10.0 * pool.as_nanos() / local.as_nanos()).round().max(10.0) as u32;
            distances = vec![vec![10, remote], vec![remote, 10]];
        }
        VNumaTopology { nodes, distances }
    }

    /// The nodes of the topology.
    pub fn nodes(&self) -> &[VNumaNode] {
        &self.nodes
    }

    /// The zNUMA node, if the VM has one.
    pub fn znuma_node(&self) -> Option<&VNumaNode> {
        self.nodes.iter().find(|n| n.is_znuma())
    }

    /// The SLIT distance between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, from: u32, to: u32) -> u32 {
        self.distances[from as usize][to as usize]
    }

    /// Total memory across all nodes.
    pub fn total_memory(&self) -> Bytes {
        self.nodes.iter().map(|n| n.memory).sum()
    }

    /// Total vCPUs across all nodes.
    pub fn total_cpus(&self) -> u32 {
        self.nodes.iter().map(|n| n.cpus).sum()
    }

    /// Renders the topology the way `numactl --hardware` shows it inside the
    /// guest (Figure 10), for logging and examples.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "available: {} nodes (0-{})\n",
            self.nodes.len(),
            self.nodes.len() - 1
        ));
        for n in &self.nodes {
            out.push_str(&format!(
                "node {} cpus: {}\nnode {} size: {} MB\n",
                n.id,
                if n.cpus == 0 { "(none)".to_string() } else { format!("0-{}", n.cpus - 1) },
                n.id,
                n.memory.as_mib()
            ));
        }
        out.push_str("node distances:\n");
        for (i, row) in self.distances.iter().enumerate() {
            out.push_str(&format!("node {i}: "));
            out.push_str(&row.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(" "));
            out.push('\n');
        }
        out
    }

    /// Convenience: the SLIT entry Pond would program for a real Pond pool
    /// topology, derived from the hardware latency model.
    pub fn slit_for_pool(model: &LatencyModel, topology: &cxl_hw::topology::PoolTopology) -> u32 {
        let ratio =
            model.pool_access_latency(topology).as_nanos() / model.local_dram_latency().as_nanos();
        (10.0 * ratio).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_hw::topology::PoolTopology;

    fn config(pool_gib: u64) -> VmConfig {
        VmConfig { cores: 8, memory: Bytes::from_gib(64), pool_memory: Bytes::from_gib(pool_gib) }
    }

    #[test]
    fn vm_without_pool_memory_has_a_single_node() {
        let topo = VNumaTopology::for_vm(&config(0), LatencyScenario::Increase182);
        assert_eq!(topo.nodes().len(), 1);
        assert!(topo.znuma_node().is_none());
        assert_eq!(topo.distance(0, 0), 10);
        assert_eq!(topo.total_cpus(), 8);
        assert_eq!(topo.total_memory(), Bytes::from_gib(64));
    }

    #[test]
    fn pool_memory_appears_as_a_zero_core_node() {
        let topo = VNumaTopology::for_vm(&config(16), LatencyScenario::Increase182);
        assert_eq!(topo.nodes().len(), 2);
        let znuma = topo.znuma_node().expect("zNUMA node must exist");
        assert_eq!(znuma.cpus, 0);
        assert_eq!(znuma.memory, Bytes::from_gib(16));
        assert!(znuma.is_znuma());
        // Memory and CPUs are conserved.
        assert_eq!(topo.total_memory(), Bytes::from_gib(64));
        assert_eq!(topo.total_cpus(), 8);
    }

    #[test]
    fn slit_distances_reflect_the_latency_ratio() {
        let t182 = VNumaTopology::for_vm(&config(16), LatencyScenario::Increase182);
        let t222 = VNumaTopology::for_vm(&config(16), LatencyScenario::Increase222);
        assert_eq!(t182.distance(0, 1), 18);
        assert_eq!(t222.distance(0, 1), 22);
        assert_eq!(t182.distance(0, 0), 10);
        assert_eq!(t182.distance(1, 0), t182.distance(0, 1));
    }

    #[test]
    fn with_latencies_builds_distances_from_nanoseconds() {
        let topo = VNumaTopology::with_latencies(
            &config(8),
            Latency::from_nanos(85.0),
            Latency::from_nanos(180.0),
        );
        // 180/85 ≈ 2.12 → SLIT 21.
        assert_eq!(topo.distance(0, 1), 21);
    }

    #[test]
    fn slit_for_pool_uses_the_hardware_model() {
        let model = LatencyModel::default();
        let pond16 = PoolTopology::pond(16).unwrap();
        let slit = VNumaTopology::slit_for_pool(&model, &pond16);
        assert_eq!(slit, 21, "180ns over 85ns rounds to 21");
    }

    #[test]
    fn describe_matches_the_numactl_shape() {
        let topo = VNumaTopology::for_vm(&config(16), LatencyScenario::Increase182);
        let text = topo.describe();
        assert!(text.contains("available: 2 nodes"));
        assert!(text.contains("node 1 cpus: (none)"));
        assert!(text.contains("node distances:"));
    }

    #[test]
    fn non_znuma_node_is_not_reported_as_znuma() {
        let node = VNumaNode { id: 0, cpus: 4, memory: Bytes::from_gib(1) };
        assert!(!node.is_znuma());
        let empty = VNumaNode { id: 1, cpus: 0, memory: Bytes::ZERO };
        assert!(!empty.is_znuma());
    }
}
