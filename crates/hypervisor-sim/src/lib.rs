//! # hypervisor-sim
//!
//! The system-software layer of Pond (ASPLOS '23, §4.2) as a discrete model:
//!
//! * [`vm`] — virtual machines with a local/pool memory split and the
//!   workload running inside them.
//! * [`vnuma`] — the virtual NUMA topology a VM sees, including the
//!   zero-core **zNUMA** node that backs pool memory (Figure 10).
//! * [`guest`] — the guest OS memory manager: NUMA-preferential allocation
//!   that fills the local vNUMA node before touching zNUMA, and the resulting
//!   traffic split (Figures 15 and 16).
//! * [`host`] — host-side physical memory accounting: the hypervisor-private
//!   partition that contains fragmentation, VM memory preallocation, and
//!   pool-slice onlining.
//! * [`telemetry`] — hypervisor telemetry for opaque VMs: access-bit
//!   scanning, the guest-committed-memory counter, and per-VM core-PMU
//!   sampling with their measured overheads (§5).
//! * [`reconfig`] — the QoS mitigation path: a one-time reconfiguration that
//!   copies a VM's pool memory to local DRAM behind a temporarily disabled
//!   virtualization accelerator (50 ms per GiB).
//!
//! # Example
//!
//! ```
//! use hypervisor_sim::vm::{VmConfig, VirtualMachine};
//! use hypervisor_sim::guest::GuestAllocation;
//! use cxl_hw::units::Bytes;
//! use workload_model::WorkloadSuite;
//!
//! let suite = WorkloadSuite::standard();
//! let profile = suite.get("redis/ycsb-a").unwrap().clone();
//! let config = VmConfig {
//!     cores: 8,
//!     memory: Bytes::from_gib(64),
//!     pool_memory: Bytes::from_gib(16),
//! };
//! let vm = VirtualMachine::launch(1, config, profile);
//! let alloc = GuestAllocation::for_vm(&vm);
//! // The guest fills the local node first.
//! assert!(alloc.local_allocated() >= alloc.znuma_allocated());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod guest;
pub mod host;
pub mod reconfig;
pub mod telemetry;
pub mod vm;
pub mod vnuma;

pub use guest::GuestAllocation;
pub use host::HostMemory;
pub use reconfig::ReconfigurationEngine;
pub use telemetry::{AccessBitScanner, HypervisorTelemetry};
pub use vm::{VirtualMachine, VmConfig, VmId};
pub use vnuma::{VNumaNode, VNumaTopology};
