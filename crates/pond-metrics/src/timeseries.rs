//! Time-series recording: per-group availability / savings / occupancy
//! samples at snapshot ticks, plus an env-gated JSONL structured event log.
//!
//! The in-memory series is purely deterministic — it derives from replay
//! state at simulated snapshot times, so two observed replays of the same
//! `(trace, config, seed)` record identical point streams. The JSONL log is
//! an I/O side channel for post-hoc forensics: writes are best-effort (a
//! full disk never perturbs the replay) and the log never feeds back into
//! the recorded series.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Duration;

use cluster_sim::event::Event;
use cxl_hw::pool::GroupState;

use crate::observer::{
    DecisionTrace, GroupSample, LifecycleOpKind, LifecycleTrace, QosPassTrace, ReplayObserver,
};

/// Environment variable naming the JSONL event-log path. When set,
/// [`TimeSeriesRecorder::from_env`] opens (truncates) that file and streams
/// one JSON object per decision, QoS pass, lifecycle operation, and
/// snapshot sample.
pub const EVENT_LOG_ENV: &str = "POND_EVENT_LOG";

/// One group's slice of a snapshot-tick sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSeries {
    /// The pool group.
    pub group: usize,
    /// Whether the group still accepts placements at this tick.
    pub online: bool,
    /// Cumulative admission rate: scheduled / (scheduled + rejected).
    pub availability: f64,
    /// Cumulative DRAM savings fraction versus an all-local fleet.
    pub dram_savings: f64,
    /// Fraction of live pool capacity in use right now.
    pub occupancy: f64,
    /// Pool capacity free for new placements, in bytes.
    pub pool_free: u64,
    /// VMs running on the group right now.
    pub running_vms: u64,
}

/// One snapshot-tick point: fleet-level aggregates plus the per-group
/// breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesPoint {
    /// Simulated snapshot time in seconds since trace start.
    pub time: u64,
    /// Fleet-wide cumulative admission rate across all groups.
    pub fleet_availability: f64,
    /// Fleet-wide cumulative DRAM savings fraction.
    pub fleet_savings: f64,
    /// VMs running fleet-wide right now.
    pub live_vms: u64,
    /// Per-group samples, in group order.
    pub groups: Vec<GroupSeries>,
}

/// A [`ReplayObserver`] that records one [`TimeSeriesPoint`] per snapshot
/// tick and optionally streams a JSONL structured event log.
#[derive(Debug)]
pub struct TimeSeriesRecorder {
    points: Vec<TimeSeriesPoint>,
    log: Option<BufWriter<File>>,
}

impl Default for TimeSeriesRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSeriesRecorder {
    /// A recorder with no event log.
    pub fn new() -> Self {
        TimeSeriesRecorder { points: Vec::new(), log: None }
    }

    /// A recorder streaming the JSONL event log to `path` (truncated).
    pub fn with_log<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(TimeSeriesRecorder { points: Vec::new(), log: Some(BufWriter::new(file)) })
    }

    /// A recorder honoring [`EVENT_LOG_ENV`]: with a log when the variable
    /// names a path, without one otherwise. Fails only when the named path
    /// cannot be created.
    pub fn from_env() -> io::Result<Self> {
        match std::env::var_os(EVENT_LOG_ENV) {
            Some(path) if !path.is_empty() => Self::with_log(path),
            _ => Ok(Self::new()),
        }
    }

    /// The recorded snapshot-tick points, in time order.
    pub fn points(&self) -> &[TimeSeriesPoint] {
        &self.points
    }

    /// Consumes the recorder and returns the points, flushing the log.
    pub fn into_points(mut self) -> Vec<TimeSeriesPoint> {
        if let Some(log) = self.log.as_mut() {
            let _ = log.flush();
        }
        std::mem::take(&mut self.points)
    }

    fn line(&mut self, line: &str) {
        if let Some(log) = self.log.as_mut() {
            let _ = writeln!(log, "{line}");
        }
    }
}

impl Drop for TimeSeriesRecorder {
    fn drop(&mut self) {
        if let Some(log) = self.log.as_mut() {
            let _ = log.flush();
        }
    }
}

fn secs(d: Duration) -> u64 {
    d.as_secs()
}

impl ReplayObserver for TimeSeriesRecorder {
    fn on_event(&mut self, event: &Event) {
        // Raw queue pops are too hot for the log (one per VM arrival and
        // departure); only lifecycle classes are worth a forensic line, and
        // those arrive with richer payloads via `on_lifecycle_op`. Keep this
        // hook free so the event log stays proportional to decisions.
        let _ = event;
    }

    fn on_decision(&mut self, decision: &DecisionTrace) {
        if self.log.is_none() {
            return;
        }
        let group = match decision.group {
            Some(g) => g.to_string(),
            None => "null".to_string(),
        };
        let line = format!(
            "{{\"kind\": \"decision\", \"time\": {}, \"home_group\": {}, \"group\": {}, \"rung\": \"{}\", \"reason\": \"{}\", \"memory_bytes\": {}, \"lifetime_secs\": {}}}",
            decision.time,
            decision.home_group,
            group,
            decision.rung.name(),
            decision.reason.name(),
            decision.memory.as_u64(),
            decision.lifetime,
        );
        self.line(&line);
    }

    fn on_qos_pass(&mut self, pass: &QosPassTrace) {
        if self.log.is_none() || pass.reconfigured == 0 {
            return;
        }
        let line = format!(
            "{{\"kind\": \"qos_pass\", \"time\": {}, \"group\": {}, \"reconfigured\": {}, \"copy_secs\": {}}}",
            pass.time,
            pass.group,
            pass.reconfigured,
            secs(pass.copy_time),
        );
        self.line(&line);
    }

    fn on_lifecycle_op(&mut self, op: &LifecycleTrace) {
        if self.log.is_none() {
            return;
        }
        let detail = match op.kind {
            LifecycleOpKind::EmcFailure { affected } => {
                format!("\"affected\": {affected}")
            }
            LifecycleOpKind::EmcRepair { restored } => {
                format!("\"restored_bytes\": {}", restored.as_u64())
            }
            LifecycleOpKind::DecommissionStarted { running } => {
                format!("\"running\": {running}")
            }
            LifecycleOpKind::DecommissionComplete => String::from("\"done\": true"),
            LifecycleOpKind::Expansion { capacity } => {
                format!("\"capacity_bytes\": {}", capacity.as_u64())
            }
            LifecycleOpKind::VmEvacuated { dest, copy }
            | LifecycleOpKind::VmDrained { dest, copy } => {
                let dest = match dest {
                    Some(d) => d.to_string(),
                    None => "null".to_string(),
                };
                format!("\"dest\": {dest}, \"copy_secs\": {}", secs(copy))
            }
            LifecycleOpKind::VmRebalanced { dest, copy } => {
                format!("\"dest\": {dest}, \"copy_secs\": {}", secs(copy))
            }
        };
        let line = format!(
            "{{\"kind\": \"lifecycle\", \"op\": \"{}\", \"time\": {}, \"group\": {}, {detail}}}",
            op.kind.name(),
            op.time,
            op.group,
        );
        self.line(&line);
    }

    fn on_snapshot(&mut self, time: u64, groups: &[GroupSample]) {
        let mut scheduled = 0u64;
        let mut rejected = 0u64;
        let mut live_vms = 0u64;
        let mut sum_total = 0u64;
        let mut sum_host_pool = 0u64;
        let mut pool_peaks = 0u64;
        let mut series = Vec::with_capacity(groups.len());
        for sample in groups {
            scheduled += sample.scheduled_vms;
            rejected += sample.rejected_vms;
            live_vms += sample.running_vms;
            sum_total += sample.sum_total_peaks.as_u64();
            sum_host_pool += sample.sum_host_pool_peaks.as_u64();
            pool_peaks += sample.pool_peak.as_u64();
            series.push(GroupSeries {
                group: sample.group,
                online: sample.state == GroupState::Online,
                availability: sample.availability(),
                dram_savings: sample.dram_savings_fraction(),
                occupancy: sample.pool_occupancy_fraction(),
                pool_free: sample.pool_free.as_u64(),
                running_vms: sample.running_vms,
            });
        }
        let offered = scheduled + rejected;
        let fleet_availability = if offered == 0 { 1.0 } else { scheduled as f64 / offered as f64 };
        let fleet_savings = if sum_total == 0 {
            0.0
        } else {
            let required = sum_total.saturating_sub(sum_host_pool).saturating_add(pool_peaks);
            1.0 - required as f64 / sum_total as f64
        };
        if self.log.is_some() {
            let mut per_group = String::new();
            for (i, s) in series.iter().enumerate() {
                if i > 0 {
                    per_group.push_str(", ");
                }
                per_group.push_str(&format!(
                    "{{\"group\": {}, \"online\": {}, \"availability\": {:.6}, \"occupancy\": {:.6}, \"running_vms\": {}}}",
                    s.group, s.online, s.availability, s.occupancy, s.running_vms,
                ));
            }
            let line = format!(
                "{{\"kind\": \"snapshot\", \"time\": {time}, \"fleet_availability\": {fleet_availability:.6}, \"fleet_savings\": {fleet_savings:.6}, \"live_vms\": {live_vms}, \"groups\": [{per_group}]}}",
            );
            self.line(&line);
        }
        self.points.push(TimeSeriesPoint {
            time,
            fleet_availability,
            fleet_savings,
            live_vms,
            groups: series,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_hw::units::Bytes;

    fn sample(group: usize, scheduled: u64, rejected: u64) -> GroupSample {
        GroupSample {
            group,
            state: GroupState::Online,
            pool_free: Bytes::from_gib(50),
            pool_offlining: Bytes::new(0),
            pool_pinned: Bytes::new(0),
            pool_live: Bytes::from_gib(100),
            pool_lent: Bytes::new(0),
            pool_borrowed: Bytes::new(0),
            running_vms: 5,
            scheduled_vms: scheduled,
            rejected_vms: rejected,
            vms_killed: 0,
            sum_total_peaks: Bytes::from_gib(400),
            sum_host_pool_peaks: Bytes::from_gib(100),
            pool_peak: Bytes::from_gib(40),
        }
    }

    #[test]
    fn snapshot_aggregates_fleet_from_group_sums() {
        let mut recorder = TimeSeriesRecorder::new();
        recorder.on_snapshot(3600, &[sample(0, 90, 10), sample(1, 60, 40)]);
        let points = recorder.points();
        assert_eq!(points.len(), 1);
        let point = &points[0];
        assert_eq!(point.time, 3600);
        assert_eq!(point.live_vms, 10);
        // fleet: 150 scheduled of 200 offered.
        assert!((point.fleet_availability - 0.75).abs() < 1e-12);
        // fleet: required = 800 - 200 + 80 = 680 of 800 baseline.
        assert!((point.fleet_savings - 0.15).abs() < 1e-12);
        assert_eq!(point.groups.len(), 2);
        assert!((point.groups[0].availability - 0.9).abs() < 1e-12);
        assert!((point.groups[1].occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn event_log_writes_one_json_object_per_line() {
        let dir = std::env::temp_dir();
        let path = dir.join("pond_metrics_timeseries_test.jsonl");
        {
            let mut recorder = TimeSeriesRecorder::with_log(&path).unwrap();
            recorder.on_decision(&DecisionTrace {
                time: 7,
                vm: Some(0),
                home_group: 0,
                group: Some(1),
                rung: crate::observer::LadderRung::PooledNeighbor,
                reason: crate::observer::FallbackReason::HomePoolFull,
                memory: Bytes::from_gib(8),
                lifetime: 600,
            });
            recorder.on_lifecycle_op(&LifecycleTrace {
                time: 9,
                group: 1,
                kind: LifecycleOpKind::EmcFailure { affected: 3 },
            });
            recorder.on_snapshot(3600, &[sample(0, 1, 0)]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\": \"decision\""));
        assert!(lines[0].contains("\"rung\": \"pooled_neighbor\""));
        assert!(lines[1].contains("\"op\": \"emc_failure\""));
        assert!(lines[2].contains("\"kind\": \"snapshot\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_env_without_variable_has_no_log() {
        // The variable is absent in the test environment by default.
        if std::env::var_os(EVENT_LOG_ENV).is_none() {
            let recorder = TimeSeriesRecorder::from_env().unwrap();
            assert!(recorder.log.is_none());
        }
    }
}
