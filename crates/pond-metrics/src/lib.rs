//! # pond-metrics
//!
//! Deterministic observability for the Pond fleet replays.
//!
//! The replays in `pond-core` surface a final `FleetOutcome` plus coarse
//! snapshots — a single opaque number per 75-day drill. This crate adds the
//! missing visibility without touching replay semantics:
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed-bucket histograms,
//!   keyed by name and recorded in *simulated* time only, so two replays of
//!   the same trace produce byte-identical registries.
//! * [`ReplayObserver`] — the hook contract the replay loops call into:
//!   every popped event, every placement-ladder decision (rung + fallback
//!   reason), every QoS pass, every lifecycle operation, and a per-group
//!   sample at each snapshot tick. [`NullObserver`] disables every hook at
//!   compile time ([`ReplayObserver::ENABLED`] is `false`), so the
//!   unobserved replay monomorphizes to the pre-observability loop.
//! * [`MetricsObserver`] — an observer that feeds a [`MetricsRegistry`]:
//!   event counts by class, ladder-rung hits per group, copy-time and
//!   VM-lifetime histograms, pool occupancy gauges.
//! * [`TimeSeriesRecorder`] — an observer that samples per-group
//!   availability, DRAM savings, and pool occupancy at snapshot ticks, and
//!   (when the [`EVENT_LOG_ENV`] environment variable names a path) writes
//!   a JSONL structured event log for post-hoc decision forensics.
//!
//! ## Determinism rules
//!
//! Observers are read-only with respect to the replay: every hook receives
//! shared references and returns nothing, so an observed replay and an
//! unobserved replay of the same `(trace, config, seed)` produce
//! bit-identical outcomes — which the integration suite proptest-pins. All
//! metric values derive from simulated time and replay state; wall-clock
//! profiling lives in `pond-bench`, never here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod observer;
pub mod registry;
pub mod timeseries;

pub use observer::{
    event_class, DecisionTrace, FallbackReason, GroupSample, LadderRung, LifecycleOpKind,
    LifecycleTrace, MetricsObserver, NullObserver, QosPassTrace, ReplayObserver,
};
pub use registry::{Histogram, MetricsRegistry};
pub use timeseries::{GroupSeries, TimeSeriesPoint, TimeSeriesRecorder, EVENT_LOG_ENV};
