//! The replay-observer contract: the hooks the fleet replay loops call and
//! the structured payloads they pass.
//!
//! Observers are strictly read-only with respect to the replay: every hook
//! receives shared references (or `Copy` values) derived from replay state
//! and returns nothing, so wiring any observer into a replay cannot change
//! its outcome. [`NullObserver`] additionally sets
//! [`ReplayObserver::ENABLED`] to `false`, letting the replay loops skip
//! payload construction entirely at compile time — the unobserved replay
//! monomorphizes to the pre-observability loop.

use cluster_sim::event::Event;
use cxl_hw::pool::GroupState;
use cxl_hw::units::Bytes;
use std::time::Duration;

use crate::registry::MetricsRegistry;

/// A stable lowercase name for an event's class, for counter keys and the
/// structured event log. (`Event::class` itself is private to the event
/// core's ordering contract; this is the observability-facing spelling.)
pub fn event_class(event: &Event) -> &'static str {
    match event {
        Event::EmcFailure { .. } => "emc_failure",
        Event::EmcRepair { .. } => "emc_repair",
        Event::GroupDecommission { .. } => "decommission",
        Event::GroupExpansion { .. } => "expansion",
        Event::Departure { .. } => "departure",
        Event::Release { .. } => "release",
        Event::ReconfigDone { .. } => "reconfig_done",
        Event::MigrationDone { .. } => "migration_done",
        Event::Snapshot { .. } => "snapshot",
        Event::Arrival { .. } => "arrival",
    }
}

/// Which rung of the placement ladder a VM request landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Placed pooled (zNUMA or all-local-by-policy) on the home group.
    PooledHome,
    /// Placed on a home-group host with pool slices *borrowed* from a
    /// reachable neighbor's pool (split host/slice ownership): the VM keeps
    /// its compute locality and only its memory crosses the pod boundary.
    BorrowedNeighbor,
    /// Placed pooled on a reachable neighbor group after the home group
    /// could not hold the request.
    PooledNeighbor,
    /// Placed all-local on the home group because no pooled rung held.
    AllLocalHome,
    /// Placed all-local on a neighbor group — the last rung before
    /// rejection.
    AllLocalNeighbor,
    /// No rung held: the request was rejected.
    Rejected,
}

impl LadderRung {
    /// Stable lowercase name for counter keys and the event log.
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::PooledHome => "pooled_home",
            LadderRung::BorrowedNeighbor => "borrowed_neighbor",
            LadderRung::PooledNeighbor => "pooled_neighbor",
            LadderRung::AllLocalHome => "all_local_home",
            LadderRung::AllLocalNeighbor => "all_local_neighbor",
            LadderRung::Rejected => "rejected",
        }
    }
}

/// Why a placement fell past the preferred rung (pooled on the home group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// It did not fall: the preferred rung held.
    None,
    /// The home group's pool (or hosts) could not hold the request pooled;
    /// a neighbor group took it pooled instead.
    HomePoolFull,
    /// Every reachable pooled rung was exhausted; the request fell back to
    /// an all-local placement.
    PoolRungsExhausted,
    /// No rung on any reachable group held the request.
    NoRungHeld,
    /// No pool group was online to even try.
    NoOnlineGroup,
}

impl FallbackReason {
    /// Stable lowercase name for counter keys and the event log.
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::None => "none",
            FallbackReason::HomePoolFull => "home_pool_full",
            FallbackReason::PoolRungsExhausted => "pool_rungs_exhausted",
            FallbackReason::NoRungHeld => "no_rung_held",
            FallbackReason::NoOnlineGroup => "no_online_group",
        }
    }
}

/// One placement-ladder decision: where a VM request landed and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTrace {
    /// Simulated arrival time in seconds since trace start.
    pub time: u64,
    /// The raw VM identity (`VmId.0`) the control plane assigned, when the
    /// request was placed; rejected requests carry `None`.
    pub vm: Option<u64>,
    /// The scheduler's home group for the request.
    pub home_group: usize,
    /// The group that actually took the request (`None` when rejected).
    pub group: Option<usize>,
    /// The ladder rung the request landed on.
    pub rung: LadderRung,
    /// Why the request fell past the preferred rung, if it did.
    pub reason: FallbackReason,
    /// Requested memory footprint.
    pub memory: Bytes,
    /// Requested lifetime in seconds.
    pub lifetime: u64,
}

/// One QoS-mitigation pass over a group's hosts at a snapshot tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosPassTrace {
    /// Simulated pass time in seconds since trace start.
    pub time: u64,
    /// The pool group the pass swept.
    pub group: usize,
    /// VMs reconfigured (pool slices pulled back to local DRAM).
    pub reconfigured: u64,
    /// Total memory-copy time charged by the pass.
    pub copy_time: Duration,
}

/// What kind of lifecycle operation fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleOpKind {
    /// A pooled memory device died.
    EmcFailure {
        /// VMs whose pool slices lived on the failed device.
        affected: u64,
    },
    /// A failed pooled memory device returned to service.
    EmcRepair {
        /// Capacity restored to the pool.
        restored: Bytes,
    },
    /// A group began a graceful decommission drain.
    DecommissionStarted {
        /// VMs running on the group when the drain began.
        running: u64,
    },
    /// A draining group's last VM left; the group is decommissioned.
    DecommissionComplete,
    /// A group gained live capacity.
    Expansion {
        /// Capacity added to the pool.
        capacity: Bytes,
    },
    /// A VM displaced by a failure was evacuated (or killed when `dest` is
    /// `None`).
    VmEvacuated {
        /// Destination group, `None` when no rung held and the VM died.
        dest: Option<usize>,
        /// Memory-copy time charged for the migration (zero when killed).
        copy: Duration,
    },
    /// A VM was drained off a decommissioning group (killed when `dest` is
    /// `None` — which the drain contract forbids, so a `None` here is a
    /// replay bug surfaced by observability).
    VmDrained {
        /// Destination group.
        dest: Option<usize>,
        /// Memory-copy time charged for the migration.
        copy: Duration,
    },
    /// A VM was moved off a starved group by the snapshot-tick rebalancer.
    VmRebalanced {
        /// Destination group.
        dest: usize,
        /// Memory-copy time charged for the migration.
        copy: Duration,
    },
}

impl LifecycleOpKind {
    /// Stable lowercase name for counter keys and the event log.
    pub fn name(self) -> &'static str {
        match self {
            LifecycleOpKind::EmcFailure { .. } => "emc_failure",
            LifecycleOpKind::EmcRepair { .. } => "emc_repair",
            LifecycleOpKind::DecommissionStarted { .. } => "decommission_started",
            LifecycleOpKind::DecommissionComplete => "decommission_complete",
            LifecycleOpKind::Expansion { .. } => "expansion",
            LifecycleOpKind::VmEvacuated { .. } => "vm_evacuated",
            LifecycleOpKind::VmDrained { .. } => "vm_drained",
            LifecycleOpKind::VmRebalanced { .. } => "vm_rebalanced",
        }
    }
}

/// One lifecycle operation: a failure, repair, decommission step,
/// expansion, or displaced-VM move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleTrace {
    /// Simulated operation time in seconds since trace start.
    pub time: u64,
    /// The pool group the operation acted on (the *source* group for VM
    /// moves).
    pub group: usize,
    /// What happened.
    pub kind: LifecycleOpKind,
}

/// A per-group sample taken at a snapshot tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSample {
    /// The pool group sampled.
    pub group: usize,
    /// The group's lifecycle state.
    pub state: GroupState,
    /// Pool capacity free for new placements.
    pub pool_free: Bytes,
    /// Pool capacity stuck offlining (pending asynchronous release).
    pub pool_offlining: Bytes,
    /// Pool capacity pinned by QoS mitigations awaiting release.
    pub pool_pinned: Bytes,
    /// Pool capacity currently live (online devices).
    pub pool_live: Bytes,
    /// Pool capacity this group has *lent* to VMs homed in other pods
    /// (cross-pod slice borrowing; counted inside the lender's ledger).
    pub pool_lent: Bytes,
    /// Pool capacity VMs homed on this group hold *borrowed* from other
    /// pods' pools (counted inside the lenders' ledgers, not this one).
    pub pool_borrowed: Bytes,
    /// VMs running on the group right now.
    pub running_vms: u64,
    /// VMs the group has scheduled since trace start.
    pub scheduled_vms: u64,
    /// VMs the group has rejected since trace start.
    pub rejected_vms: u64,
    /// VMs killed on the group since trace start.
    pub vms_killed: u64,
    /// Sum of per-VM `max(local, local+pool)` peaks — the no-pooling DRAM
    /// baseline accumulated so far.
    pub sum_total_peaks: Bytes,
    /// Sum of per-VM host-pool peaks accumulated so far.
    pub sum_host_pool_peaks: Bytes,
    /// Peak simultaneous pool usage observed so far.
    pub pool_peak: Bytes,
}

impl GroupSample {
    /// Fraction of arrivals so far the group admitted (1.0 before any
    /// arrival).
    pub fn availability(&self) -> f64 {
        let offered = self.scheduled_vms + self.rejected_vms;
        if offered == 0 {
            1.0
        } else {
            self.scheduled_vms as f64 / offered as f64
        }
    }

    /// DRAM saved so far versus an all-local fleet: `1 - required /
    /// baseline`, where `required` swaps the per-VM host-pool peaks for one
    /// shared pool peak. Zero before any placement.
    pub fn dram_savings_fraction(&self) -> f64 {
        let baseline = self.sum_total_peaks.as_u64();
        if baseline == 0 {
            return 0.0;
        }
        let required = self
            .sum_total_peaks
            .as_u64()
            .saturating_sub(self.sum_host_pool_peaks.as_u64())
            .saturating_add(self.pool_peak.as_u64());
        1.0 - required as f64 / baseline as f64
    }

    /// Fraction of live pool capacity not free right now (zero for an
    /// empty/decommissioned pool).
    pub fn pool_occupancy_fraction(&self) -> f64 {
        let live = self.pool_live.as_u64();
        if live == 0 {
            return 0.0;
        }
        let used = live.saturating_sub(self.pool_free.as_u64());
        used as f64 / live as f64
    }
}

/// The hook contract the replay loops call into.
///
/// Every hook has an empty default body, so observers implement only what
/// they consume. Hooks take `&mut self` (observers accumulate) but only
/// shared payloads — an observer cannot write back into the replay.
pub trait ReplayObserver {
    /// Compile-time switch: when `false` (only [`NullObserver`]), the
    /// replay loops skip payload construction entirely and monomorphize to
    /// the unobserved loop. Leave it `true` for real observers.
    const ENABLED: bool = true;

    /// Called for every event popped off the queue, before it is handled.
    fn on_event(&mut self, _event: &Event) {}

    /// Called for every placement-ladder decision (admitted or rejected).
    fn on_decision(&mut self, _decision: &DecisionTrace) {}

    /// Called for every per-group QoS-mitigation pass at a snapshot tick.
    fn on_qos_pass(&mut self, _pass: &QosPassTrace) {}

    /// Called for every lifecycle operation (failures, repairs,
    /// decommission steps, expansions, displaced-VM moves).
    fn on_lifecycle_op(&mut self, _op: &LifecycleTrace) {}

    /// Called once per snapshot tick, after the QoS passes and rebalance
    /// moves, with one sample per pool group.
    fn on_snapshot(&mut self, _time: u64, _groups: &[GroupSample]) {}
}

/// The do-nothing observer: disables every hook at compile time so the
/// unobserved replay pays nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl ReplayObserver for NullObserver {
    const ENABLED: bool = false;
}

/// Copy-time histogram edges in seconds: sub-second through half-day.
const COPY_SECS_BOUNDS: [u64; 8] = [1, 5, 15, 60, 300, 1800, 7200, 43_200];

/// VM-lifetime histogram edges in seconds: minute through quarter.
const LIFETIME_SECS_BOUNDS: [u64; 9] =
    [60, 600, 3600, 21_600, 86_400, 259_200, 604_800, 2_592_000, 7_776_000];

/// An observer that aggregates every hook into a [`MetricsRegistry`]:
/// event counts by class, ladder-rung and fallback-reason hits per group,
/// VM-lifetime and copy-time histograms, QoS and lifecycle counters, and
/// per-group pool-occupancy gauges refreshed at each snapshot tick.
#[derive(Debug, Clone, Default)]
pub struct MetricsObserver {
    registry: MetricsRegistry,
}

impl MetricsObserver {
    /// A fresh observer over an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the observer and returns the registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl ReplayObserver for MetricsObserver {
    fn on_event(&mut self, event: &Event) {
        self.registry.inc(&format!("events.{}", event_class(event)));
    }

    fn on_decision(&mut self, decision: &DecisionTrace) {
        self.registry.inc(&format!("ladder.group{}.{}", decision.home_group, decision.rung.name()));
        if decision.reason != FallbackReason::None {
            self.registry.inc(&format!("fallback.{}", decision.reason.name()));
        }
        if decision.group.is_some() {
            self.registry.observe("vm.lifetime_secs", &LIFETIME_SECS_BOUNDS, decision.lifetime);
        }
    }

    fn on_qos_pass(&mut self, pass: &QosPassTrace) {
        self.registry.inc(&format!("qos.group{}.passes", pass.group));
        self.registry.add(&format!("qos.group{}.reconfigured", pass.group), pass.reconfigured);
        if pass.reconfigured > 0 {
            self.registry.observe("qos.copy_secs", &COPY_SECS_BOUNDS, pass.copy_time.as_secs());
        }
    }

    fn on_lifecycle_op(&mut self, op: &LifecycleTrace) {
        // A repair of a healthy device restores nothing: count it apart so
        // `lifecycle.emc_repair` reconciles with the outcome's
        // `emcs_repaired` (which only counts effective repairs).
        if matches!(op.kind, LifecycleOpKind::EmcRepair { restored } if restored.is_zero()) {
            self.registry.inc("lifecycle.emc_repair_noop");
            return;
        }
        self.registry.inc(&format!("lifecycle.{}", op.kind.name()));
        match op.kind {
            LifecycleOpKind::VmEvacuated { dest: Some(_), copy }
            | LifecycleOpKind::VmDrained { dest: Some(_), copy }
            | LifecycleOpKind::VmRebalanced { copy, .. } => {
                self.registry.observe("migration.copy_secs", &COPY_SECS_BOUNDS, copy.as_secs());
            }
            _ => {}
        }
    }

    fn on_snapshot(&mut self, _time: u64, groups: &[GroupSample]) {
        for sample in groups {
            let g = sample.group;
            self.registry
                .set_gauge(&format!("pool.group{g}.free_bytes"), sample.pool_free.as_u64());
            self.registry.set_gauge(
                &format!("pool.group{g}.offlining_bytes"),
                sample.pool_offlining.as_u64(),
            );
            self.registry
                .set_gauge(&format!("pool.group{g}.pinned_bytes"), sample.pool_pinned.as_u64());
            self.registry
                .set_gauge(&format!("pool.group{g}.live_bytes"), sample.pool_live.as_u64());
            self.registry
                .set_gauge(&format!("pool.group{g}.lent_bytes"), sample.pool_lent.as_u64());
            self.registry
                .set_gauge(&format!("pool.group{g}.borrowed_bytes"), sample.pool_borrowed.as_u64());
            self.registry.set_gauge(&format!("pool.group{g}.running_vms"), sample.running_vms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(LadderRung::PooledNeighbor.name(), "pooled_neighbor");
        assert_eq!(LadderRung::BorrowedNeighbor.name(), "borrowed_neighbor");
        assert_eq!(FallbackReason::NoOnlineGroup.name(), "no_online_group");
        assert_eq!(LifecycleOpKind::DecommissionComplete.name(), "decommission_complete");
        assert_eq!(event_class(&Event::Snapshot { time: 0 }), "snapshot");
        assert_eq!(event_class(&Event::Arrival { time: 3, request_index: 0 }), "arrival");
    }

    #[test]
    fn group_sample_derivations() {
        let sample = GroupSample {
            group: 0,
            state: GroupState::Online,
            pool_free: Bytes::from_gib(25),
            pool_offlining: Bytes::from_gib(0),
            pool_pinned: Bytes::from_gib(0),
            pool_live: Bytes::from_gib(100),
            pool_lent: Bytes::from_gib(0),
            pool_borrowed: Bytes::from_gib(0),
            running_vms: 10,
            scheduled_vms: 90,
            rejected_vms: 10,
            vms_killed: 0,
            sum_total_peaks: Bytes::from_gib(1000),
            sum_host_pool_peaks: Bytes::from_gib(300),
            pool_peak: Bytes::from_gib(100),
        };
        assert!((sample.availability() - 0.9).abs() < 1e-12);
        // required = 1000 - 300 + 100 = 800 → savings 0.2
        assert!((sample.dram_savings_fraction() - 0.2).abs() < 1e-12);
        assert!((sample.pool_occupancy_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn metrics_observer_aggregates_hooks() {
        let mut observer = MetricsObserver::new();
        observer.on_event(&Event::Arrival { time: 0, request_index: 0 });
        observer.on_event(&Event::Arrival { time: 5, request_index: 1 });
        observer.on_event(&Event::Departure { time: 9, token: 0 });
        observer.on_decision(&DecisionTrace {
            time: 0,
            vm: Some(0),
            home_group: 1,
            group: Some(1),
            rung: LadderRung::PooledHome,
            reason: FallbackReason::None,
            memory: Bytes::from_gib(4),
            lifetime: 120,
        });
        observer.on_decision(&DecisionTrace {
            time: 5,
            vm: None,
            home_group: 1,
            group: None,
            rung: LadderRung::Rejected,
            reason: FallbackReason::NoRungHeld,
            memory: Bytes::from_gib(4),
            lifetime: 120,
        });
        let registry = observer.registry();
        assert_eq!(registry.counter("events.arrival"), 2);
        assert_eq!(registry.counter("events.departure"), 1);
        assert_eq!(registry.counter("ladder.group1.pooled_home"), 1);
        assert_eq!(registry.counter("ladder.group1.rejected"), 1);
        assert_eq!(registry.counter("fallback.no_rung_held"), 1);
        assert_eq!(registry.histogram("vm.lifetime_secs").unwrap().total(), 1);
    }
}
