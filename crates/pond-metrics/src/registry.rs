//! The deterministic metrics registry: counters, gauges, and fixed-bucket
//! histograms keyed by name.
//!
//! Everything here is ordinary owned state — no interior mutability, no
//! wall-clock reads, no background aggregation — so a registry filled by a
//! deterministic replay renders byte-identically across runs, threads, and
//! machines. Names are free-form dotted strings (`events.arrival`,
//! `ladder.group2.pooled_home`); the registry stores them in sorted order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram over `u64` values (seconds, GiB, counts).
///
/// `bounds` are inclusive upper bucket edges in ascending order; one
/// overflow bucket catches everything above the last edge. Buckets are fixed
/// at construction so two histograms fed the same values always agree
/// bucket for bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram with the given inclusive upper bucket edges.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket edge");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket edges must be strictly ascending");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], total: 0, sum: 0 }
    }

    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        let bucket = self.bounds.partition_point(|&edge| edge < value);
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The inclusive upper bucket edges.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts: one per edge, plus the trailing overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// The registry: three deterministic name-keyed stores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the named histogram, creating it with `bounds`
    /// on first use. Later calls ignore `bounds` — the first caller fixes
    /// the buckets.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The named counter's value (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's latest value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if ever observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(name, &value)| (name.as_str(), value))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(name, &value)| (name.as_str(), value))
    }

    /// Sum of the values of every counter whose name starts with `prefix` —
    /// e.g. `events.` totals every event class.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(_, &value)| value)
            .sum()
    }

    /// A deterministic text dump: counters, gauges, then histograms, each in
    /// name order — byte-identical for identical registries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, histogram) in &self.histograms {
            let _ = write!(out, "histogram {name} total={} sum={}", histogram.total, histogram.sum);
            for (i, count) in histogram.counts.iter().enumerate() {
                match histogram.bounds.get(i) {
                    Some(edge) => {
                        let _ = write!(out, " le{edge}={count}");
                    }
                    None => {
                        let _ = write!(out, " inf={count}");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_edges() {
        let mut h = Histogram::new(&[10, 100]);
        for value in [0, 10, 11, 100, 101, 5000] {
            h.observe(value);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 5000);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn registry_is_deterministic_regardless_of_insertion_order() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("z.late");
        a.inc("a.early");
        a.set_gauge("g", 7);
        a.observe("h", &[1, 2], 3);
        b.observe("h", &[1, 2], 3);
        b.set_gauge("g", 7);
        b.inc("a.early");
        b.inc("z.late");
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(a.render().starts_with("counter a.early 1\n"));
    }

    #[test]
    fn prefix_sum_totals_a_namespace() {
        let mut r = MetricsRegistry::new();
        r.add("events.arrival", 5);
        r.add("events.departure", 3);
        r.add("eventsx", 100);
        r.add("ladder.group0.pooled_home", 9);
        assert_eq!(r.counter_prefix_sum("events."), 8);
        assert_eq!(r.counter("events.arrival"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("missing"), None);
    }
}
