//! The latency-insensitivity prediction model (§4.4, Figure 12, Figure 17).
//!
//! Pond must decide, from core-PMU counters alone, whether a workload can run
//! entirely on pool memory and stay within the performance degradation margin
//! (PDM). The paper trains a random forest on ~200 TMA counters with
//! slowdown labels from offline runs and internal A/B tests; we train the
//! same model family on the synthetic suite's counters and the analytic
//! slowdown model, and compare it against the two single-counter heuristics
//! the paper uses as baselines ("Memory bound" and "DRAM bound").

use cxl_hw::latency::LatencyScenario;
use pond_ml::dataset::Dataset;
use pond_ml::eval::{threshold_sweep, OperatingPoint};
use pond_ml::forest::{ForestConfig, RandomForest};
use pond_ml::MlError;
use serde::{Deserialize, Serialize};
use workload_model::telemetry::{TelemetrySampler, TmaCounters};
use workload_model::{SlowdownModel, WorkloadSuite};

/// Configuration of the sensitivity model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityModelConfig {
    /// Performance degradation margin (e.g. 0.05 for 5%).
    pub pdm: f64,
    /// The emulated latency scenario the model targets.
    pub scenario: LatencyScenario,
    /// Number of PMU samples averaged per workload when building features.
    pub samples_per_workload: usize,
    /// Random-forest hyperparameters.
    pub forest: ForestConfig,
}

impl Default for SensitivityModelConfig {
    fn default() -> Self {
        SensitivityModelConfig {
            pdm: 0.05,
            scenario: LatencyScenario::Increase182,
            samples_per_workload: 8,
            forest: ForestConfig { trees: 60, ..Default::default() },
        }
    }
}

/// Builds the training dataset: one row per (workload, sample) pair with TMA
/// counters as features and "insensitive" (slowdown ≤ PDM on all-pool
/// memory) as the 0/1 label.
pub fn training_dataset(
    suite: &WorkloadSuite,
    config: &SensitivityModelConfig,
    seed: u64,
) -> Dataset {
    let sampler = TelemetrySampler::default();
    let slowdown = SlowdownModel::default();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (i, workload) in suite.workloads().enumerate() {
        let insensitive = slowdown.is_latency_insensitive(workload, config.scenario, config.pdm);
        for s in 0..config.samples_per_workload.max(1) {
            let counters = sampler.sample(workload, seed.wrapping_add((i * 1000 + s) as u64));
            rows.push(counters.to_features());
            labels.push(if insensitive { 1.0 } else { 0.0 });
        }
    }
    Dataset::new(TmaCounters::feature_names(), rows, labels)
        .expect("suite-generated dataset is well formed")
}

/// A trained latency-insensitivity model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityModel {
    forest: RandomForest,
    config: SensitivityModelConfig,
    threshold: f64,
}

impl SensitivityModel {
    /// Trains the model on the workload suite (the "offline test runs" of
    /// Figure 12). The decision threshold defaults to 0.5; use
    /// [`SensitivityModel::with_threshold`] or
    /// [`SensitivityModel::calibrate_threshold`] to pick an operating point.
    pub fn train(suite: &WorkloadSuite, config: &SensitivityModelConfig, seed: u64) -> Self {
        let data = training_dataset(suite, config, seed);
        let forest = RandomForest::fit(&data, &config.forest, seed);
        SensitivityModel { forest, config: config.clone(), threshold: 0.5 }
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &SensitivityModelConfig {
        &self.config
    }

    /// The current decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Returns the model with a fixed decision threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Probability that the workload behind these counters is latency
    /// insensitive (can run fully on pool memory within the PDM), with the
    /// feature schema validated: a drift surfaces as an [`MlError`] the
    /// caller can propagate instead of a panic mid replay.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] when the counters produce a
    /// feature row of the wrong width for the trained forest.
    pub fn try_insensitive_probability(&self, counters: &TmaCounters) -> Result<f64, MlError> {
        self.forest.try_predict_proba(&counters.to_features())
    }

    /// Probability that the workload behind these counters is latency
    /// insensitive — the panicking convenience over
    /// [`SensitivityModel::try_insensitive_probability`] for offline
    /// evaluation code that controls its own features.
    pub fn insensitive_probability(&self, counters: &TmaCounters) -> f64 {
        self.try_insensitive_probability(counters)
            .expect("TMA counter features must match the trained forest's schema")
    }

    /// Hard decision at the model's threshold, with the feature schema
    /// validated. The online serving path (one call per VM arrival and per
    /// QoS-monitored VM) goes through here so a malformed feature row
    /// becomes an error the fleet replay propagates, not a panic that takes
    /// a whole sweep down.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] on feature-schema drift.
    pub fn try_is_insensitive(&self, counters: &TmaCounters) -> Result<bool, MlError> {
        self.forest.try_predict(&counters.to_features(), self.threshold)
    }

    /// Hard decision at the model's threshold (panicking convenience over
    /// [`SensitivityModel::try_is_insensitive`]).
    pub fn is_insensitive(&self, counters: &TmaCounters) -> bool {
        self.insensitive_probability(counters) >= self.threshold
    }

    /// The coverage/false-positive trade-off curve on a held-out dataset
    /// (Figure 17's RandomForest line). The positive class is "insensitive",
    /// so a false positive is a sensitive workload marked insensitive.
    pub fn operating_points(&self, test: &Dataset, steps: usize) -> Vec<OperatingPoint> {
        let scores = self
            .forest
            .predict_proba_batch(test)
            .expect("test dataset uses the training feature schema");
        threshold_sweep(&scores, test.labels(), steps)
    }

    /// Picks the most permissive threshold whose false-positive fraction on
    /// `validation` stays within `fp_budget`, and stores it as the decision
    /// threshold. Returns the chosen operating point, or `None` if even the
    /// strictest threshold exceeds the budget (the threshold is then set to
    /// 1.0, i.e. never mark anything insensitive).
    pub fn calibrate_threshold(
        &mut self,
        validation: &Dataset,
        fp_budget: f64,
        steps: usize,
    ) -> Option<OperatingPoint> {
        let points = self.operating_points(validation, steps);
        let best = pond_ml::eval::best_point_within_fp_budget(&points, fp_budget);
        self.threshold = best.map(|p| p.threshold).unwrap_or(1.0);
        best
    }
}

/// The single-counter heuristics Figure 17 compares against. A workload is
/// marked insensitive when the chosen counter is *below* a threshold, so the
/// sweep uses `1 - counter` as the score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterHeuristic {
    /// Threshold on the TMA "memory bound" fraction.
    MemoryBound,
    /// Threshold on the TMA "DRAM bound" fraction.
    DramBound,
}

impl CounterHeuristic {
    /// Coverage/false-positive curve for the heuristic on a dataset whose
    /// features follow [`TmaCounters::FEATURE_NAMES`].
    pub fn operating_points(&self, test: &Dataset, steps: usize) -> Vec<OperatingPoint> {
        let index = match self {
            CounterHeuristic::MemoryBound => 1,
            CounterHeuristic::DramBound => 2,
        };
        let scores: Vec<f64> = test.rows().iter().map(|r| 1.0 - r[index].clamp(0.0, 1.0)).collect();
        threshold_sweep(&scores, test.labels(), steps)
    }
}

/// Area-style summary of a curve: the mean false-positive fraction over the
/// coverage range `[0, max_coverage]` (lower is better). Used to compare the
/// RandomForest against the heuristics.
pub fn mean_fp_up_to_coverage(points: &[OperatingPoint], max_coverage: f64) -> f64 {
    let relevant: Vec<&OperatingPoint> =
        points.iter().filter(|p| p.positive_fraction <= max_coverage).collect();
    if relevant.is_empty() {
        return 0.0;
    }
    relevant.iter().map(|p| p.false_positive_fraction).sum::<f64>() / relevant.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (WorkloadSuite, SensitivityModelConfig) {
        (WorkloadSuite::standard(), SensitivityModelConfig::default())
    }

    #[test]
    fn training_dataset_has_one_row_per_sample() {
        let (suite, config) = setup();
        let data = training_dataset(&suite, &config, 0);
        assert_eq!(data.len(), 158 * config.samples_per_workload);
        assert_eq!(data.n_features(), TmaCounters::FEATURE_NAMES.len());
        // Both classes are present.
        let positives = data.labels().iter().filter(|&&l| l > 0.5).count();
        assert!(positives > 20 && positives < data.len() - 20, "positives: {positives}");
    }

    #[test]
    fn model_identifies_clearly_insensitive_and_sensitive_workloads() {
        let (suite, config) = setup();
        let model = SensitivityModel::train(&suite, &config, 1);
        let sampler = TelemetrySampler::default();
        let slowdown = SlowdownModel::default();
        // Most-insensitive and most-sensitive workloads by ground truth.
        let mut sorted: Vec<_> = suite.workloads().collect();
        sorted.sort_by(|a, b| {
            slowdown
                .full_pool_slowdown(a, config.scenario)
                .partial_cmp(&slowdown.full_pool_slowdown(b, config.scenario))
                .unwrap()
        });
        let quiet = sampler.sample(sorted[0], 99);
        let loud = sampler.sample(sorted[sorted.len() - 1], 99);
        assert!(model.insensitive_probability(&quiet) > model.insensitive_probability(&loud));
        assert!(model.insensitive_probability(&quiet) > 0.6);
        assert!(model.insensitive_probability(&loud) < 0.4);
    }

    #[test]
    fn random_forest_beats_single_counter_heuristics() {
        // Figure 17: RandomForest slightly outperforms DRAM-bound, which
        // clearly outperforms Memory-bound.
        let (suite, config) = setup();
        let data = training_dataset(&suite, &config, 2);
        let (train, test) = data.train_test_split(0.5, 3);
        let forest = RandomForest::fit(&train, &config.forest, 3);
        let model = SensitivityModel { forest, config: config.clone(), threshold: 0.5 };

        let rf = mean_fp_up_to_coverage(&model.operating_points(&test, 50), 0.4);
        let dram =
            mean_fp_up_to_coverage(&CounterHeuristic::DramBound.operating_points(&test, 50), 0.4);
        let mem =
            mean_fp_up_to_coverage(&CounterHeuristic::MemoryBound.operating_points(&test, 50), 0.4);
        assert!(
            rf <= dram + 0.01,
            "RandomForest ({rf:.3}) should be at least as good as DRAM-bound ({dram:.3})"
        );
        assert!(dram < mem, "DRAM-bound ({dram:.3}) should beat Memory-bound ({mem:.3})");
    }

    #[test]
    fn calibrated_threshold_respects_the_fp_budget() {
        let (suite, config) = setup();
        let data = training_dataset(&suite, &config, 4);
        let (train, validation) = data.train_test_split(0.5, 5);
        let forest = RandomForest::fit(&train, &config.forest, 5);
        let mut model = SensitivityModel { forest, config, threshold: 0.5 };
        let point = model.calibrate_threshold(&validation, 0.02, 100).unwrap();
        assert!(point.false_positive_fraction <= 0.02 + 1e-12);
        // Finding 5: ~30% of workloads can be placed on the pool at ~2% FP.
        assert!(point.positive_fraction > 0.15, "coverage {point:?}");
        assert_eq!(model.threshold(), point.threshold);
    }

    #[test]
    fn threshold_accessors() {
        let (suite, config) = setup();
        let model = SensitivityModel::train(&suite, &config, 6).with_threshold(0.8);
        assert_eq!(model.threshold(), 0.8);
        assert_eq!(model.config().pdm, 0.05);
        let sampler = TelemetrySampler::default();
        let counters = sampler.sample(suite.at(0).unwrap(), 0);
        let p = model.insensitive_probability(&counters);
        assert_eq!(model.is_insensitive(&counters), p >= 0.8);
    }

    #[test]
    fn the_222_scenario_is_harder() {
        // §6.4.1: the 222% model is less effective at the same FP target.
        let suite = WorkloadSuite::standard();
        let mut coverage = Vec::new();
        for scenario in [LatencyScenario::Increase182, LatencyScenario::Increase222] {
            let config = SensitivityModelConfig { scenario, ..Default::default() };
            let data = training_dataset(&suite, &config, 7);
            let (train, validation) = data.train_test_split(0.5, 8);
            let forest = RandomForest::fit(&train, &config.forest, 8);
            let mut model = SensitivityModel { forest, config, threshold: 0.5 };
            let point = model.calibrate_threshold(&validation, 0.02, 100);
            coverage.push(point.map(|p| p.positive_fraction).unwrap_or(0.0));
        }
        assert!(
            coverage[1] <= coverage[0] + 0.05,
            "222% coverage ({}) should not exceed 182% coverage ({}) by much",
            coverage[1],
            coverage[0]
        );
    }
}
