//! The Pond control plane (Figure 11): VM scheduling with predictions, pool
//! memory onlining, QoS monitoring, and mitigation, wired to the concrete
//! hardware and hypervisor models.
//!
//! [`PondControlPlane`] manages a group of hosts attached to one CXL pool.
//! It is the piece the examples and integration tests drive end to end: a VM
//! request comes in, the prediction models pick a local/pool split, the Pool
//! Manager onlines slices, the hypervisor pins memory and exposes a zNUMA
//! node, and the QoS monitor later reconfigures VMs whose predictions turned
//! out wrong.

use crate::error::PondError;
use crate::policy::{PondDecision, PondPolicy, PondPolicyConfig};
use crate::pool_manager::PondPoolManager;
use crate::qos::{MitigationManager, QosMonitor, VmObservation};
use cluster_sim::scheduler::align_pool_memory;
use cluster_sim::trace::{ClusterTrace, CustomerId, VmRequest};
use cxl_hw::emc::EmcConfig;
use cxl_hw::pool::SliceLease;
use cxl_hw::topology::PoolTopology;
use cxl_hw::units::{Bytes, EmcId, HostId};
use hypervisor_sim::host::HostMemory;
use hypervisor_sim::telemetry::HypervisorTelemetry;
use hypervisor_sim::vm::{VirtualMachine, VmConfig, VmId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;
use workload_model::WorkloadSuite;

/// Static configuration of a control-plane instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneConfig {
    /// Number of hosts sharing the pool (one per socket pair in the paper's
    /// terms; each host here is one hypervisor).
    pub hosts: u16,
    /// Local DRAM per host.
    pub local_dram_per_host: Bytes,
    /// Hypervisor-private partition per host.
    pub hypervisor_private: Bytes,
    /// Pool size in sockets (must be a supported Pond topology).
    pub pool_sockets: u16,
    /// Total pool capacity.
    pub pool_capacity: Bytes,
    /// Policy / model configuration.
    pub policy: PondPolicyConfig,
    /// Fraction of monitored VMs the mitigation manager may reconfigure.
    pub mitigation_budget: f64,
    /// Whether a request whose pool share cannot be covered by the free
    /// buffer falls back to an all-local placement (the production
    /// scheduler's behaviour) instead of failing with
    /// [`PondError::PoolExhausted`].
    pub fallback_all_local: bool,
    /// Optional cap on the number of post-training untouched-memory
    /// observations kept per customer (a windowed reservoir over VM
    /// completions). On trace-length runs the customer history is the one
    /// deliberate unbounded memory term; a window bounds it without
    /// touching the training-seeded history. `None` (the default) keeps
    /// every completion — the frozen-policy goldens depend on that.
    #[serde(default)]
    pub history_window: Option<usize>,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            hosts: 8,
            local_dram_per_host: Bytes::from_gib(256),
            hypervisor_private: Bytes::from_gib(8),
            pool_sockets: 16,
            pool_capacity: Bytes::from_gib(512),
            policy: PondPolicyConfig::default(),
            mitigation_budget: 0.05,
            fallback_all_local: false,
            history_window: None,
        }
    }
}

/// Summary of one VM placement returned to the caller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementSummary {
    /// The VM's id.
    pub vm: VmId,
    /// Index of the host it landed on.
    pub host: usize,
    /// Local DRAM pinned for it.
    pub local: Bytes,
    /// Pool DRAM pinned for it (zNUMA size).
    pub pool: Bytes,
    /// Whether the VM sees a zNUMA node.
    pub has_znuma: bool,
    /// Whether the placement fell back to all-local memory because the pool
    /// buffer could not cover the predicted pool share
    /// ([`ControlPlaneConfig::fallback_all_local`]).
    pub fallback_all_local: bool,
    /// Index of the pool group the VM's slices were borrowed from (`None`
    /// when the home pool served them, or for all-local placements). Host
    /// and slices live in different pods exactly when this is set.
    pub borrowed_from: Option<usize>,
}

/// An arrival-time pooled-placement decision that has not yet been committed
/// to a host or pool: the Figure 13 prediction pipeline's output, shared by
/// the home-pool commit and the cross-pod borrow path (which serves the same
/// plan from a lender group's pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PooledPlan {
    /// Pool share to online, aligned to whole 1 GiB slices.
    pub pool: Bytes,
    /// Predicted untouched memory handed to the QoS monitor.
    pub predicted_untouched: Bytes,
}

/// What one QoS-monitoring pass did (returned by
/// [`PondControlPlane::run_qos_pass`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QosPassReport {
    /// VMs reconfigured to all-local memory in this pass.
    pub reconfigured: u64,
    /// Total pool→local copy time the reconfigurations charged (the VM runs
    /// degraded, not paused, during the copy).
    pub copy_time: Duration,
    /// One record per reconfigured VM.
    pub mitigated: Vec<VmMitigation>,
    /// Leases reclaimed from mitigated VMs whose slices were borrowed from
    /// another group's pool. This plane cannot start their offlining — the
    /// slices belong to the lender — so the caller must route each lease to
    /// the lender's [`PondControlPlane::release_lent`] at its `copy_done`
    /// instant. The matching [`VmMitigation::release_ready`] is `None`.
    pub borrowed_reclaims: Vec<BorrowedReclaim>,
}

/// A borrowed lease a QoS mitigation reclaimed, to be returned to the
/// lending group once the pool→local copy completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BorrowedReclaim {
    /// The mitigated VM.
    pub vm: VmId,
    /// When the pool→local copy finishes — the lender-side release starts
    /// here, not at the mitigation instant.
    pub copy_done: Duration,
    /// The lease to hand back to `lease.lender`.
    pub lease: SliceLease,
}

/// What a departure or evacuation freed, split by owner (returned by
/// [`PondControlPlane::handle_departure_split`] and
/// [`PondControlPlane::evacuate_vm_split`]): this plane's own slices start
/// offlining here, while a borrowed lease must be routed back to its lender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepartureOutcome {
    /// Completion time of this plane's own slice offlining (`None` for
    /// all-local VMs and VMs whose slices were all borrowed).
    pub release_ready: Option<Duration>,
    /// The lease the VM held on another group's pool, if any. The caller
    /// must pass it to the lender's [`PondControlPlane::release_lent`];
    /// dropping it would strand the slices in the lender's lent ledger.
    pub lease: Option<SliceLease>,
}

/// One QoS mitigation: which VM moved off pool memory, how much it moved,
/// when its degraded-mode copy window ends, and when the freed slices finish
/// offlining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmMitigation {
    /// The reconfigured VM.
    pub vm: VmId,
    /// Pool memory copied to local DRAM.
    pub moved: Bytes,
    /// Completion time of the pool→local copy (50 ms per GiB): the VM runs
    /// degraded from the mitigation until this instant. Event-driven callers
    /// schedule a reconfiguration-done event here so snapshots observe the
    /// degraded-mode window.
    pub copy_done: Duration,
    /// Completion time of the asynchronous slice release the mitigation
    /// started (offlining begins once the copy finishes). Event-driven
    /// callers schedule a release event here. `None` only for VMs whose
    /// slices were already gone.
    pub release_ready: Option<Duration>,
}

/// What one EMC failure did to a control plane (returned by
/// [`PondControlPlane::handle_emc_failure`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmcFailureOutcome {
    /// The EMC that died.
    pub emc: EmcId,
    /// The running VMs that had memory on the device at the failure
    /// instant, in ascending VM-id order. Every one of them must be
    /// evacuated ([`PondControlPlane::evacuate_vm`]) or killed by the
    /// caller; they are still pinned on their hosts.
    pub affected: Vec<AffectedVm>,
    /// Slice ownerships (assigned or mid-release) lost with the device.
    pub slices_lost: u64,
    /// Of those, slices that were lent to VMs homed on *other* planes —
    /// the cross-pod half of the blast radius. The caller must run
    /// [`PondControlPlane::strip_borrowed`] against every other plane so
    /// the borrowers' leases drop the dead slices too.
    pub lent_slices_lost: u64,
}

/// One VM caught in an EMC failure's blast radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffectedVm {
    /// The affected VM.
    pub vm: VmId,
    /// Pool slices the VM held just before the failure (dead + surviving) —
    /// what its arrival-time GiB-hour accounting is still accruing.
    pub pool_before: Bytes,
    /// Pool slices the VM still holds on live EMCs after the failure.
    pub surviving_pool: Bytes,
}

/// Per-VM bookkeeping inside the control plane.
#[derive(Debug, Clone)]
struct VmRecord {
    vm: VirtualMachine,
    host: usize,
    /// Slices served by this plane's own pool. Empty for all-local VMs and
    /// for VMs whose pool share was borrowed (`borrowed` holds those: a
    /// VM's slices come from exactly one pool).
    slices: Vec<cxl_hw::pool::PoolSlice>,
    /// Lease on another group's pool, when the home pool could not cover
    /// the share and a reachable neighbour lent its slices instead.
    borrowed: Option<SliceLease>,
    predicted_untouched: Bytes,
    customer: CustomerId,
    untouched_fraction: f64,
    workload_index: usize,
}

/// The Pond control plane for one pool group.
#[derive(Debug)]
pub struct PondControlPlane {
    config: ControlPlaneConfig,
    hosts: Vec<HostMemory>,
    pool: PondPoolManager,
    policy: PondPolicy,
    monitor: QosMonitor,
    mitigation: MitigationManager,
    telemetry: HypervisorTelemetry,
    suite: WorkloadSuite,
    running: BTreeMap<u64, VmRecord>,
    rejected: u64,
    /// Incremental mirror of the slice count summed over
    /// `running[*].slices`, so [`PondControlPlane::pinned_pool`] — and with
    /// it the per-event conservation check — is O(1) instead of walking
    /// every running VM. Borrowed slices are *not* counted here: they sit
    /// in the lender's ledger (its `lent_slices`), never the borrower's.
    pinned_slices: u64,
    /// Slices of this plane's own pool currently lent to VMs homed on other
    /// planes. They are assigned in the pool state (under synthetic cross-pod
    /// port hosts) but appear in no local running record, so conservation
    /// reads `free + pending + pinned + lent == live` here.
    lent_slices: u64,
    /// Incremental mirror of the slice count summed over
    /// `running[*].borrowed` — this plane's VMs' footprint on *other*
    /// groups' pools. Pure bookkeeping for the fleet-level cross-check
    /// (`sum of borrowed-from-L over planes == L.lent_slices`); it does not
    /// enter the local conservation identity.
    borrowed_slices: u64,
    /// Hosts ordered by free local DRAM, lowest index first at equal free
    /// (via `Reverse`), so placement finds the most-free host in O(log
    /// hosts) instead of scanning them all. Mirrors the ordering of the
    /// fleet-wide `host_selection_key` with no core model.
    free_index: BTreeSet<(Bytes, Reverse<usize>)>,
    /// Hosts whose memory accounting changed since the last
    /// [`PondControlPlane::drain_touched`], deduplicated via `host_touched`.
    touched_hosts: Vec<usize>,
    host_touched: Vec<bool>,
    /// Whether the pool's assigned capacity may have grown since the last
    /// [`PondControlPlane::drain_touched`].
    pool_dirty: bool,
}

impl PondControlPlane {
    /// Builds a control plane: trains the prediction models on
    /// `training_trace` and provisions the hosts and pool.
    ///
    /// # Errors
    ///
    /// Returns a hardware error if the pool topology is unsupported.
    pub fn new(
        training_trace: &ClusterTrace,
        config: ControlPlaneConfig,
        seed: u64,
    ) -> Result<Self, PondError> {
        let policy = PondPolicy::train(training_trace, &config.policy, seed);
        Self::with_policy(config, policy)
    }

    /// Builds a control plane around an already-trained policy. Multi-pool
    /// fleets ([`crate::multipool`]) train the models once and clone the
    /// policy into every group, instead of retraining per pool.
    ///
    /// # Errors
    ///
    /// Returns a hardware error if the pool topology is unsupported.
    pub fn with_policy(
        config: ControlPlaneConfig,
        mut policy: PondPolicy,
    ) -> Result<Self, PondError> {
        policy.set_history_window(config.history_window);
        let topology = PoolTopology::pond_with_capacity(config.pool_sockets, config.pool_capacity)?;
        let monitor = QosMonitor::new(policy.sensitivity_model().clone());
        let hosts: Vec<HostMemory> = (0..config.hosts)
            .map(|_| HostMemory::new(config.local_dram_per_host, config.hypervisor_private))
            .collect();
        let free_index =
            hosts.iter().enumerate().map(|(i, h)| (h.local_free(), Reverse(i))).collect();
        let host_touched = vec![false; hosts.len()];
        Ok(PondControlPlane {
            mitigation: MitigationManager::new(config.mitigation_budget),
            pool: PondPoolManager::new(&topology),
            telemetry: HypervisorTelemetry::default(),
            suite: WorkloadSuite::standard(),
            hosts,
            policy,
            monitor,
            running: BTreeMap::new(),
            rejected: 0,
            pinned_slices: 0,
            lent_slices: 0,
            borrowed_slices: 0,
            free_index,
            touched_hosts: Vec::new(),
            host_touched,
            pool_dirty: false,
            config,
        })
    }

    /// Re-files a host in the free-DRAM index after its accounting changed
    /// (from `old_free` to its current `local_free`) and records it for
    /// [`PondControlPlane::drain_touched`].
    fn touch_host(&mut self, index: usize, old_free: Bytes) {
        let new_free = self.hosts[index].local_free();
        if new_free != old_free {
            self.free_index.remove(&(old_free, Reverse(index)));
            self.free_index.insert((new_free, Reverse(index)));
        }
        if !self.host_touched[index] {
            self.host_touched[index] = true;
            self.touched_hosts.push(index);
        }
    }

    /// Visits every host whose memory accounting changed since the last call
    /// and clears the set — the fleet replays' incremental peak tracking:
    /// sampling only touched hosts at event boundaries is bit-identical to
    /// sampling every host, because an untouched host would just repeat its
    /// previous sample into the running maximum.
    ///
    /// Returns whether the pool's assigned capacity may have grown since the
    /// last call (it only grows on placement), i.e. whether the caller needs
    /// to resample the pool peak.
    pub fn drain_touched(&mut self, mut visit: impl FnMut(usize, &HostMemory)) -> bool {
        for &index in &self.touched_hosts {
            self.host_touched[index] = false;
            visit(index, &self.hosts[index]);
        }
        self.touched_hosts.clear();
        std::mem::take(&mut self.pool_dirty)
    }

    /// The host with the most free local DRAM (lowest index at ties) and
    /// that amount, in O(log hosts). `None` only for a zero-host plane.
    pub fn most_free_host(&self) -> Option<(usize, Bytes)> {
        self.free_index.last().map(|&(free, Reverse(index))| (index, free))
    }

    /// The host with the *least* free local DRAM that still fits `memory`
    /// (lowest index at ties), in O(log hosts) — the tightest-fit probe.
    pub fn tightest_feasible_host(&self, memory: Bytes) -> Option<(usize, Bytes)> {
        self.free_index
            .range((memory, Reverse(usize::MAX))..)
            .next()
            .map(|&(free, Reverse(index))| (index, free))
    }

    /// The configuration in use.
    pub fn config(&self) -> &ControlPlaneConfig {
        &self.config
    }

    /// Number of VMs currently running.
    pub fn running_vms(&self) -> usize {
        self.running.len()
    }

    /// Number of placement calls that failed with `NoFeasibleHost` or
    /// `PoolExhausted`. A multi-pool driver that runs the fallback ladder
    /// through the staged entry points counts each failed stage, so a VM
    /// that eventually lands elsewhere may still appear here.
    pub fn rejected_vms(&self) -> u64 {
        self.rejected
    }

    /// The pool manager (for inspection).
    pub fn pool(&self) -> &PondPoolManager {
        &self.pool
    }

    /// The trained policy (for inspection).
    pub fn policy(&self) -> &PondPolicy {
        &self.policy
    }

    /// The hosts (for inspection).
    pub fn hosts(&self) -> &[HostMemory] {
        &self.hosts
    }

    /// Number of mitigations performed so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigation.mitigated()
    }

    /// Handles a VM request end to end: prediction → host selection → pool
    /// onlining → memory pinning → zNUMA exposure.
    ///
    /// This is the two-stage ladder of the production scheduler: first a
    /// pooled placement ([`PondControlPlane::handle_request_pooled`]); if the
    /// pool cannot cover the predicted share and
    /// [`ControlPlaneConfig::fallback_all_local`] is on, an all-local
    /// placement ([`PondControlPlane::handle_request_all_local`]). Multi-pool
    /// fleets call the two stages explicitly, inserting cross-group attempts
    /// between them.
    ///
    /// # Errors
    ///
    /// * [`PondError::NoFeasibleHost`] when no host has enough local DRAM.
    /// * [`PondError::PoolExhausted`] when the pool buffer cannot cover the
    ///   pool share and the all-local fallback is off.
    pub fn handle_request(
        &mut self,
        request: &VmRequest,
        now: Duration,
    ) -> Result<PlacementSummary, PondError> {
        let result = match self.place_pooled(request, now) {
            Err(PondError::PoolExhausted { .. }) if self.config.fallback_all_local => {
                self.place_all_local(request, now)
            }
            other => other,
        };
        self.count_rejection(&result);
        result
    }

    /// Handles a VM request with the Figure 13 prediction pipeline but
    /// *without* the all-local fallback, regardless of
    /// [`ControlPlaneConfig::fallback_all_local`]: a pool that cannot cover
    /// the predicted share fails with [`PondError::PoolExhausted`], letting
    /// a multi-pool scheduler try another group before giving up on pooling.
    ///
    /// # Errors
    ///
    /// * [`PondError::NoFeasibleHost`] when no host has enough local DRAM.
    /// * [`PondError::PoolExhausted`] when the host-reachable pool buffer
    ///   cannot cover the pool share.
    pub fn handle_request_pooled(
        &mut self,
        request: &VmRequest,
        now: Duration,
    ) -> Result<PlacementSummary, PondError> {
        let result = self.place_pooled(request, now);
        self.count_rejection(&result);
        result
    }

    /// Places a VM with all-local memory, bypassing the prediction models
    /// (the last rung of the fallback ladder). The summary reports
    /// `fallback_all_local: true`.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::NoFeasibleHost`] when no host can hold the VM's
    /// full memory locally.
    pub fn handle_request_all_local(
        &mut self,
        request: &VmRequest,
        now: Duration,
    ) -> Result<PlacementSummary, PondError> {
        let result = self.place_all_local(request, now);
        self.count_rejection(&result);
        result
    }

    fn count_rejection(&mut self, result: &Result<PlacementSummary, PondError>) {
        if matches!(
            result,
            Err(PondError::NoFeasibleHost { .. }) | Err(PondError::PoolExhausted { .. })
        ) {
            self.rejected += 1;
        }
    }

    /// Runs the arrival-time half of a pooled placement — release
    /// processing and the Figure 13 prediction pipeline — without touching
    /// any host or pool state. The returned plan can be committed against
    /// this plane's own pool (the ordinary pooled path) or served from a
    /// reachable lender's pool via [`PondControlPlane::lend`] on the lender
    /// and [`PondControlPlane::commit_borrowed`] here.
    ///
    /// The decision path is pure (`try_decide` takes `&self`), so planning
    /// twice for the same request at the same instant returns the same plan
    /// and perturbs nothing.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::Model`] when a prediction model rejects its
    /// feature row.
    pub fn plan_pooled(
        &mut self,
        request: &VmRequest,
        now: Duration,
    ) -> Result<PooledPlan, PondError> {
        // Finish any offlining that has completed so the buffer is current.
        self.pool.process_releases(now);

        // The validating decision path: a feature-schema drift in either
        // model propagates as `PondError::Model` instead of panicking the
        // replay mid sweep.
        let decision = self.policy.try_decide(request)?;
        let raw_pool = match decision {
            PondDecision::FullyPool => request.memory,
            PondDecision::Znuma { pool } => pool,
            PondDecision::AllLocal => Bytes::ZERO,
        };
        let pool = align_pool_memory(request, raw_pool);
        let predicted_untouched = match decision {
            PondDecision::Znuma { .. } => pool,
            _ => Bytes::ZERO,
        };
        Ok(PooledPlan { pool, predicted_untouched })
    }

    fn place_pooled(
        &mut self,
        request: &VmRequest,
        now: Duration,
    ) -> Result<PlacementSummary, PondError> {
        let plan = self.plan_pooled(request, now)?;
        self.place(request, plan.pool, plan.predicted_untouched, false, now)
    }

    fn place_all_local(
        &mut self,
        request: &VmRequest,
        now: Duration,
    ) -> Result<PlacementSummary, PondError> {
        self.pool.process_releases(now);
        self.place(request, Bytes::ZERO, Bytes::ZERO, true, now)
    }

    /// The placement core shared by the pooled and all-local paths: host
    /// selection via the free-DRAM index (hosts here have no core model, so
    /// the fleet-wide `host_selection_key` reduces to most-free-DRAM with a
    /// lowest-index tie-break — exactly the index's order), pool slice
    /// onlining, memory pinning, and zNUMA exposure.
    ///
    /// The pool share arrives already clamped and floored to whole 1 GiB
    /// slices ([`align_pool_memory`]), so host-side byte accounting and EMC
    /// slice ownership stay in lockstep and the decision matches what the
    /// cluster simulator would apply for the same request.
    fn place(
        &mut self,
        request: &VmRequest,
        pool: Bytes,
        predicted_untouched: Bytes,
        fallback_all_local: bool,
        now: Duration,
    ) -> Result<PlacementSummary, PondError> {
        let local = request.memory - pool;
        // The most-free host is feasible iff any host is: taking the index
        // maximum is identical to filtering on `local_free() >= local` and
        // minimizing the selection key over the survivors.
        let Some((host_index, old_free)) = self.most_free_host().filter(|&(_, free)| free >= local)
        else {
            return Err(PondError::NoFeasibleHost { vm: request.id });
        };

        let slices = self.pool.allocate(HostId(host_index as u16), pool, now)?;
        let host = &mut self.hosts[host_index];
        host.online_pool(pool);
        host.pin_vm(VmId(request.id), local, pool)
            .map_err(|e| PondError::HostMemory(e.to_string()))?;
        self.touch_host(host_index, old_free);
        self.pinned_slices += slices.len() as u64;
        // Assigned pool capacity only ever grows here, so this is the one
        // site that forces a pool-peak resample.
        self.pool_dirty = true;

        let workload = self
            .suite
            .at(request.workload_index % self.suite.len())
            .expect("workload index is taken modulo the suite size")
            .clone();
        let vm = VirtualMachine::launch(
            request.id,
            VmConfig { cores: request.cores, memory: request.memory, pool_memory: pool },
            workload,
        );

        let summary = PlacementSummary {
            vm: vm.id(),
            host: host_index,
            local,
            pool,
            has_znuma: !pool.is_zero(),
            fallback_all_local,
            borrowed_from: None,
        };
        self.running.insert(
            request.id,
            VmRecord {
                vm,
                host: host_index,
                slices,
                borrowed: None,
                predicted_untouched,
                customer: request.customer,
                untouched_fraction: request.untouched_fraction,
                workload_index: request.workload_index,
            },
        );
        Ok(summary)
    }

    /// Whether some host still has at least `local` free DRAM — the
    /// host-side feasibility probe the borrow rung runs before asking a
    /// lender for slices, so a lease is never minted for a VM that cannot
    /// be pinned anyway.
    pub fn has_feasible_host(&self, local: Bytes) -> bool {
        self.most_free_host().is_some_and(|(_, free)| free >= local)
    }

    /// Onlines `amount` of this plane's own pool capacity on behalf of a VM
    /// homed on *another* plane — the lender side of a cross-pod borrow.
    /// The slices are attributed to the synthetic cross-pod port
    /// `port_host` ([`cxl_hw::topology::PoolGroupTopology::borrow_port_host`]),
    /// so they consume a real CXL port on this pool exactly like a local
    /// host would, and they are tracked in this plane's lent ledger until
    /// [`PondControlPlane::release_lent`] takes them back.
    ///
    /// `lender` is this plane's group index, recorded in the lease so every
    /// downstream path (departure routing, blast radius, decommission
    /// recall) knows whose pool to settle with.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::PoolExhausted`] when the port-reachable free
    /// buffer cannot cover `amount` — the caller tries the next lender.
    pub fn lend(
        &mut self,
        lender: usize,
        port_host: HostId,
        amount: Bytes,
        now: Duration,
    ) -> Result<SliceLease, PondError> {
        self.pool.process_releases(now);
        let slices = self.pool.allocate(port_host, amount, now)?;
        self.lent_slices += slices.len() as u64;
        // Assigned capacity grew, so the caller must resample this plane's
        // pool peak even though no local VM was placed.
        self.pool_dirty = true;
        Ok(SliceLease { lender, port_host, slices })
    }

    /// Commits a planned placement whose pool share is served by `lease`
    /// (minted by a lender's [`PondControlPlane::lend`]): pins the VM on
    /// the most-free feasible host, onlines the borrowed capacity as its
    /// zNUMA node, and records the lease so departure, mitigation, and
    /// failure paths route the slices back to the lender.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::NoFeasibleHost`] *with the lease* when no host
    /// fits the local share — the caller must hand it back to the lender
    /// via [`PondControlPlane::release_lent`] (probing
    /// [`PondControlPlane::has_feasible_host`] first avoids the round
    /// trip).
    pub fn commit_borrowed(
        &mut self,
        request: &VmRequest,
        plan: PooledPlan,
        lease: SliceLease,
        _now: Duration,
    ) -> Result<PlacementSummary, (PondError, SliceLease)> {
        let pool = plan.pool;
        debug_assert_eq!(pool, lease.capacity(), "the lease must cover exactly the planned share");
        let local = request.memory - pool;
        let Some((host_index, old_free)) = self.most_free_host().filter(|&(_, free)| free >= local)
        else {
            return Err((PondError::NoFeasibleHost { vm: request.id }, lease));
        };

        let host = &mut self.hosts[host_index];
        host.online_pool(pool);
        if let Err(e) = host.pin_vm(VmId(request.id), local, pool) {
            host.offline_pool(pool).expect("onlined just above");
            return Err((PondError::HostMemory(e.to_string()), lease));
        }
        self.touch_host(host_index, old_free);
        // The slices live in the lender's ledger (`lent_slices` there), not
        // in this plane's pinned count; only the borrowed mirror moves.
        self.borrowed_slices += lease.slices.len() as u64;

        let workload = self
            .suite
            .at(request.workload_index % self.suite.len())
            .expect("workload index is taken modulo the suite size")
            .clone();
        let vm = VirtualMachine::launch(
            request.id,
            VmConfig { cores: request.cores, memory: request.memory, pool_memory: pool },
            workload,
        );

        let summary = PlacementSummary {
            vm: vm.id(),
            host: host_index,
            local,
            pool,
            has_znuma: !pool.is_zero(),
            fallback_all_local: false,
            borrowed_from: Some(lease.lender),
        };
        self.running.insert(
            request.id,
            VmRecord {
                vm,
                host: host_index,
                slices: Vec::new(),
                borrowed: Some(lease),
                predicted_untouched: plan.predicted_untouched,
                customer: request.customer,
                untouched_fraction: request.untouched_fraction,
                workload_index: request.workload_index,
            },
        );
        Ok(summary)
    }

    /// Takes a lease's slices back into this plane's pool — the lender side
    /// of a borrowed VM's departure, mitigation, or recall — starting the
    /// same asynchronous offlining an own-pool departure would.
    ///
    /// Returns the offlining completion time (`None` when the lease had no
    /// surviving slices, e.g. after the lender lost the device under them).
    ///
    /// # Errors
    ///
    /// Propagates ownership errors from the hardware layer (a lease from a
    /// different plane's pool).
    pub fn release_lent(
        &mut self,
        lease: SliceLease,
        now: Duration,
    ) -> Result<Option<Duration>, PondError> {
        let slice_count = lease.slices.len() as u64;
        let ready = self.pool.release_async(lease.port_host, lease.slices, now)?;
        self.lent_slices -= slice_count;
        Ok(ready)
    }

    /// Strips slices lost on `lender`'s failed device `emc` from every
    /// lease this plane's VMs borrowed from that group — the cross-pod
    /// blast radius of a lender-pod EMC failure: VMs homed *here* degrade
    /// because a pod over there lost hardware. Returns the affected VMs in
    /// ascending id order, in the same shape as a local failure's blast
    /// radius, so the caller evacuates or kills them identically.
    pub fn strip_borrowed(&mut self, lender: usize, emc: EmcId) -> Vec<AffectedVm> {
        let mut affected = Vec::new();
        for (&id, record) in &mut self.running {
            let Some(lease) = record.borrowed.as_mut() else { continue };
            if lease.lender != lender {
                continue;
            }
            let before = lease.slices.len() as u64;
            lease.slices.retain(|s| s.emc != emc);
            let after = lease.slices.len() as u64;
            if after == before {
                continue;
            }
            self.borrowed_slices -= before - after;
            affected.push(AffectedVm {
                vm: VmId(id),
                pool_before: Bytes::from_gib(before),
                surviving_pool: Bytes::from_gib(after),
            });
        }
        affected
    }

    /// The VMs on this plane holding leases from group `lender`, in
    /// ascending id order with their borrowed footprint — the recall list a
    /// gracefully decommissioning lender must drain before its pool can go
    /// dark: draining a pod means taking back what it lent, not just moving
    /// what it runs.
    pub fn borrowers_of(&self, lender: usize) -> Vec<(VmId, Bytes)> {
        self.running
            .iter()
            .filter_map(|(&id, record)| {
                let lease = record.borrowed.as_ref()?;
                (lease.lender == lender).then(|| (VmId(id), lease.capacity()))
            })
            .collect()
    }

    /// Total slices this plane's VMs currently borrow from group `lender`,
    /// re-derived from the running records — the full-scan half of the
    /// fleet-level lent/borrowed cross-check.
    pub fn borrowed_from(&self, lender: usize) -> u64 {
        self.running
            .values()
            .filter_map(|record| record.borrowed.as_ref())
            .filter(|lease| lease.lender == lender)
            .map(|lease| lease.slices.len() as u64)
            .sum()
    }

    /// Capacity of this plane's own pool currently lent to VMs homed on
    /// other planes.
    pub fn lent_pool(&self) -> Bytes {
        Bytes::from_gib(self.lent_slices)
    }

    /// Capacity this plane's VMs currently hold on *other* groups' pools.
    pub fn borrowed_pool(&self) -> Bytes {
        Bytes::from_gib(self.borrowed_slices)
    }

    /// Handles a VM departure: unpins host memory, starts the asynchronous
    /// release of its pool slices, and feeds the VM's measured untouched
    /// memory back into the policy's customer history.
    ///
    /// Returns the time at which the slice offlining completes (`None` for
    /// all-local VMs); event-driven callers schedule a release event there.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::HostMemory`] when the VM is unknown.
    pub fn handle_departure(
        &mut self,
        vm: VmId,
        now: Duration,
    ) -> Result<Option<Duration>, PondError> {
        let outcome = self.handle_departure_split(vm, now)?;
        assert!(
            outcome.lease.is_none(),
            "{vm} held a borrowed lease: depart it via handle_departure_split \
             so the slices can be routed back to the lender"
        );
        Ok(outcome.release_ready)
    }

    /// [`PondControlPlane::handle_departure`] for fleets with cross-pod
    /// borrowing: additionally hands back the VM's borrowed lease (if any)
    /// so the caller can route it to the lender's
    /// [`PondControlPlane::release_lent`].
    ///
    /// # Errors
    ///
    /// Returns [`PondError::HostMemory`] when the VM is unknown.
    pub fn handle_departure_split(
        &mut self,
        vm: VmId,
        now: Duration,
    ) -> Result<DepartureOutcome, PondError> {
        let (outcome, record) = self.remove_vm(vm, now)?;
        // Feed the observed outcome back into the policy's history: the VM's
        // lifetime access-bit scans are the ground truth for this customer.
        self.policy.record_completion(
            record.customer,
            record.untouched_fraction,
            record.workload_index,
        );
        Ok(outcome)
    }

    /// The teardown core shared by departures and evacuations: unpins the
    /// host memory, starts the asynchronous release of the VM's *own*
    /// slices, and returns any borrowed lease untouched for the caller to
    /// route. Does not feed the policy history — the callers decide whether
    /// the VM completed or merely moved.
    fn remove_vm(
        &mut self,
        vm: VmId,
        now: Duration,
    ) -> Result<(DepartureOutcome, VmRecord), PondError> {
        let mut record = self
            .running
            .remove(&vm.0)
            .ok_or_else(|| PondError::HostMemory(format!("{vm} is not running")))?;
        let old_free = self.hosts[record.host].local_free();
        let host = &mut self.hosts[record.host];
        let allocation = host.unpin_vm(vm).map_err(|e| PondError::HostMemory(e.to_string()))?;
        host.offline_pool(allocation.pool).map_err(|e| PondError::HostMemory(e.to_string()))?;
        let slices = std::mem::take(&mut record.slices);
        let slice_count = slices.len() as u64;
        let ready = self.pool.release_async(HostId(record.host as u16), slices, now)?;
        self.pinned_slices -= slice_count;
        let lease = record.borrowed.take();
        if let Some(lease) = &lease {
            self.borrowed_slices -= lease.slices.len() as u64;
        }
        self.touch_host(record.host, old_free);
        Ok((DepartureOutcome { release_ready: ready, lease }, record))
    }

    /// Evacuates a running VM off this plane (the failure-drill migration
    /// path): unpins its host memory, starts the asynchronous release of its
    /// *surviving* pool slices, and forgets the VM — without feeding the
    /// policy's completion history, because the VM is moving, not done.
    ///
    /// Returns the release-completion time (`None` when the VM held no live
    /// slices); event-driven callers schedule a release event there and then
    /// re-place the VM on the destination plane.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::HostMemory`] when the VM is unknown.
    pub fn evacuate_vm(&mut self, vm: VmId, now: Duration) -> Result<Option<Duration>, PondError> {
        let outcome = self.evacuate_vm_split(vm, now)?;
        assert!(
            outcome.lease.is_none(),
            "{vm} held a borrowed lease: evacuate it via evacuate_vm_split \
             so the slices can be routed back to the lender"
        );
        Ok(outcome.release_ready)
    }

    /// [`PondControlPlane::evacuate_vm`] for fleets with cross-pod
    /// borrowing: additionally hands back the VM's borrowed lease (if any)
    /// for the caller to route to the lender's
    /// [`PondControlPlane::release_lent`]. Like `evacuate_vm`, it records
    /// no completion — the VM is moving, not done.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::HostMemory`] when the VM is unknown.
    pub fn evacuate_vm_split(
        &mut self,
        vm: VmId,
        now: Duration,
    ) -> Result<DepartureOutcome, PondError> {
        let (outcome, _record) = self.remove_vm(vm, now)?;
        Ok(outcome)
    }

    /// Handles the failure of one EMC behind this plane's pool at time
    /// `now`: computes the blast radius over the running VMs, tears down the
    /// device (slices, in-flight releases, ports — see
    /// [`PondPoolManager::fail_emc`]), and strips the dead slices from every
    /// affected VM's bookkeeping so the conservation invariant keeps holding
    /// against the shrunken live capacity.
    ///
    /// The affected VMs are left running — they lost pool memory, not their
    /// host — and are returned with their pre-failure pool footprint so the
    /// caller (the multi-pool replay's evacuation planner) can migrate or
    /// kill each one.
    ///
    /// # Errors
    ///
    /// Propagates [`cxl_hw::CxlError::UnknownEmc`] for unknown devices.
    pub fn handle_emc_failure(
        &mut self,
        emc: EmcId,
        _now: Duration,
    ) -> Result<EmcFailureOutcome, PondError> {
        // The Pool Manager tears the device down (and prunes its own
        // in-flight releases); the blast radius then falls out of the running
        // records directly — a VM is affected iff it holds a slice on the
        // dead device — and the dead slices are stripped in the same walk.
        let report = self.pool.fail_emc(emc)?;
        // Slices assigned to synthetic cross-pod ports (host ids beyond this
        // plane's own hosts) were lent out: their loss leaves the lent
        // ledger here, and the borrowers' leases shed them when the caller
        // runs `strip_borrowed` against the other planes.
        let lent_slices_lost =
            report.lost.iter().filter(|(host, _)| host.0 >= self.config.hosts).count() as u64;
        self.lent_slices -= lent_slices_lost;
        let mut affected = Vec::new();
        for (&id, record) in &mut self.running {
            let before = record.slices.len() as u64;
            record.slices.retain(|s| s.emc != emc);
            let after = record.slices.len() as u64;
            if after == before {
                continue;
            }
            self.pinned_slices -= before - after;
            affected.push(AffectedVm {
                vm: VmId(id),
                pool_before: Bytes::from_gib(before),
                surviving_pool: Bytes::from_gib(after),
            });
        }
        Ok(EmcFailureOutcome {
            emc,
            affected,
            slices_lost: report.lost.len() as u64,
            lent_slices_lost,
        })
    }

    /// Repairs (replaces) a failed EMC behind this plane's pool, returning
    /// the capacity that rejoined the free buffer ([`Bytes::ZERO`] for a
    /// healthy device). The device comes back empty — its assignments were
    /// torn down at failure time and its mid-offlining slices pruned — so
    /// free and live capacity grow by the same amount and
    /// [`PondControlPlane::assert_pool_conserved`] keeps holding across the
    /// repair.
    ///
    /// # Errors
    ///
    /// Propagates [`cxl_hw::CxlError::UnknownEmc`] for unknown devices.
    pub fn repair_emc(&mut self, emc: EmcId) -> Result<Bytes, PondError> {
        self.pool.restore_emc(emc)
    }

    /// Attaches `capacity` of new EMC hardware to this plane's pool live
    /// (a 16-socket Pond device racked into the pool), returning the new
    /// device's id. The capacity is immediately free for placements.
    pub fn expand_pool(&mut self, capacity: Bytes) -> EmcId {
        self.pool.attach_emc(EmcConfig::pond_16_socket(capacity))
    }

    /// The running VMs in ascending id order with their pinned pool
    /// footprint (zero for all-local VMs; borrowed slices count — they are
    /// pool-resident bytes an evacuation must copy, wherever they live) —
    /// the drain order of a graceful decommission and the candidate list of
    /// a proactive rebalance pass.
    pub fn running_vm_footprints(&self) -> Vec<(VmId, Bytes)> {
        self.running
            .iter()
            .map(|(&id, record)| {
                let borrowed =
                    record.borrowed.as_ref().map_or(0, |lease| lease.slices.len() as u64);
                (VmId(id), Bytes::from_gib(record.slices.len() as u64 + borrowed))
            })
            .collect()
    }

    /// Runs one QoS-monitoring pass over every running VM and applies
    /// mitigations within the budget.
    ///
    /// Each mitigation copies the VM's pool memory to local DRAM (50 ms per
    /// GiB charged to the report's `copy_time`) and only then starts the
    /// asynchronous release of the freed slices, so offlining begins at
    /// `now + copy_duration` on the event timeline.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::Model`] when the sensitivity model rejects its
    /// feature row (schema drift between training and serving) — the same
    /// validating path the arrival-time decision takes, so one malformed
    /// row cannot panic a replay out of a QoS pass.
    pub fn run_qos_pass(&mut self, now: Duration) -> Result<QosPassReport, PondError> {
        let mut pass = QosPassReport::default();
        let vm_ids: Vec<u64> = self.running.keys().copied().collect();
        for id in vm_ids {
            let record = self.running.get_mut(&id).expect("id from key list");
            let counters = self.telemetry.pmu.sample(record.vm.workload(), id);
            let observation = VmObservation {
                counters,
                pool_memory: record.vm.pool_memory(),
                predicted_untouched: record.predicted_untouched,
                observed_untouched: record.vm.untouched_memory(),
            };
            let host_index = record.host;
            let old_free = self.hosts[host_index].local_free();
            let host = &mut self.hosts[host_index];
            let mitigated = if let Some(report) = self
                .mitigation
                .try_process(&self.monitor, &observation, host, &mut record.vm)
                .map_err(|e| PondError::Model { detail: e.to_string() })?
            {
                // The freed pool capacity goes back to the Pool Manager once
                // the pool→local copy has finished.
                host.offline_pool(report.moved).expect("mitigation freed exactly this much");
                let ready = if let Some(lease) = record.borrowed.take() {
                    // Borrowed slices go back to the lender, not this pool:
                    // hand the lease to the caller for routing once the
                    // copy completes.
                    self.borrowed_slices -= lease.slices.len() as u64;
                    pass.borrowed_reclaims.push(BorrowedReclaim {
                        vm: VmId(id),
                        copy_done: now + report.copy_duration,
                        lease,
                    });
                    None
                } else {
                    let slices = std::mem::take(&mut record.slices);
                    self.pinned_slices -= slices.len() as u64;
                    self.pool
                        .release_async(
                            HostId(host_index as u16),
                            slices,
                            now + report.copy_duration,
                        )
                        .expect("slices were allocated by this manager")
                };
                pass.mitigated.push(VmMitigation {
                    vm: VmId(id),
                    moved: report.moved,
                    copy_done: now + report.copy_duration,
                    release_ready: ready,
                });
                record.predicted_untouched = Bytes::ZERO;
                pass.copy_time += report.copy_duration;
                pass.reconfigured += 1;
                true
            } else {
                false
            };
            if mitigated {
                self.touch_host(host_index, old_free);
            }
        }
        Ok(pass)
    }

    /// Completes every pending slice release whose offlining has finished by
    /// `now`, returning the capacity that came back to the buffer. The
    /// event-driven fleet replay calls this when a release event fires.
    pub fn complete_releases(&mut self, now: Duration) -> Bytes {
        self.pool.process_releases(now)
    }

    /// Pool capacity currently pinned by running VMs, in whole slices.
    /// Served from the incremental counter in O(1);
    /// [`PondControlPlane::assert_pool_conserved_full`] cross-checks the
    /// counter against the running records.
    pub fn pinned_pool(&self) -> Bytes {
        Bytes::from_gib(self.pinned_slices)
    }

    /// Checks the pool-accounting conservation invariant: every slice of
    /// *live* pool capacity is exactly one of free-in-buffer, pinned by a
    /// running VM, mid-offlining, or lent to a VM homed on another plane —
    /// nothing is leaked or double-counted. The denominator is
    /// [`cxl_hw::pool::PoolState::live_capacity`], so the invariant keeps
    /// holding through EMC failures: a failed device's capacity leaves the
    /// ledger together with its slices (lent ones included).
    ///
    /// The check runs on the O(1) incremental counters, so the fleet replays
    /// can afford it after every event (in debug builds); the full scan that
    /// re-derives those counters from the per-VM and per-release records is
    /// [`PondControlPlane::assert_pool_conserved_full`], demoted to snapshot
    /// ticks and end of replay.
    ///
    /// # Panics
    ///
    /// Panics when the invariant is violated. The fleet replays debug-assert
    /// this after every event.
    pub fn assert_pool_conserved(&self) {
        let free = self.pool.available();
        let pending = self.pool.pending_release();
        let pinned = self.pinned_pool();
        let lent = self.lent_pool();
        let live = self.pool.pool().live_capacity();
        assert_eq!(
            free + pending + pinned + lent,
            live,
            "pool accounting must conserve capacity: free {free} + offlining {pending} \
             + pinned {pinned} + lent {lent} != live {live}"
        );
        assert_eq!(
            self.pool.pool().assigned_capacity(),
            pending + pinned + lent,
            "assigned capacity must equal pinned plus mid-release plus lent slices"
        );
    }

    /// The full conservation scan: re-derives the pinned and mid-release
    /// slice counts from the per-VM and per-release records, cross-checks
    /// the incremental counters (and the free-DRAM index) against them, and
    /// then checks the conservation invariant itself. The fleet replays run
    /// this at snapshot ticks and at end of replay; the O(1)
    /// [`PondControlPlane::assert_pool_conserved`] covers every other event.
    ///
    /// # Panics
    ///
    /// Panics when a counter or index drifted from the records it mirrors,
    /// or when the conservation invariant is violated.
    pub fn assert_pool_conserved_full(&self) {
        let pinned: u64 = self.running.values().map(|r| r.slices.len() as u64).sum();
        assert_eq!(
            Bytes::from_gib(pinned),
            self.pinned_pool(),
            "pinned-slice counter drifted from the running records"
        );
        let borrowed: u64 = self
            .running
            .values()
            .filter_map(|r| r.borrowed.as_ref())
            .map(|lease| lease.slices.len() as u64)
            .sum();
        assert_eq!(
            Bytes::from_gib(borrowed),
            self.borrowed_pool(),
            "borrowed-slice counter drifted from the running records' leases"
        );
        self.pool.assert_pending_conserved();
        assert_eq!(self.free_index.len(), self.hosts.len());
        for (index, host) in self.hosts.iter().enumerate() {
            assert!(
                self.free_index.contains(&(host.local_free(), Reverse(index))),
                "free-DRAM index drifted for host {index}: {} not filed",
                host.local_free()
            );
        }
        self.assert_pool_conserved();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};

    fn setup() -> (ClusterTrace, PondControlPlane) {
        let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
        let plane = PondControlPlane::new(&trace, ControlPlaneConfig::default(), 5).unwrap();
        (trace, plane)
    }

    #[test]
    fn requests_are_placed_and_depart_cleanly() {
        let (trace, mut plane) = setup();
        let mut placed = Vec::new();
        for request in trace.requests.iter().take(40) {
            match plane.handle_request(request, Duration::from_secs(request.arrival)) {
                Ok(summary) => {
                    assert!(summary.local + summary.pool == request.memory);
                    assert_eq!(summary.has_znuma, !summary.pool.is_zero());
                    placed.push(summary.vm);
                }
                Err(PondError::NoFeasibleHost { .. }) | Err(PondError::PoolExhausted { .. }) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(!placed.is_empty());
        assert_eq!(plane.running_vms(), placed.len());
        // Departure returns capacity.
        let before = plane.pool().available();
        for vm in &placed {
            plane.handle_departure(*vm, Duration::from_secs(1_000_000)).unwrap();
        }
        assert_eq!(plane.running_vms(), 0);
        // After the offlining delay, the buffer is at least as full as before.
        plane.pool().pending_release();
        plane.pool.process_releases(Duration::from_secs(2_000_000));
        assert!(plane.pool().available() >= before);
    }

    #[test]
    fn unknown_departure_is_an_error() {
        let (_, mut plane) = setup();
        assert!(plane.handle_departure(VmId(12345), Duration::ZERO).is_err());
    }

    #[test]
    fn qos_pass_runs_without_panicking_and_respects_the_budget() {
        let (trace, mut plane) = setup();
        for request in trace.requests.iter().take(60) {
            let _ = plane.handle_request(request, Duration::from_secs(request.arrival));
        }
        let running_before = plane.running_vms();
        let pass = plane.run_qos_pass(Duration::from_secs(3600)).unwrap();
        assert!(pass.reconfigured as usize <= running_before);
        assert_eq!(plane.mitigations(), pass.reconfigured);
        // Every mitigation charges its copy time and starts one release.
        assert_eq!(pass.mitigated.len() as u64, pass.reconfigured);
        for mitigation in &pass.mitigated {
            assert!(mitigation.moved > Bytes::ZERO);
            assert!(mitigation.release_ready.is_some());
        }
        assert_eq!(pass.copy_time.is_zero(), pass.reconfigured == 0);
        // Mitigated VMs stay running, just with all-local memory.
        assert_eq!(plane.running_vms(), running_before);
        plane.assert_pool_conserved();
    }

    #[test]
    fn pool_exhaustion_is_reported() {
        let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
        let config = ControlPlaneConfig { pool_capacity: Bytes::from_gib(2), ..Default::default() };
        let mut plane = PondControlPlane::new(&trace, config, 6).unwrap();
        let mut exhausted = false;
        for request in trace.requests.iter().take(200) {
            if let Err(PondError::PoolExhausted { .. }) =
                plane.handle_request(request, Duration::from_secs(request.arrival))
            {
                exhausted = true;
                break;
            }
        }
        assert!(exhausted, "a 2 GiB pool must run out");
    }

    #[test]
    fn exhaustion_falls_back_to_all_local_when_enabled() {
        let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
        let config = ControlPlaneConfig {
            pool_capacity: Bytes::from_gib(2),
            fallback_all_local: true,
            ..Default::default()
        };
        let mut plane = PondControlPlane::new(&trace, config, 6).unwrap();
        let mut fell_back = 0;
        for request in trace.requests.iter().take(200) {
            match plane.handle_request(request, Duration::from_secs(request.arrival)) {
                Ok(summary) => {
                    if summary.fallback_all_local {
                        assert_eq!(summary.pool, Bytes::ZERO);
                        assert_eq!(summary.local, request.memory);
                        assert!(!summary.has_znuma);
                        fell_back += 1;
                    }
                }
                Err(PondError::NoFeasibleHost { .. }) => {}
                Err(other) => panic!("fallback must prevent pool exhaustion: {other}"),
            }
            plane.assert_pool_conserved();
        }
        assert!(fell_back > 0, "a 2 GiB pool must force fallbacks");
    }

    #[test]
    fn emc_failure_reports_blast_radius_and_keeps_conservation() {
        let (trace, mut plane) = setup();
        let mut placed = Vec::new();
        for request in trace.requests.iter().take(60) {
            if let Ok(summary) = plane.handle_request(request, Duration::from_secs(request.arrival))
            {
                placed.push(summary);
            }
        }
        let pooled: Vec<_> = placed.iter().filter(|s| !s.pool.is_zero()).collect();
        assert!(!pooled.is_empty(), "the default plane must pool something");
        let running_before = plane.running_vms();

        // The default 16-socket pool has one EMC: failing it hits exactly
        // the pooled VMs.
        let now = Duration::from_secs(1_000);
        let outcome = plane.handle_emc_failure(EmcId(0), now).unwrap();
        assert_eq!(outcome.affected.len(), pooled.len());
        assert!(outcome.slices_lost > 0);
        for affected in &outcome.affected {
            assert!(affected.pool_before > Bytes::ZERO);
            // One EMC means nothing survives the failure.
            assert_eq!(affected.surviving_pool, Bytes::ZERO);
        }
        // Affected VMs keep running (they lost memory, not their host), the
        // pool's live capacity is gone, and conservation holds against it.
        assert_eq!(plane.running_vms(), running_before);
        assert_eq!(plane.pool().pool().live_capacity(), Bytes::ZERO);
        assert_eq!(plane.pinned_pool(), Bytes::ZERO);
        plane.assert_pool_conserved();

        // Evacuating an affected VM unpins its host memory; with no live
        // slices left there is nothing to release.
        let vm = outcome.affected[0].vm;
        let ready = plane.evacuate_vm(vm, now).unwrap();
        assert_eq!(ready, None);
        assert_eq!(plane.running_vms(), running_before - 1);
        assert!(plane.evacuate_vm(vm, now).is_err(), "an evacuated VM is gone");
        plane.assert_pool_conserved();
        // A failed pool serves no further pooled placements, but all-local
        // re-homes still work.
        assert!(plane.handle_request_all_local(&trace.requests[0], now).is_ok());
    }

    #[test]
    fn evacuation_releases_surviving_slices_asynchronously() {
        let (trace, mut plane) = setup();
        let mut pooled_vm = None;
        for request in trace.requests.iter().take(60) {
            if let Ok(summary) = plane.handle_request(request, Duration::from_secs(request.arrival))
            {
                if !summary.pool.is_zero() {
                    pooled_vm = Some((summary.vm, summary.pool));
                    break;
                }
            }
        }
        let (vm, pool) = pooled_vm.expect("a pooled placement");
        let now = Duration::from_secs(500);
        let before = plane.pool().pending_release();
        let ready = plane.evacuate_vm(vm, now).unwrap().expect("live slices must offline");
        assert!(ready > now, "offlining takes 10-100 ms/GiB");
        assert_eq!(plane.pool().pending_release(), before + pool);
        plane.assert_pool_conserved();
        plane.complete_releases(ready);
        assert_eq!(plane.pool().pending_release(), Bytes::ZERO);
        plane.assert_pool_conserved();
    }

    #[test]
    fn a_drained_vm_that_departs_normally_records_exactly_one_completion() {
        // The drain-vs-kill feedback contract: `evacuate_vm` deliberately
        // skips `record_completion` (correct for kills — the VM never
        // finished), but a VM drained off a decommissioning group and
        // re-placed elsewhere is still running, and when it later departs
        // normally its completion must feed the policy's customer history
        // exactly once — not zero times (the drain ate it) and not twice
        // (both planes recorded it).
        let (trace, mut source) = setup();
        let mut dest =
            PondControlPlane::with_policy(source.config().clone(), source.policy().clone())
                .unwrap();

        let request = trace
            .requests
            .iter()
            .find(|r| {
                source
                    .handle_request(r, Duration::from_secs(r.arrival))
                    .is_ok_and(|s| s.pool > Bytes::ZERO)
            })
            .expect("a pooled placement");
        let customer = request.customer;
        let before_source = source.policy().history().count(customer);
        let before_dest = dest.policy().history().count(customer);

        let now = Duration::from_secs(1_000);
        source.evacuate_vm(VmId(request.id), now).unwrap();
        assert_eq!(
            source.policy().history().count(customer),
            before_source,
            "a drain is a move, not a completion"
        );

        dest.handle_request(request, now).unwrap();
        assert_eq!(
            dest.policy().history().count(customer),
            before_dest,
            "placement records nothing"
        );
        dest.handle_departure(VmId(request.id), Duration::from_secs(2_000)).unwrap();
        assert_eq!(
            dest.policy().history().count(customer),
            before_dest + 1,
            "the normal departure after a drain records exactly one completion"
        );
        source.assert_pool_conserved();
        dest.assert_pool_conserved();
    }

    #[test]
    fn emc_repair_restores_capacity_and_expansion_grows_it() {
        let (trace, mut plane) = setup();
        for request in trace.requests.iter().take(40) {
            let _ = plane.handle_request(request, Duration::from_secs(request.arrival));
        }
        let live_before = plane.pool().pool().live_capacity();
        let now = Duration::from_secs(1_000);
        plane.handle_emc_failure(EmcId(0), now).unwrap();
        assert_eq!(plane.pool().pool().live_capacity(), Bytes::ZERO);
        plane.assert_pool_conserved();

        let restored = plane.repair_emc(EmcId(0)).unwrap();
        assert_eq!(restored, live_before, "the replacement restores exactly live_capacity");
        assert_eq!(plane.pool().pool().live_capacity(), live_before);
        assert_eq!(plane.pool().available(), live_before, "the device comes back empty");
        plane.assert_pool_conserved();

        let id = plane.expand_pool(Bytes::from_gib(64));
        assert_ne!(id, EmcId(0));
        assert_eq!(plane.pool().pool().live_capacity(), live_before + Bytes::from_gib(64));
        plane.assert_pool_conserved();
    }

    #[test]
    fn pool_decisions_are_slice_aligned() {
        let (trace, mut plane) = setup();
        for request in trace.requests.iter().take(60) {
            if let Ok(summary) = plane.handle_request(request, Duration::from_secs(request.arrival))
            {
                assert_eq!(
                    summary.pool,
                    Bytes::from_gib(summary.pool.slices_floor()),
                    "pool shares are whole 1 GiB slices"
                );
            }
        }
    }
}
