//! Combining the two prediction models — Eq. (1) and Figure 20.
//!
//! Pond exposes two knobs: the false-positive budget of the latency
//! insensitivity model (FP) and the overprediction budget of the
//! untouched-memory model (OP). Given a performance degradation margin (PDM)
//! and a target fraction of VMs that must stay within it (TP), Pond solves
//!
//! ```text
//! maximize   LI + UM
//! subject to FP + OP ≤ 100 − TP
//! ```
//!
//! where LI is the fraction of VMs marked latency-insensitive (placed fully
//! on the pool) and UM the average untouched memory placed on the pool for
//! the rest.

use crate::untouched::UntouchedEvalPoint;
use pond_ml::eval::OperatingPoint;
use serde::{Deserialize, Serialize};

/// Configuration of the combined model: the QoS target it must respect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinedModelConfig {
    /// Performance degradation margin (e.g. 0.05).
    pub pdm: f64,
    /// Target fraction of VMs that must stay within the PDM (e.g. 0.98).
    pub tp: f64,
}

impl Default for CombinedModelConfig {
    fn default() -> Self {
        CombinedModelConfig { pdm: 0.05, tp: 0.98 }
    }
}

impl CombinedModelConfig {
    /// The total misprediction budget `100 − TP`, as a fraction.
    pub fn budget(&self) -> f64 {
        (1.0 - self.tp).max(0.0)
    }
}

/// A candidate operating point of the untouched-memory model: the quantile it
/// was trained at plus its measured trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UntouchedCandidate {
    /// Quantile the model predicts.
    pub quantile: f64,
    /// Measured average-untouched / overprediction trade-off.
    pub point: UntouchedEvalPoint,
}

/// The chosen combination of operating points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinedChoice {
    /// Operating point of the sensitivity model (threshold, LI, FP).
    pub sensitivity: OperatingPoint,
    /// Operating point of the untouched-memory model.
    pub untouched: UntouchedCandidate,
}

impl CombinedChoice {
    /// The paper's objective value `LI + UM`.
    pub fn objective(&self) -> f64 {
        self.sensitivity.positive_fraction + self.untouched.point.avg_untouched_fraction
    }

    /// Expected share of VM memory on the pool: LI VMs contribute their whole
    /// memory, the rest contribute their untouched share.
    pub fn expected_pool_share(&self) -> f64 {
        let li = self.sensitivity.positive_fraction;
        li + (1.0 - li) * self.untouched.point.avg_untouched_fraction
    }

    /// Expected fraction of VMs that will exceed the PDM (scheduling
    /// mispredictions): false positives of the sensitivity model plus
    /// overpredictions of the untouched model among the remaining VMs.
    pub fn expected_mispredictions(&self) -> f64 {
        let li = self.sensitivity.positive_fraction;
        self.sensitivity.false_positive_fraction
            + (1.0 - li) * self.untouched.point.overprediction_rate
    }

    /// The constraint value `FP + OP` used in Eq. (1).
    pub fn constraint_value(&self) -> f64 {
        self.sensitivity.false_positive_fraction + self.untouched.point.overprediction_rate
    }
}

/// The combined model: the solved choice for a given configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinedModel {
    /// The configuration that was solved for.
    pub config: CombinedModelConfig,
    /// The chosen operating points.
    pub choice: CombinedChoice,
}

impl CombinedModel {
    /// Solves Eq. (1) by exhaustive search over the candidate operating
    /// points of both models. Returns `None` when no combination satisfies
    /// the budget (which can only happen if even the most conservative
    /// candidates mispredict too much).
    pub fn solve(
        config: CombinedModelConfig,
        sensitivity_points: &[OperatingPoint],
        untouched_candidates: &[UntouchedCandidate],
    ) -> Option<Self> {
        let mut best: Option<CombinedChoice> = None;
        for s in sensitivity_points {
            for u in untouched_candidates {
                let choice = CombinedChoice { sensitivity: *s, untouched: *u };
                if choice.constraint_value() > config.budget() + 1e-12 {
                    continue;
                }
                if best.is_none_or(|b| choice.objective() > b.objective()) {
                    best = Some(choice);
                }
            }
        }
        best.map(|choice| CombinedModel { config, choice })
    }

    /// Sweeps the misprediction budget and reports, for each budget, the pool
    /// share achievable within it — the trade-off plotted in Figure 20.
    pub fn tradeoff_curve(
        sensitivity_points: &[OperatingPoint],
        untouched_candidates: &[UntouchedCandidate],
        budgets: &[f64],
    ) -> Vec<TradeoffPoint> {
        budgets
            .iter()
            .map(|&budget| {
                let config = CombinedModelConfig { pdm: 0.05, tp: 1.0 - budget };
                let solved = Self::solve(config, sensitivity_points, untouched_candidates);
                TradeoffPoint {
                    budget,
                    pool_share: solved.map_or(0.0, |m| m.choice.expected_pool_share()),
                    mispredictions: solved.map_or(0.0, |m| m.choice.expected_mispredictions()),
                }
            })
            .collect()
    }
}

/// One point of the Figure 20 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// The misprediction budget used (`100 − TP`).
    pub budget: f64,
    /// Average share of VM memory placed on the pool.
    pub pool_share: f64,
    /// Expected fraction of VMs exceeding the PDM.
    pub mispredictions: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sens(threshold: f64, li: f64, fp: f64) -> OperatingPoint {
        OperatingPoint { threshold, positive_fraction: li, false_positive_fraction: fp }
    }

    fn unt(quantile: f64, um: f64, op: f64) -> UntouchedCandidate {
        UntouchedCandidate {
            quantile,
            point: UntouchedEvalPoint { avg_untouched_fraction: um, overprediction_rate: op },
        }
    }

    fn candidates() -> (Vec<OperatingPoint>, Vec<UntouchedCandidate>) {
        (
            vec![sens(0.9, 0.05, 0.001), sens(0.7, 0.25, 0.01), sens(0.5, 0.45, 0.05)],
            vec![unt(0.05, 0.20, 0.005), unt(0.2, 0.30, 0.02), unt(0.5, 0.45, 0.10)],
        )
    }

    #[test]
    fn solve_respects_the_budget_and_maximizes_the_objective() {
        let (s, u) = candidates();
        let config = CombinedModelConfig { pdm: 0.05, tp: 0.98 };
        let model = CombinedModel::solve(config, &s, &u).unwrap();
        assert!(model.choice.constraint_value() <= config.budget() + 1e-12);
        // With a 2% budget the best feasible combination is LI=25% (FP=1%)
        // and UM=20% (OP=0.5%): objective 0.45.
        assert!((model.choice.objective() - 0.45).abs() < 1e-9, "{:?}", model.choice);
        assert!(model.choice.expected_pool_share() > 0.3);
        assert!(model.choice.expected_mispredictions() <= 0.02 + 1e-9);
    }

    #[test]
    fn tighter_targets_yield_smaller_pool_shares() {
        let (s, u) = candidates();
        let strict = CombinedModel::solve(CombinedModelConfig { pdm: 0.05, tp: 0.999 }, &s, &u);
        let loose = CombinedModel::solve(CombinedModelConfig { pdm: 0.05, tp: 0.90 }, &s, &u);
        let strict_share = strict.map_or(0.0, |m| m.choice.expected_pool_share());
        let loose_share = loose.map_or(0.0, |m| m.choice.expected_pool_share());
        assert!(loose_share >= strict_share);
    }

    #[test]
    fn infeasible_budgets_return_none() {
        let s = vec![sens(0.5, 0.5, 0.10)];
        let u = vec![unt(0.5, 0.5, 0.10)];
        assert!(CombinedModel::solve(CombinedModelConfig { pdm: 0.05, tp: 0.99 }, &s, &u).is_none());
    }

    #[test]
    fn tradeoff_curve_is_monotone_in_the_budget() {
        let (s, u) = candidates();
        let curve = CombinedModel::tradeoff_curve(&s, &u, &[0.001, 0.005, 0.01, 0.02, 0.05, 0.10]);
        assert_eq!(curve.len(), 6);
        for pair in curve.windows(2) {
            assert!(pair[1].pool_share >= pair[0].pool_share - 1e-12);
        }
        // The combined model beats either model alone at a 2% budget: pooling
        // both knobs yields more than the best single-knob option.
        let at_2pct = curve.iter().find(|p| (p.budget - 0.02).abs() < 1e-9).unwrap();
        assert!(at_2pct.pool_share > 0.25);
    }

    #[test]
    fn config_budget() {
        assert!((CombinedModelConfig::default().budget() - 0.02).abs() < 1e-12);
        assert_eq!(CombinedModelConfig { pdm: 0.05, tp: 1.2 }.budget(), 0.0);
    }
}
