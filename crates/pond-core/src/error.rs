//! Error type for the Pond control plane.

use cxl_hw::units::{Bytes, HostId};
use std::error::Error;
use std::fmt;

/// Errors raised by Pond's control-plane operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PondError {
    /// The pool cannot supply the requested capacity. Carries the shortfall
    /// as structured fields — the description is rendered only when the
    /// error is actually displayed, because on large fleets this variant is
    /// thrown (and swallowed by the all-local fallback) on most arrivals.
    PoolExhausted {
        /// The requested capacity.
        requested: Bytes,
        /// The host the request came from.
        host: HostId,
        /// Free buffer capacity reachable by that host.
        reachable: Bytes,
        /// Free buffer capacity pool-wide.
        available: Bytes,
        /// Capacity still offlining (not yet back in the buffer).
        offlining: Bytes,
    },
    /// No host in the pool group can place the VM.
    NoFeasibleHost {
        /// The VM request id.
        vm: u64,
    },
    /// A model was used before it was trained or with inconsistent features.
    Model {
        /// Description of the problem.
        detail: String,
    },
    /// A hardware-layer operation failed.
    Hardware(cxl_hw::CxlError),
    /// A host-memory operation failed.
    HostMemory(String),
    /// The streaming arrival source feeding a replay failed (malformed or
    /// unreadable trace stream).
    TraceStream(String),
}

impl fmt::Display for PondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PondError::PoolExhausted { requested, host, reachable, available, offlining } => {
                write!(
                    f,
                    "pool exhausted: requested {requested}, buffer holds {reachable} \
                     reachable by {host} ({available} pool-wide, {offlining} still offlining)"
                )
            }
            PondError::NoFeasibleHost { vm } => write!(f, "no feasible host for vm {vm}"),
            PondError::Model { detail } => write!(f, "model error: {detail}"),
            PondError::Hardware(e) => write!(f, "hardware error: {e}"),
            PondError::HostMemory(e) => write!(f, "host memory error: {e}"),
            PondError::TraceStream(e) => write!(f, "trace stream error: {e}"),
        }
    }
}

impl Error for PondError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PondError::Hardware(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cxl_hw::CxlError> for PondError {
    fn from(e: cxl_hw::CxlError) -> Self {
        PondError::Hardware(e)
    }
}

impl From<cluster_sim::source::SourceError> for PondError {
    fn from(e: cluster_sim::source::SourceError) -> Self {
        PondError::TraceStream(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = PondError::NoFeasibleHost { vm: 9 };
        assert_eq!(err.to_string(), "no feasible host for vm 9");
        assert!(err.source().is_none());

        let hw = PondError::from(cxl_hw::CxlError::UnsupportedPoolSize { sockets: 5 });
        assert!(hw.to_string().contains("unsupported pool size"));
        assert!(hw.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<PondError>();
    }
}
