//! QoS monitoring and mitigation (§4.3 B, Figure 11 and Figure 13 right).
//!
//! The QoS monitor continuously inspects running VMs: for zNUMA VMs it checks
//! whether the untouched-memory prediction was too optimistic; for VMs that
//! spill (or run fully on pool memory) it consults the latency-sensitivity
//! model to decide whether the slowdown likely exceeds the PDM. If so, the
//! mitigation manager performs the one-time reconfiguration to all-local
//! memory through the hypervisor.

use crate::sensitivity::SensitivityModel;
use cxl_hw::units::Bytes;
use hypervisor_sim::host::HostMemory;
use hypervisor_sim::reconfig::{ReconfigurationEngine, ReconfigurationReport};
use hypervisor_sim::vm::VirtualMachine;
use pond_ml::MlError;
use serde::{Deserialize, Serialize};
use workload_model::telemetry::TmaCounters;

/// The decision the QoS monitor takes for one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QosDecision {
    /// The VM is healthy; keep monitoring.
    ContinueMonitoring,
    /// The VM is likely exceeding its PDM; reconfigure it to local memory.
    Mitigate,
}

/// Telemetry snapshot the monitor evaluates for one VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmObservation {
    /// Core-PMU counters sampled for the VM.
    pub counters: TmaCounters,
    /// Pool memory currently allocated to the VM.
    pub pool_memory: Bytes,
    /// Untouched memory predicted at scheduling time.
    pub predicted_untouched: Bytes,
    /// Minimum untouched memory observed so far (access-bit scans).
    pub observed_untouched: Bytes,
}

impl VmObservation {
    /// Whether the untouched-memory prediction was too optimistic: the VM has
    /// touched more memory than the prediction allowed for, so part of its
    /// working set must live on the zNUMA node.
    pub fn overpredicted(&self) -> bool {
        self.observed_untouched < self.predicted_untouched
    }
}

/// The QoS monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosMonitor {
    sensitivity: SensitivityModel,
}

impl QosMonitor {
    /// Creates a monitor around a trained sensitivity model.
    pub fn new(sensitivity: SensitivityModel) -> Self {
        QosMonitor { sensitivity }
    }

    /// Access to the underlying sensitivity model.
    pub fn sensitivity(&self) -> &SensitivityModel {
        &self.sensitivity
    }

    /// Evaluates one VM (Figure 13, right side):
    ///
    /// * VMs without pool memory never need mitigation.
    /// * zNUMA VMs whose untouched prediction still holds keep monitoring.
    /// * Otherwise the sensitivity model decides: latency-insensitive VMs can
    ///   tolerate the spill, sensitive ones are mitigated.
    ///
    /// This is the online serving path (one call per QoS-monitored VM every
    /// pass), so the sensitivity model's feature schema is validated: a
    /// drift surfaces as an [`MlError`] the replay propagates instead of a
    /// panic mid sweep.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] on feature-schema drift.
    pub fn try_evaluate(&self, observation: &VmObservation) -> Result<QosDecision, MlError> {
        if observation.pool_memory.is_zero() {
            return Ok(QosDecision::ContinueMonitoring);
        }
        let fully_pool_backed = observation.predicted_untouched.is_zero();
        if !fully_pool_backed && !observation.overpredicted() {
            return Ok(QosDecision::ContinueMonitoring);
        }
        Ok(if self.sensitivity.try_is_insensitive(&observation.counters)? {
            QosDecision::ContinueMonitoring
        } else {
            QosDecision::Mitigate
        })
    }

    /// Evaluates one VM (panicking convenience over
    /// [`QosMonitor::try_evaluate`]).
    pub fn evaluate(&self, observation: &VmObservation) -> QosDecision {
        self.try_evaluate(observation)
            .expect("TMA counter features must match the trained forest's schema")
    }
}

/// Executes mitigations, bounded by a budget expressed as a fraction of the
/// VMs monitored (the paper's evaluation assumes the monitor mitigates up to
/// 1% of mispredictions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationManager {
    engine: ReconfigurationEngine,
    budget_fraction: f64,
    monitored: u64,
    mitigated: u64,
}

impl MitigationManager {
    /// Creates a manager with the given mitigation budget (e.g. 0.01).
    ///
    /// # Panics
    ///
    /// Panics unless `budget_fraction` is within `[0, 1]`.
    pub fn new(budget_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&budget_fraction), "budget must be in [0, 1]");
        MitigationManager {
            engine: ReconfigurationEngine::default(),
            budget_fraction,
            monitored: 0,
            mitigated: 0,
        }
    }

    /// Number of VMs evaluated so far.
    pub fn monitored(&self) -> u64 {
        self.monitored
    }

    /// Number of mitigations performed so far.
    pub fn mitigated(&self) -> u64 {
        self.mitigated
    }

    /// The reconfiguration engine, exposing the per-GiB copy cost and the
    /// total copy time charged so far.
    pub fn engine(&self) -> &ReconfigurationEngine {
        &self.engine
    }

    /// Whether the budget allows another mitigation right now.
    pub fn within_budget(&self) -> bool {
        let allowed = (self.monitored as f64 * self.budget_fraction).floor() as u64;
        self.mitigated < allowed.max(1)
    }

    /// Evaluates a VM and applies the mitigation if the monitor requests one
    /// and the budget allows it. Returns the reconfiguration report when a
    /// mitigation ran; a feature-schema drift in the monitor's model comes
    /// back as an error instead of a panic (this runs once per monitored VM
    /// every QoS pass, mid replay).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] on feature-schema drift.
    pub fn try_process(
        &mut self,
        monitor: &QosMonitor,
        observation: &VmObservation,
        host: &mut HostMemory,
        vm: &mut VirtualMachine,
    ) -> Result<Option<ReconfigurationReport>, MlError> {
        self.monitored += 1;
        if monitor.try_evaluate(observation)? == QosDecision::ContinueMonitoring {
            return Ok(None);
        }
        if !self.within_budget() {
            return Ok(None);
        }
        Ok(match self.engine.reconfigure(host, vm) {
            Ok(report) if report.accelerator_toggled => {
                self.mitigated += 1;
                Some(report)
            }
            _ => None,
        })
    }

    /// Evaluates a VM and applies the mitigation (panicking convenience over
    /// [`MitigationManager::try_process`]).
    pub fn process(
        &mut self,
        monitor: &QosMonitor,
        observation: &VmObservation,
        host: &mut HostMemory,
        vm: &mut VirtualMachine,
    ) -> Option<ReconfigurationReport> {
        self.try_process(monitor, observation, host, vm)
            .expect("TMA counter features must match the trained forest's schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::SensitivityModelConfig;
    use hypervisor_sim::vm::{VmConfig, VmId};
    use workload_model::telemetry::TelemetrySampler;
    use workload_model::{SlowdownModel, WorkloadSuite};

    fn monitor() -> QosMonitor {
        let suite = WorkloadSuite::standard();
        QosMonitor::new(SensitivityModel::train(&suite, &SensitivityModelConfig::default(), 0))
    }

    fn counters_for(name: &str) -> TmaCounters {
        let suite = WorkloadSuite::standard();
        TelemetrySampler::default().sample(suite.get(name).unwrap(), 5)
    }

    fn most_sensitive_and_insensitive() -> (String, String) {
        let suite = WorkloadSuite::standard();
        let model = SlowdownModel::default();
        let mut sorted: Vec<_> = suite.workloads().collect();
        sorted.sort_by(|a, b| {
            model
                .full_pool_slowdown(a, cxl_hw::latency::LatencyScenario::Increase182)
                .partial_cmp(
                    &model.full_pool_slowdown(b, cxl_hw::latency::LatencyScenario::Increase182),
                )
                .unwrap()
        });
        (sorted.last().unwrap().name.clone(), sorted.first().unwrap().name.clone())
    }

    #[test]
    fn all_local_vms_are_never_mitigated() {
        let monitor = monitor();
        let (sensitive, _) = most_sensitive_and_insensitive();
        let obs = VmObservation {
            counters: counters_for(&sensitive),
            pool_memory: Bytes::ZERO,
            predicted_untouched: Bytes::ZERO,
            observed_untouched: Bytes::ZERO,
        };
        assert_eq!(monitor.evaluate(&obs), QosDecision::ContinueMonitoring);
    }

    #[test]
    fn correct_predictions_keep_monitoring() {
        let monitor = monitor();
        let (sensitive, _) = most_sensitive_and_insensitive();
        let obs = VmObservation {
            counters: counters_for(&sensitive),
            pool_memory: Bytes::from_gib(8),
            predicted_untouched: Bytes::from_gib(8),
            observed_untouched: Bytes::from_gib(10),
        };
        assert!(!obs.overpredicted());
        assert_eq!(monitor.evaluate(&obs), QosDecision::ContinueMonitoring);
    }

    #[test]
    fn overprediction_of_a_sensitive_vm_triggers_mitigation() {
        let monitor = monitor();
        let (sensitive, insensitive) = most_sensitive_and_insensitive();
        let base = VmObservation {
            counters: counters_for(&sensitive),
            pool_memory: Bytes::from_gib(8),
            predicted_untouched: Bytes::from_gib(8),
            observed_untouched: Bytes::from_gib(2),
        };
        assert!(base.overpredicted());
        assert_eq!(monitor.evaluate(&base), QosDecision::Mitigate);
        // The same situation for an insensitive workload is tolerated.
        let tolerant = VmObservation { counters: counters_for(&insensitive), ..base };
        assert_eq!(monitor.evaluate(&tolerant), QosDecision::ContinueMonitoring);
    }

    #[test]
    fn mitigation_manager_applies_and_counts() {
        let monitor = monitor();
        let (sensitive, _) = most_sensitive_and_insensitive();
        let suite = WorkloadSuite::standard();
        let workload = suite.get(&sensitive).unwrap().clone();
        let mut host = HostMemory::new(Bytes::from_gib(512), Bytes::from_gib(8));
        host.online_pool(Bytes::from_gib(32));
        let memory = workload.footprint + Bytes::from_gib(8);
        let mut vm = VirtualMachine::launch(
            1,
            VmConfig { cores: 8, memory, pool_memory: Bytes::from_gib(8) },
            workload,
        );
        host.pin_vm(VmId(1), vm.config().local_memory(), Bytes::from_gib(8)).unwrap();

        let mut manager = MitigationManager::new(1.0);
        let obs = VmObservation {
            counters: counters_for(&sensitive),
            pool_memory: Bytes::from_gib(8),
            predicted_untouched: Bytes::from_gib(8),
            observed_untouched: Bytes::ZERO,
        };
        let report = manager.process(&monitor, &obs, &mut host, &mut vm).unwrap();
        assert_eq!(report.moved, Bytes::from_gib(8));
        assert!(vm.is_reconfigured());
        assert_eq!(manager.mitigated(), 1);
        assert_eq!(manager.monitored(), 1);
    }

    #[test]
    fn mitigation_budget_limits_actions() {
        let monitor = monitor();
        let (sensitive, _) = most_sensitive_and_insensitive();
        let suite = WorkloadSuite::standard();
        let workload = suite.get(&sensitive).unwrap().clone();
        // Budget of 0 still allows a single mitigation (floor to at least 1).
        let mut manager = MitigationManager::new(0.0);
        assert!(manager.within_budget());
        let obs = VmObservation {
            counters: counters_for(&sensitive),
            pool_memory: Bytes::from_gib(4),
            predicted_untouched: Bytes::from_gib(4),
            observed_untouched: Bytes::ZERO,
        };
        // Two VMs on two hosts: only the first mitigation fits the budget.
        for i in 0..2u64 {
            let mut host = HostMemory::new(Bytes::from_gib(512), Bytes::from_gib(8));
            host.online_pool(Bytes::from_gib(16));
            let memory = workload.footprint + Bytes::from_gib(4);
            let mut vm = VirtualMachine::launch(
                i,
                VmConfig { cores: 4, memory, pool_memory: Bytes::from_gib(4) },
                workload.clone(),
            );
            host.pin_vm(VmId(i), vm.config().local_memory(), Bytes::from_gib(4)).unwrap();
            manager.process(&monitor, &obs, &mut host, &mut vm);
        }
        assert_eq!(manager.mitigated(), 1, "budget should cap mitigations");
        assert_eq!(manager.monitored(), 2);
    }

    #[test]
    #[should_panic(expected = "budget must be in [0, 1]")]
    fn invalid_budget_rejected() {
        let _ = MitigationManager::new(2.0);
    }
}
