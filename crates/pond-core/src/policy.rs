//! The end-to-end Pond memory-allocation policy (Figure 13, left side).
//!
//! For every VM request the policy walks the paper's decision flow:
//!
//! 1. If the customer has workload history, predict whether the workload is
//!    latency-insensitive from its core-PMU counters; insensitive VMs are
//!    allocated entirely on pool DRAM.
//! 2. Otherwise (or if the VM is predicted sensitive), predict the VM's
//!    untouched memory from its metadata and allocate exactly that much pool
//!    DRAM behind a zNUMA node; the rest stays NUMA-local.
//! 3. VMs predicted to touch everything get only local DRAM.
//!
//! The policy implements [`cluster_sim::scheduler::MemoryPolicy`], so it
//! plugs directly into the cluster simulator for the Figure 20/21
//! experiments.

use crate::error::PondError;
use crate::sensitivity::{SensitivityModel, SensitivityModelConfig};
use crate::untouched::{CustomerHistory, UntouchedMemoryModel, UntouchedModelConfig};
use cluster_sim::scheduler::MemoryPolicy;
use cluster_sim::source::{ArrivalSource, SourceError};
use cluster_sim::trace::{ClusterTrace, CustomerId, VmRequest};
use cxl_hw::latency::LatencyScenario;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use workload_model::telemetry::TelemetrySampler;
use workload_model::WorkloadSuite;

/// Configuration of the full Pond policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PondPolicyConfig {
    /// Performance degradation margin the deployment promises (e.g. 0.05).
    pub pdm: f64,
    /// Target fraction of VMs that must stay within the PDM (e.g. 0.98).
    pub tp: f64,
    /// The CXL latency scenario the pool operates under.
    pub scenario: LatencyScenario,
    /// Quantile used by the untouched-memory model (lower = more conservative).
    pub untouched_quantile: f64,
    /// Fraction of the training trace used to fit the untouched-memory model.
    pub training_fraction: f64,
    /// Sensitivity-model hyperparameters.
    pub sensitivity: SensitivityModelConfig,
}

impl Default for PondPolicyConfig {
    fn default() -> Self {
        PondPolicyConfig {
            pdm: 0.05,
            tp: 0.98,
            scenario: LatencyScenario::Increase182,
            untouched_quantile: 0.05,
            training_fraction: 0.4,
            sensitivity: SensitivityModelConfig::default(),
        }
    }
}

impl PondPolicyConfig {
    /// The false-positive budget handed to the sensitivity model: half the
    /// total misprediction budget `100 − TP` (the other half is left for
    /// untouched-memory overpredictions).
    pub fn sensitivity_fp_budget(&self) -> f64 {
        (1.0 - self.tp).max(0.0) / 2.0
    }
}

/// Counts of the allocation decisions the policy has taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// VMs allocated entirely on pool DRAM (predicted latency-insensitive).
    pub fully_pool: u64,
    /// VMs given a zNUMA node sized to their predicted untouched memory.
    pub partial_pool: u64,
    /// VMs allocated entirely on local DRAM.
    pub all_local: u64,
}

impl PolicyStats {
    /// Total decisions taken.
    pub fn total(&self) -> u64 {
        self.fully_pool + self.partial_pool + self.all_local
    }
}

/// The trained Pond policy.
#[derive(Debug, Clone)]
pub struct PondPolicy {
    config: PondPolicyConfig,
    sensitivity: SensitivityModel,
    untouched: UntouchedMemoryModel,
    history: CustomerHistory,
    workload_history: BTreeMap<CustomerId, BTreeSet<usize>>,
    suite: WorkloadSuite,
    sampler: TelemetrySampler,
    stats: PolicyStats,
}

impl PondPolicy {
    /// Trains both prediction models.
    ///
    /// The sensitivity model trains on the workload suite (the paper's
    /// offline runs and A/B tests) and calibrates its threshold to the
    /// configured false-positive budget on a held-out split. The
    /// untouched-memory model trains on the first
    /// [`PondPolicyConfig::training_fraction`] of the provided trace; the
    /// remaining requests are what simulations should evaluate on.
    pub fn train(trace: &ClusterTrace, config: &PondPolicyConfig, seed: u64) -> Self {
        let train_slice = &trace.requests[..Self::train_len(trace.requests.len(), config)];
        Self::train_requests(train_slice, config, seed)
    }

    /// [`PondPolicy::train`] over a streaming [`ArrivalSource`]: only the
    /// training prefix is ever materialized, so training memory is bounded
    /// by `training_fraction × trace length` rather than by whole-trace
    /// bookkeeping. Bit-identical to [`PondPolicy::train`] on the same
    /// requests.
    ///
    /// `make` builds a fresh source per pass because sizing the prefix needs
    /// the stream length: sources without a [`ArrivalSource::len_hint`] cost
    /// one extra counting pass.
    ///
    /// # Errors
    ///
    /// Propagates any [`SourceError`] the stream raises.
    pub fn train_source<S, F>(
        mut make: F,
        config: &PondPolicyConfig,
        seed: u64,
    ) -> Result<Self, SourceError>
    where
        S: ArrivalSource,
        F: FnMut() -> S,
    {
        let mut source = make();
        let total = match source.len_hint() {
            Some(n) => n,
            None => {
                let mut count: u64 = 0;
                while source.next_request()?.is_some() {
                    count += 1;
                }
                source = make();
                count
            }
        };
        debug_assert!(total <= usize::MAX as u64, "stream length exceeds the address space");
        let train_len = Self::train_len(total as usize, config);
        let mut train_slice = Vec::with_capacity(train_len);
        while train_slice.len() < train_len {
            match source.next_request()? {
                Some(request) => train_slice.push(request),
                None => break,
            }
        }
        Ok(Self::train_requests(&train_slice, config, seed))
    }

    /// The training-prefix length [`PondPolicy::train`] and
    /// [`PondPolicy::train_source`] share: `training_fraction` of the trace,
    /// rounded, at least one request when any exist.
    fn train_len(total: usize, config: &PondPolicyConfig) -> usize {
        (((total as f64) * config.training_fraction).round().max(1.0) as usize).min(total)
    }

    /// Trains both models on an explicit training prefix.
    fn train_requests(train_slice: &[VmRequest], config: &PondPolicyConfig, seed: u64) -> Self {
        let suite = WorkloadSuite::standard();

        let mut sensitivity = SensitivityModel::train(&suite, &config.sensitivity, seed);
        let data = crate::sensitivity::training_dataset(&suite, &config.sensitivity, seed ^ 0xA5);
        let (_, validation) = data.train_test_split(0.5, seed ^ 0x5A);
        sensitivity.calibrate_threshold(&validation, config.sensitivity_fp_budget(), 200);

        let untouched = UntouchedMemoryModel::train(
            train_slice,
            &UntouchedModelConfig { quantile: config.untouched_quantile, rounds: 50 },
            seed,
        );

        // Seed the runtime history with the training period: the policy
        // starts knowing the customers it has already seen.
        let mut history = CustomerHistory::new();
        let mut workload_history: BTreeMap<CustomerId, BTreeSet<usize>> = BTreeMap::new();
        for request in train_slice {
            history.record(request.customer, request.untouched_fraction);
            workload_history.entry(request.customer).or_default().insert(request.workload_index);
        }

        PondPolicy {
            config: config.clone(),
            sensitivity,
            untouched,
            history,
            workload_history,
            suite,
            sampler: TelemetrySampler::default(),
            stats: PolicyStats::default(),
        }
    }

    /// The policy's configuration.
    pub fn config(&self) -> &PondPolicyConfig {
        &self.config
    }

    /// Decision statistics accumulated so far.
    pub fn stats(&self) -> PolicyStats {
        self.stats
    }

    /// The trained sensitivity model.
    pub fn sensitivity_model(&self) -> &SensitivityModel {
        &self.sensitivity
    }

    /// The trained untouched-memory model.
    pub fn untouched_model(&self) -> &UntouchedMemoryModel {
        &self.untouched
    }

    /// The per-customer completion history feeding the online untouched
    /// predictions. Exposed so tests can pin exactly how many observations
    /// a customer fed back — e.g. that a drained VM which later departs
    /// normally records exactly one completion.
    pub fn history(&self) -> &CustomerHistory {
        &self.history
    }

    /// Applies a windowed-reservoir cap to the per-customer completion
    /// history ([`CustomerHistory::set_window`]): completions recorded from
    /// now on evict the customer's oldest windowed observation once the cap
    /// is reached. The training-seeded history is untouched. `None` (the
    /// default) keeps every completion — frozen-policy replay goldens
    /// depend on that.
    pub fn set_history_window(&mut self, window: Option<usize>) {
        self.history.set_window(window);
    }

    /// The Figure 13 decision for one request, without mutating statistics,
    /// with both models' feature schemas validated. This is the online
    /// serving entry point: the control plane calls it once per VM arrival,
    /// so a malformed feature row surfaces as a [`PondError::Model`] the
    /// fleet replay propagates instead of a panic that takes a whole sweep
    /// down.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::Model`] when either prediction model rejects its
    /// feature row (schema drift between training and serving).
    pub fn try_decide(&self, request: &VmRequest) -> Result<PondDecision, PondError> {
        // "Workload history" means the same customer has run this workload
        // before (the paper matches on customer id, VM type, and workload
        // name); only then does Pond trust a sensitivity prediction.
        let has_history = self
            .workload_history
            .get(&request.customer)
            .is_some_and(|seen| seen.contains(&request.workload_index));
        if has_history {
            let workload = self
                .suite
                .at(request.workload_index % self.suite.len())
                .expect("workload index is taken modulo the suite size");
            let counters = self.sampler.sample(workload, request.id);
            let insensitive = self
                .sensitivity
                .try_is_insensitive(&counters)
                .map_err(|e| PondError::Model { detail: e.to_string() })?;
            if insensitive {
                return Ok(PondDecision::FullyPool);
            }
        }
        let pool = self
            .untouched
            .try_pool_memory(request, &self.history)
            .map_err(|e| PondError::Model { detail: e.to_string() })?;
        Ok(if pool.is_zero() { PondDecision::AllLocal } else { PondDecision::Znuma { pool } })
    }

    /// The Figure 13 decision for one request (panicking convenience over
    /// [`PondPolicy::try_decide`] for offline evaluation code that controls
    /// its own feature schemas).
    pub fn decide(&self, request: &VmRequest) -> PondDecision {
        self.try_decide(request).expect("serving features must match the trained models' schemas")
    }

    /// Feeds one completed VM back into the policy's online state: its
    /// measured untouched fraction extends the customer's history (used by
    /// the untouched-memory features) and the workload joins the customer's
    /// known-workload set (which gates the fully-pool path).
    ///
    /// [`MemoryPolicy::observe_outcome`] delegates here; the control plane
    /// calls it directly on VM departure, when the access-bit scans have
    /// established the ground truth.
    pub fn record_completion(
        &mut self,
        customer: CustomerId,
        untouched_fraction: f64,
        workload_index: usize,
    ) {
        self.history.record(customer, untouched_fraction);
        self.workload_history.entry(customer).or_default().insert(workload_index);
    }
}

/// The three possible outcomes of the Figure 13 scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PondDecision {
    /// Allocate the entire VM on pool DRAM.
    FullyPool,
    /// Allocate `pool` on the zNUMA node and the rest locally.
    Znuma {
        /// Pool memory backing the zNUMA node.
        pool: Bytes,
    },
    /// Allocate everything on local DRAM.
    AllLocal,
}

impl MemoryPolicy for PondPolicy {
    fn pool_memory(&mut self, request: &VmRequest) -> Bytes {
        match self.decide(request) {
            PondDecision::FullyPool => {
                self.stats.fully_pool += 1;
                request.memory
            }
            PondDecision::Znuma { pool } => {
                self.stats.partial_pool += 1;
                pool
            }
            PondDecision::AllLocal => {
                self.stats.all_local += 1;
                Bytes::ZERO
            }
        }
    }

    fn observe_outcome(&mut self, request: &VmRequest, _slowdown: f64, _exceeded_pdm: bool) {
        // The control plane learns from completed VMs: their untouched memory
        // feeds the customer history and their workload becomes the
        // customer's latest known workload.
        self.record_completion(
            request.customer,
            request.untouched_fraction,
            request.workload_index,
        );
    }

    fn name(&self) -> &str {
        "pond"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::scheduler::FixedPoolFraction;
    use cluster_sim::simulation::{Simulation, SimulationConfig};
    use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};

    fn trace() -> ClusterTrace {
        // Mid-sized trace (~1000 VMs) so the learned models have signal.
        let config = ClusterConfig { servers: 24, duration_days: 12, ..ClusterConfig::small() };
        TraceGenerator::new(config, 1).generate(0)
    }

    #[test]
    fn policy_trains_and_makes_all_three_decisions() {
        let trace = trace();
        let mut policy = PondPolicy::train(&trace, &PondPolicyConfig::default(), 1);
        let evaluated = trace.requests.len().min(600);
        for request in trace.requests.iter().take(evaluated) {
            let pool = policy.pool_memory(request);
            assert!(pool <= request.memory);
            policy.observe_outcome(request, 0.0, false);
        }
        let stats = policy.stats();
        assert_eq!(stats.total() as usize, evaluated);
        assert!(stats.partial_pool > 0, "zNUMA allocations should dominate: {stats:?}");
        assert!(stats.fully_pool > 0, "some customers run insensitive workloads: {stats:?}");
        assert_eq!(policy.name(), "pond");
    }

    #[test]
    fn pond_keeps_violations_low_while_using_the_pool() {
        let trace = trace();
        let config = PondPolicyConfig::default();
        let policy = PondPolicy::train(&trace, &config, 2);
        let sim_config = SimulationConfig {
            pool_size_sockets: 16,
            pdm: config.pdm,
            qos_mitigation: false,
            ..Default::default()
        };
        let outcome = Simulation::new(sim_config, policy).run(&trace);
        assert!(outcome.scheduled_vms > 0);
        // Pond should put a meaningful share of memory on the pool...
        assert!(outcome.pool_dram_fraction() > 0.10, "pool share {}", outcome.pool_dram_fraction());
        // ...while keeping scheduling mispredictions near the 2% target.
        assert!(outcome.violation_fraction() < 0.08, "violations {}", outcome.violation_fraction());
    }

    #[test]
    fn pond_beats_the_static_strawman_on_the_violation_per_pool_tradeoff() {
        // Figure 21's qualitative claim: at comparable pool usage the static
        // policy mispredicts far more often than Pond.
        let trace = trace();
        let config = PondPolicyConfig::default();
        let pond = PondPolicy::train(&trace, &config, 3);
        let sim_config = SimulationConfig { qos_mitigation: false, ..Default::default() };
        let pond_outcome = Simulation::new(sim_config.clone(), pond).run(&trace);

        let static_fraction = pond_outcome.pool_dram_fraction().clamp(0.05, 0.95);
        let static_outcome =
            Simulation::new(sim_config, FixedPoolFraction::new(static_fraction)).run(&trace);

        assert!(
            pond_outcome.violation_fraction() < static_outcome.violation_fraction(),
            "pond {} vs static {} at pool share {:.2}",
            pond_outcome.violation_fraction(),
            static_outcome.violation_fraction(),
            static_fraction
        );
    }

    #[test]
    fn decisions_respect_customer_history() {
        let trace = trace();
        let policy = PondPolicy::train(&trace, &PondPolicyConfig::default(), 4);
        // A request from a brand-new customer can never take the
        // fully-pool path (no workload history).
        let mut request = trace.requests[0].clone();
        request.customer = CustomerId(9_999);
        assert!(!matches!(policy.decide(&request), PondDecision::FullyPool));
    }

    #[test]
    fn try_decide_matches_the_panicking_path_on_well_formed_requests() {
        // The serving path goes through the validating models; on the
        // schemas they were trained with the two entry points must agree
        // decision-for-decision (the schema-mismatch error arm is covered by
        // pond-ml's forest/gbm regression tests — a VmRequest cannot
        // produce a malformed row by construction).
        let trace = trace();
        let policy = PondPolicy::train(&trace, &PondPolicyConfig::default(), 5);
        for request in trace.requests.iter().take(100) {
            assert_eq!(policy.try_decide(request).unwrap(), policy.decide(request));
        }
    }

    #[test]
    fn config_budget_split() {
        let config = PondPolicyConfig::default();
        assert!((config.sensitivity_fp_budget() - 0.01).abs() < 1e-12);
        assert_eq!(config.pdm, 0.05);
    }
}
