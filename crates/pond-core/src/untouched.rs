//! The untouched-memory prediction model (§4.4, Figure 14, Figures 18/19).
//!
//! Pond predicts, at VM-scheduling time and from metadata alone, how much of
//! the requested memory the VM will never touch; that amount is safe to back
//! with pool memory (exposed as zNUMA). The paper uses a LightGBM quantile
//! regression whose most important feature is the distribution of untouched
//! memory across the same customer's previous VMs; predicting a low quantile
//! keeps overpredictions (VMs that touch more than predicted) rare.

use cluster_sim::trace::{CustomerId, GuestOs, VmRequest};
use cxl_hw::units::Bytes;
use pond_ml::dataset::Dataset;
use pond_ml::gbm::{GbmConfig, GradientBoostedTrees};
use pond_ml::MlError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Per-customer record of previously observed untouched-memory fractions.
///
/// Each customer's observations are kept sorted as they arrive (one binary
/// insertion per completed VM), so the percentile features read at every
/// scheduling decision are O(1) lookups instead of a clone-and-sort of the
/// customer's whole history — on long traces a popular customer accumulates
/// thousands of observations and that sort used to dominate arrival cost.
///
/// By default the history grows with the trace — the one deliberate
/// trace-length memory term in a streamed replay. [`CustomerHistory::set_window`]
/// bounds it with a windowed reservoir: only the most recent `window`
/// observations recorded *after* the window was set are kept per customer
/// (recording the `window+1`-th evicts the oldest), so multi-million-VM
/// streams run in O(customers × window) instead of O(completions).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CustomerHistory {
    observations: BTreeMap<CustomerId, Vec<f64>>,
    /// Cap on windowed observations per customer (`None`: unbounded).
    window: Option<usize>,
    /// Per-customer windowed observations in arrival order — the eviction
    /// queue backing the cap. Empty while `window` is `None`, so the
    /// unbounded (default) path carries no extra state.
    arrivals: BTreeMap<CustomerId, VecDeque<f64>>,
}

impl CustomerHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of observations kept per customer from this point
    /// on: each [`CustomerHistory::record`] beyond the cap evicts the
    /// customer's oldest windowed observation. Observations recorded
    /// *before* the window was set (e.g. the training-seeded history, which
    /// is bounded by the training prefix already) are never evicted.
    /// `Some(0)` discards every future observation; `None` restores
    /// unbounded recording without restoring evicted values.
    pub fn set_window(&mut self, window: Option<usize>) {
        self.window = window;
    }

    /// The windowed-reservoir cap currently in force.
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Records the untouched fraction observed for a completed VM,
    /// maintaining the customer's observations in sorted order and evicting
    /// the oldest windowed observation when a cap is set.
    pub fn record(&mut self, customer: CustomerId, untouched_fraction: f64) {
        let value = untouched_fraction.clamp(0.0, 1.0);
        if let Some(window) = self.window {
            if window == 0 {
                return;
            }
            let arrivals = self.arrivals.entry(customer).or_default();
            if arrivals.len() == window {
                let evicted = arrivals.pop_front().expect("window is positive");
                let values =
                    self.observations.get_mut(&customer).expect("every arrival has an observation");
                let at = values.partition_point(|&v| v < evicted);
                debug_assert_eq!(values.get(at), Some(&evicted));
                values.remove(at);
            }
            arrivals.push_back(value);
        }
        let values = self.observations.entry(customer).or_default();
        let at = values.partition_point(|&v| v < value);
        values.insert(at, value);
    }

    /// Number of observations for a customer.
    pub fn count(&self, customer: CustomerId) -> usize {
        self.observations.get(&customer).map_or(0, Vec::len)
    }

    /// Whether the customer has any history at all.
    pub fn has_history(&self, customer: CustomerId) -> bool {
        self.count(customer) > 0
    }

    /// The 0/25/50/75/100th percentiles of the customer's past untouched
    /// fractions (Figure 14 lists these as the model's key features).
    /// Returns `None` when the customer has no history.
    pub fn percentiles(&self, customer: CustomerId) -> Option<[f64; 5]> {
        let sorted = self.observations.get(&customer)?;
        if sorted.is_empty() {
            return None;
        }
        let pick = |q: f64| {
            let pos = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[pos]
        };
        Some([pick(0.0), pick(0.25), pick(0.5), pick(0.75), pick(1.0)])
    }
}

/// Feature names of the untouched-memory model, in the order produced by
/// [`request_features`].
pub const UNTOUCHED_FEATURE_NAMES: [&str; 12] = [
    "cores",
    "memory_gib",
    "vm_type",
    "guest_os",
    "region",
    "workload_index",
    "has_history",
    "hist_p0",
    "hist_p25",
    "hist_p50",
    "hist_p75",
    "hist_p100",
];

/// Builds the metadata feature vector for one VM request given the customer
/// history available at scheduling time. VMs without history get neutral
/// (0.5) percentile placeholders and `has_history = 0`.
pub fn request_features(request: &VmRequest, history: &CustomerHistory) -> Vec<f64> {
    let percentiles = history.percentiles(request.customer);
    let has_history = if percentiles.is_some() { 1.0 } else { 0.0 };
    let p = percentiles.unwrap_or([0.5; 5]);
    vec![
        request.cores as f64,
        request.memory.as_gib_f64(),
        request.vm_type.as_feature(),
        match request.guest_os {
            GuestOs::Linux => 0.0,
            GuestOs::Windows => 1.0,
        },
        request.region as f64,
        request.workload_index as f64,
        has_history,
        p[0],
        p[1],
        p[2],
        p[3],
        p[4],
    ]
}

/// Configuration of the untouched-memory model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UntouchedModelConfig {
    /// Target quantile of the untouched-fraction distribution to predict.
    /// Lower quantiles are more conservative (fewer overpredictions, less
    /// memory placed on the pool).
    pub quantile: f64,
    /// Boosting rounds for the GBM.
    pub rounds: usize,
}

impl Default for UntouchedModelConfig {
    fn default() -> Self {
        UntouchedModelConfig { quantile: 0.05, rounds: 60 }
    }
}

/// A trained untouched-memory model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UntouchedMemoryModel {
    gbm: GradientBoostedTrees,
    config: UntouchedModelConfig,
}

impl UntouchedMemoryModel {
    /// Trains the model on historical VM requests (with their eventual
    /// untouched fractions as labels). The customer-history features are
    /// built incrementally in arrival order, exactly as they would have been
    /// available when each VM was scheduled.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty.
    pub fn train(requests: &[VmRequest], config: &UntouchedModelConfig, seed: u64) -> Self {
        assert!(!requests.is_empty(), "training requires at least one VM request");
        let mut history = CustomerHistory::new();
        let mut rows = Vec::with_capacity(requests.len());
        let mut labels = Vec::with_capacity(requests.len());
        for request in requests {
            rows.push(request_features(request, &history));
            labels.push(request.untouched_fraction);
            history.record(request.customer, request.untouched_fraction);
        }
        let data = Dataset::new(
            UNTOUCHED_FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
            rows,
            labels,
        )
        .expect("request-derived dataset is well formed");
        let gbm_config =
            GbmConfig { rounds: config.rounds, ..GbmConfig::quantile(config.quantile) };
        UntouchedMemoryModel {
            gbm: GradientBoostedTrees::fit(&data, &gbm_config, seed),
            config: config.clone(),
        }
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &UntouchedModelConfig {
        &self.config
    }

    /// Predicted untouched fraction for a VM request, clamped to `[0, 1]`,
    /// with the feature schema validated: this is the online serving path
    /// (one call per VM arrival), and it goes through the GBM's validating
    /// `try_predict` so a feature-schema drift surfaces as an [`MlError`]
    /// the fleet replay can propagate instead of a panic mid sweep.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] when the request features
    /// do not match the trained GBM's schema.
    pub fn try_predict_fraction(
        &self,
        request: &VmRequest,
        history: &CustomerHistory,
    ) -> Result<f64, MlError> {
        Ok(self.gbm.try_predict(&request_features(request, history))?.clamp(0.0, 1.0))
    }

    /// Predicted untouched fraction (panicking convenience over
    /// [`UntouchedMemoryModel::try_predict_fraction`] for offline
    /// evaluation code).
    pub fn predict_fraction(&self, request: &VmRequest, history: &CustomerHistory) -> f64 {
        self.try_predict_fraction(request, history)
            .expect("request features must match the trained GBM's schema")
    }

    /// Pool memory to allocate: the predicted untouched memory, rounded down
    /// to whole GiB (Pond allocates pool memory in 1 GiB slices), with the
    /// feature schema validated.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] on feature-schema drift.
    pub fn try_pool_memory(
        &self,
        request: &VmRequest,
        history: &CustomerHistory,
    ) -> Result<Bytes, MlError> {
        let predicted = request.memory.scaled(self.try_predict_fraction(request, history)?);
        Ok(Bytes::from_gib(predicted.slices_floor()))
    }

    /// Pool memory to allocate (panicking convenience over
    /// [`UntouchedMemoryModel::try_pool_memory`]).
    pub fn pool_memory(&self, request: &VmRequest, history: &CustomerHistory) -> Bytes {
        let predicted = request.memory.scaled(self.predict_fraction(request, history));
        Bytes::from_gib(predicted.slices_floor())
    }
}

/// The strawman Figure 18 compares against: a fixed untouched fraction for
/// every VM regardless of metadata.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedUntouchedStrawman {
    /// The fraction of every VM's memory assumed untouched.
    pub fraction: f64,
}

impl FixedUntouchedStrawman {
    /// Creates the strawman.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is within `[0, 1]`.
    pub fn new(fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        FixedUntouchedStrawman { fraction }
    }

    /// Predicted untouched fraction (constant).
    pub fn predict_fraction(&self) -> f64 {
        self.fraction
    }
}

/// One point of the Figure 18 trade-off: how much memory a predictor labels
/// untouched versus how often it overpredicts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UntouchedEvalPoint {
    /// Average predicted-untouched share of memory, weighted by GB-hours.
    pub avg_untouched_fraction: f64,
    /// Fraction of VMs that touch more memory than predicted untouched
    /// (their working set would spill into zNUMA).
    pub overprediction_rate: f64,
}

/// Evaluates arbitrary per-request untouched predictions against the ground
/// truth, weighting the average by GB-hours as the paper does.
///
/// # Panics
///
/// Panics if `predictions` and `requests` have different lengths.
pub fn evaluate_predictions(requests: &[VmRequest], predictions: &[f64]) -> UntouchedEvalPoint {
    assert_eq!(requests.len(), predictions.len(), "one prediction per request is required");
    if requests.is_empty() {
        return UntouchedEvalPoint { avg_untouched_fraction: 0.0, overprediction_rate: 0.0 };
    }
    let mut predicted_gb_hours = 0.0;
    let mut total_gb_hours = 0.0;
    let mut overpredictions = 0usize;
    for (request, &prediction) in requests.iter().zip(predictions) {
        let hours = request.lifetime as f64 / 3600.0;
        predicted_gb_hours += request.memory.as_gib_f64() * prediction.clamp(0.0, 1.0) * hours;
        total_gb_hours += request.memory.as_gib_f64() * hours;
        // Overprediction: the pool share (GB-aligned) exceeds what the VM
        // leaves untouched.
        let pool =
            Bytes::from_gib(request.memory.scaled(prediction.clamp(0.0, 1.0)).slices_floor());
        if pool > request.untouched_memory() {
            overpredictions += 1;
        }
    }
    UntouchedEvalPoint {
        avg_untouched_fraction: predicted_gb_hours / total_gb_hours.max(1e-12),
        overprediction_rate: overpredictions as f64 / requests.len() as f64,
    }
}

/// Evaluates a trained model on held-out requests, replaying customer history
/// in arrival order (predict first, then record the ground truth).
pub fn evaluate_model(
    model: &UntouchedMemoryModel,
    requests: &[VmRequest],
    mut history: CustomerHistory,
) -> UntouchedEvalPoint {
    let mut predictions = Vec::with_capacity(requests.len());
    for request in requests {
        predictions.push(model.predict_fraction(request, &history));
        history.record(request.customer, request.untouched_fraction);
    }
    evaluate_predictions(requests, &predictions)
}

/// Replays the customer history of a request stream (used to seed evaluation
/// of held-out data with the training period's history).
pub fn replay_history(requests: &[VmRequest]) -> CustomerHistory {
    let mut history = CustomerHistory::new();
    for request in requests {
        history.record(request.customer, request.untouched_fraction);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};

    fn requests() -> Vec<VmRequest> {
        // A mid-sized trace: enough VMs (~1000) for the GBM to learn the
        // customer structure.
        let config = ClusterConfig { servers: 24, duration_days: 12, ..ClusterConfig::small() };
        TraceGenerator::new(config, 1).generate(0).requests
    }

    #[test]
    fn history_percentiles_are_ordered() {
        let mut history = CustomerHistory::new();
        assert!(!history.has_history(CustomerId(1)));
        assert!(history.percentiles(CustomerId(1)).is_none());
        for v in [0.2, 0.8, 0.5, 0.4, 0.9] {
            history.record(CustomerId(1), v);
        }
        let p = history.percentiles(CustomerId(1)).unwrap();
        assert_eq!(p[0], 0.2);
        assert_eq!(p[4], 0.9);
        for pair in p.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert_eq!(history.count(CustomerId(1)), 5);
    }

    #[test]
    fn windowed_history_evicts_oldest_and_spares_the_seed() {
        let mut history = CustomerHistory::new();
        assert_eq!(history.window(), None);
        // Seeded before the window: never evicted.
        history.record(CustomerId(1), 0.1);
        history.record(CustomerId(1), 0.9);
        history.set_window(Some(2));
        history.record(CustomerId(1), 0.5);
        history.record(CustomerId(1), 0.6);
        assert_eq!(history.count(CustomerId(1)), 4);
        // The third windowed observation evicts 0.5 — the oldest windowed
        // one, not the smallest and not a seed.
        history.record(CustomerId(1), 0.7);
        assert_eq!(history.count(CustomerId(1)), 4);
        let p = history.percentiles(CustomerId(1)).unwrap();
        assert_eq!([p[0], p[1], p[2], p[4]], [0.1, 0.6, 0.7, 0.9]);
        // A zero window discards every new observation.
        history.set_window(Some(0));
        history.record(CustomerId(1), 0.2);
        assert_eq!(history.count(CustomerId(1)), 4);
    }

    #[test]
    fn features_reflect_history_availability() {
        let reqs = requests();
        let history = CustomerHistory::new();
        let f = request_features(&reqs[0], &history);
        assert_eq!(f.len(), UNTOUCHED_FEATURE_NAMES.len());
        assert_eq!(f[6], 0.0, "no history flag");
        let mut history = CustomerHistory::new();
        history.record(reqs[0].customer, 0.7);
        let f = request_features(&reqs[0], &history);
        assert_eq!(f[6], 1.0);
        assert_eq!(f[9], 0.7, "median of a single observation");
    }

    #[test]
    fn model_trains_and_predicts_within_bounds() {
        let reqs = requests();
        let model = UntouchedMemoryModel::train(&reqs, &UntouchedModelConfig::default(), 0);
        let history = replay_history(&reqs);
        for request in reqs.iter().take(50) {
            let f = model.predict_fraction(request, &history);
            assert!((0.0..=1.0).contains(&f));
            assert!(model.pool_memory(request, &history) <= request.memory);
        }
        assert_eq!(model.config().quantile, 0.05);
    }

    #[test]
    fn low_quantile_keeps_overpredictions_rare() {
        let reqs = requests();
        let split = reqs.len() / 2;
        let (train, test) = reqs.split_at(split);
        let model = UntouchedMemoryModel::train(
            train,
            &UntouchedModelConfig { quantile: 0.05, rounds: 40 },
            1,
        );
        let point = evaluate_model(&model, test, replay_history(train));
        assert!(
            point.overprediction_rate < 0.15,
            "5th-percentile predictions should rarely overpredict: {point:?}"
        );
        assert!(
            point.avg_untouched_fraction > 0.05,
            "the model should still find untouched memory"
        );
    }

    #[test]
    fn gbm_beats_the_fixed_strawman() {
        // Figure 18 / Finding 6: at a comparable amount of untouched memory,
        // the learned model overpredicts far less often than a fixed split.
        let reqs = requests();
        let split = reqs.len() / 2;
        let (train, test) = reqs.split_at(split);
        let model = UntouchedMemoryModel::train(
            train,
            &UntouchedModelConfig { quantile: 0.15, rounds: 40 },
            2,
        );
        let gbm_point = evaluate_model(&model, test, replay_history(train));

        // Pick a fixed fraction that labels a comparable share of memory untouched.
        let strawman = FixedUntouchedStrawman::new(gbm_point.avg_untouched_fraction);
        let fixed_predictions = vec![strawman.predict_fraction(); test.len()];
        let fixed_point = evaluate_predictions(test, &fixed_predictions);

        assert!(
            gbm_point.overprediction_rate < fixed_point.overprediction_rate,
            "GBM ({gbm_point:?}) should overpredict less than the strawman ({fixed_point:?})"
        );
    }

    #[test]
    fn higher_quantiles_claim_more_memory_but_overpredict_more() {
        let reqs = requests();
        let split = reqs.len() / 2;
        let (train, test) = reqs.split_at(split);
        let mut previous: Option<UntouchedEvalPoint> = None;
        for quantile in [0.05, 0.3, 0.6] {
            let model = UntouchedMemoryModel::train(
                train,
                &UntouchedModelConfig { quantile, rounds: 30 },
                3,
            );
            let point = evaluate_model(&model, test, replay_history(train));
            if let Some(prev) = previous {
                assert!(
                    point.avg_untouched_fraction >= prev.avg_untouched_fraction - 0.03,
                    "higher quantiles should claim at least as much memory: {point:?} vs {prev:?}"
                );
                assert!(
                    point.overprediction_rate >= prev.overprediction_rate - 0.02,
                    "higher quantiles should not overpredict less: {point:?} vs {prev:?}"
                );
            }
            previous = Some(point);
        }
    }

    #[test]
    fn evaluation_helpers_validate_input() {
        let empty = evaluate_predictions(&[], &[]);
        assert_eq!(empty.overprediction_rate, 0.0);
        let strawman = FixedUntouchedStrawman::new(0.3);
        assert_eq!(strawman.predict_fraction(), 0.3);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn strawman_rejects_bad_fraction() {
        let _ = FixedUntouchedStrawman::new(1.5);
    }

    #[test]
    #[should_panic(expected = "training requires at least one VM request")]
    fn training_requires_data() {
        let _ = UntouchedMemoryModel::train(&[], &UntouchedModelConfig::default(), 0);
    }
}
